//! Single-step expansion of progress sequences — and its distance-striding
//! generalization.
//!
//! [`Walker::expand`] enumerates, for a candidate path, every possible next
//! terminal together with the successor path and its relative weight (paper
//! §II-B1's depth-first traversal, extended with the branching needed for
//! partial paths and unknown repetition offsets).
//!
//! [`Walker::expand_matching`] is the observe-side variant: it materializes
//! successor paths *only* for branches emitting one given event, deciding
//! each branch's first terminal in O(1) through the [`GrammarIndex`] so
//! non-matching branches cost no allocation.
//!
//! [`Walker::simulate_distance`] answers "which event happens `d` steps
//! from here" without stepping once per event: repetition runs and whole
//! rule subtrees whose expanded length falls short of the remaining
//! distance are skipped in O(1) using the index's precomputed lengths, so
//! one candidate costs O(distance / subtree-size + path depth + rule-body
//! scans) instead of O(distance × branching).

use std::time::Instant;

use crate::event::EventId;
use crate::grammar::{Grammar, GrammarIndex, Symbol};
use crate::predict::path::{Frame, Path, Rep};
use crate::util::FxHashMap;

/// What a branch leads to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The next event is `0` and the successor path is valid.
    Event(EventId),
    /// The reference trace ends here (the path ran past the root).
    End,
}

/// One possible continuation of a path.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Next event or end of trace.
    pub outcome: Outcome,
    /// Successor path (meaningless for [`Outcome::End`]).
    pub path: Path,
    /// Weight of this branch relative to the input path's weight
    /// (occurrence-count fraction; branches of one expansion sum to 1).
    pub factor: f64,
}

/// Advances a repetition state by one completed repetition.
fn bump(rep: Rep) -> Rep {
    match rep {
        Rep::Known(r) => Rep::Known(r + 1),
        Rep::Unknown(k) => Rep::Unknown(k + 1),
    }
}

/// Weighted event distribution accumulated by
/// [`Walker::simulate_distance`] across all candidates of a prediction.
#[derive(Debug, Default)]
pub struct DistanceAccumulator {
    /// Total weight per predicted event (unnormalized).
    pub per_event: FxHashMap<EventId, f64>,
    /// Weight on "the reference trace ends before that distance".
    pub end_mass: f64,
    /// Remaining exploration budget (see [`DistanceAccumulator::new`]).
    nodes_left: usize,
    /// Wall-clock deadline; past it the walk is abandoned (see
    /// [`DistanceAccumulator::with_deadline`]).
    deadline: Option<Instant>,
    /// Nodes until the next clock read (the clock is sampled every
    /// [`DEADLINE_STRIDE`] nodes, not on each one).
    deadline_countdown: u32,
    /// Whether the walk was cut short by the deadline.
    deadline_hit: bool,
}

/// Simulation nodes expanded between deadline clock reads. One node costs
/// tens of nanoseconds, so the deadline overshoot is bounded by a few
/// microseconds — far below any useful time budget.
const DEADLINE_STRIDE: u32 = 64;

impl DistanceAccumulator {
    /// An accumulator allowed to explore `budget` simulation nodes; beyond
    /// that, residual branches are dropped (the stepwise simulation's
    /// `max_states` truncation has the same effect).
    pub fn new(budget: usize) -> Self {
        Self::with_deadline(budget, None)
    }

    /// Like [`DistanceAccumulator::new`], with an optional wall-clock
    /// deadline: once it passes, the walk stops expanding and
    /// [`DistanceAccumulator::deadline_hit`] reports the truncation, so the
    /// caller can discard the partial distribution instead of stalling its
    /// host past the budget.
    pub fn with_deadline(budget: usize, deadline: Option<Instant>) -> Self {
        DistanceAccumulator {
            per_event: FxHashMap::default(),
            end_mass: 0.0,
            nodes_left: budget,
            deadline,
            deadline_countdown: 0,
            deadline_hit: false,
        }
    }

    /// Whether the walk was abandoned because the deadline passed.
    pub fn deadline_hit(&self) -> bool {
        self.deadline_hit
    }

    /// Periodic deadline probe: reads the clock every `DEADLINE_STRIDE`
    /// nodes; on expiry, zeroes the node budget so every in-flight
    /// recursion path bails out at its next check.
    #[inline]
    fn over_deadline(&mut self) -> bool {
        let Some(deadline) = self.deadline else {
            return false;
        };
        if self.deadline_hit {
            return true;
        }
        if self.deadline_countdown > 0 {
            self.deadline_countdown -= 1;
            return false;
        }
        self.deadline_countdown = DEADLINE_STRIDE;
        if Instant::now() >= deadline {
            self.deadline_hit = true;
            self.nodes_left = 0;
            return true;
        }
        false
    }
}

/// Result of [`Walker::advance_in_place`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Advance {
    /// Exactly one branch matched; the frames were advanced in place.
    Advanced,
    /// No branch emits the event from here (reseed).
    NoMatch,
    /// More than one branch could match, or the walk would extend the
    /// path upward — the caller must take the general
    /// [`Walker::expand_matching`] route.
    Ambiguous,
}

/// Borrowed read-side state needed to expand paths.
pub struct Walker<'a> {
    /// The reference grammar.
    pub grammar: &'a Grammar,
    /// Precomputed metadata over the same grammar.
    pub index: &'a GrammarIndex,
}

impl Walker<'_> {
    /// Enumerates all continuations of `path`, appending them to `out`.
    /// The factors of the produced branches sum to 1 (up to rounding).
    pub fn expand(&self, path: &Path, out: &mut Vec<Branch>) {
        debug_assert!(!path.frames.is_empty());
        let mut frames = path.frames.clone();
        let innermost = frames.len() - 1;
        self.decide(&mut frames, innermost, 1.0, None, out);
    }

    /// Allocation-free single-candidate advance: when the observed event
    /// continues the path along exactly one branch, mutate `frames` to
    /// the successor in place — no clone, no `Branch` materialization.
    ///
    /// The scan mirrors [`Walker::decide`]/[`Walker::exit`] without
    /// building anything: walking outward from the innermost frame, each
    /// level can *stay* (begin another repetition — matches iff the use's
    /// first terminal is `event`) and/or *exit* (move to the next use —
    /// matches iff that use's first terminal is `event`; a finished body
    /// ascends instead). Two potential matches, or an ascent past a
    /// non-root top frame (upward extension branches over use sites),
    /// bail out as [`Advance::Ambiguous`] — the caller falls back to
    /// [`Walker::expand_matching`], whose result this advance reproduces
    /// byte-for-byte whenever it returns [`Advance::Advanced`].
    pub fn advance_in_place(&self, frames: &mut Vec<Frame>, event: EventId) -> Advance {
        debug_assert!(!frames.is_empty());
        #[derive(Clone, Copy)]
        enum Hit {
            Stay { level: usize, rep: Rep },
            ExitNext { level: usize },
        }
        let mut hit: Option<Hit> = None;
        let mut level = frames.len() - 1;
        // Effective completed-repetition state at the current level: the
        // stored value at the innermost frame, bumped once per ascent
        // (mirroring `exit`'s mutation before it recurses).
        let mut rep = frames[level].rep;
        loop {
            let f = frames[level];
            let body = self.index.body(f.rule);
            let use_ = body[f.pos];
            let c = use_.count;
            let (stay_possible, exit_possible) = match rep {
                Rep::Known(r) => (r < c, r >= c),
                Rep::Unknown(k) => (k < c, true),
            };
            if stay_possible && self.index.first_terminal(use_.symbol) == event {
                if hit.is_some() {
                    return Advance::Ambiguous;
                }
                hit = Some(Hit::Stay { level, rep });
            }
            if !exit_possible {
                break;
            }
            if f.pos + 1 < body.len() {
                if self.index.first_terminal(body[f.pos + 1].symbol) == event {
                    if hit.is_some() {
                        return Advance::Ambiguous;
                    }
                    hit = Some(Hit::ExitNext { level });
                }
                break;
            }
            if level == 0 {
                if f.rule == self.grammar.root() {
                    break; // end of trace: never matches an event
                }
                return Advance::Ambiguous; // upward extension branches
            }
            level -= 1;
            rep = bump(frames[level].rep);
        }
        match hit {
            None => Advance::NoMatch,
            Some(Hit::Stay { level, rep }) => {
                frames.truncate(level + 1);
                frames[level].rep = rep;
                let symbol = self.index.body(frames[level].rule)[frames[level].pos].symbol;
                self.descend_frames(frames, symbol);
                Advance::Advanced
            }
            Some(Hit::ExitNext { level }) => {
                frames.truncate(level + 1);
                let f = frames[level];
                frames[level] = Frame {
                    rule: f.rule,
                    pos: f.pos + 1,
                    rep: Rep::Known(0),
                };
                let symbol = self.index.body(f.rule)[f.pos + 1].symbol;
                self.descend_frames(frames, symbol);
                Advance::Advanced
            }
        }
    }

    /// Arena-backed equivalent of `Path::descend`: appends the frames
    /// from `symbol` down to its first terminal (offsets known), then
    /// counts the terminal's emitted repetition on the innermost frame.
    fn descend_frames(&self, frames: &mut Vec<Frame>, mut symbol: Symbol) {
        while let Symbol::Rule(r) = symbol {
            frames.push(Frame {
                rule: r,
                pos: 0,
                rep: Rep::Known(0),
            });
            symbol = self.index.body(r)[0].symbol;
        }
        let f = frames.last_mut().expect("descend on empty frames");
        f.rep = bump(f.rep);
    }

    /// Like [`Walker::expand`], but only materializes branches whose next
    /// terminal is `event` — the observe hot path, where every other
    /// branch is discarded anyway. `End` branches never match.
    pub fn expand_matching(&self, path: &Path, event: EventId, out: &mut Vec<Branch>) {
        debug_assert!(!path.frames.is_empty());
        let mut frames = path.frames.clone();
        let innermost = frames.len() - 1;
        self.decide(&mut frames, innermost, 1.0, Some(event), out);
    }

    /// A repetition of the use at `frames[idx]` just completed — `rep`
    /// already counts it (frames below `idx` have been truncated). Emit the
    /// possible continuations: begin another repetition of the same use, or
    /// move past it. With a `filter`, only branches emitting that event are
    /// pushed (their factors still reflect the full expansion).
    fn decide(
        &self,
        frames: &mut Vec<Frame>,
        idx: usize,
        weight: f64,
        filter: Option<EventId>,
        out: &mut Vec<Branch>,
    ) {
        if weight <= 0.0 {
            return;
        }
        frames.truncate(idx + 1);
        let f = frames[idx];
        let use_ = self.index.body(f.rule)[f.pos];
        let c = use_.count;
        let (stay_w, exit_w) = match f.rep {
            Rep::Known(r) => {
                debug_assert!(r >= 1 && r <= c);
                // Offset known: deterministically stay or exit.
                if r < c {
                    (weight, 0.0)
                } else {
                    (0.0, weight)
                }
            }
            Rep::Unknown(k) => {
                debug_assert!(k >= 1 && k <= c);
                // k repetitions completed at an unknown start offset: the
                // first one could have been any of offsets 0..=c-k, so of
                // the (c-k+1) possibilities, (c-k) continue and 1 exits.
                let possibilities = (c - k + 1) as f64;
                (
                    weight * (c - k) as f64 / possibilities,
                    weight / possibilities,
                )
            }
        };
        if stay_w > 0.0 {
            let mut stay_frames = frames.clone();
            self.stay(&mut stay_frames, idx, stay_w, filter, out);
        }
        if exit_w > 0.0 {
            self.exit(frames, idx, exit_w, filter, out);
        }
    }

    /// Begin another repetition of the use at `frames[idx]`. For a terminal
    /// the new repetition completes immediately (the event is emitted), so
    /// the completed count advances; for a rule it completes later, when
    /// the child body finishes a pass (see [`Walker::exit`]).
    fn stay(
        &self,
        frames: &mut [Frame],
        idx: usize,
        weight: f64,
        filter: Option<EventId>,
        out: &mut Vec<Branch>,
    ) {
        let use_ = self.index.body(frames[idx].rule)[frames[idx].pos];
        // The emitted event is known in O(1) before any successor path is
        // built, so filtered expansion skips non-matching branches for
        // free.
        let e = self.index.first_terminal(use_.symbol);
        if filter.is_some_and(|want| want != e) {
            return;
        }
        match use_.symbol {
            Symbol::Terminal(_) => {
                frames[idx].rep = bump(frames[idx].rep);
                out.push(Branch {
                    outcome: Outcome::Event(e),
                    path: Path {
                        frames: frames.to_vec(),
                    },
                    factor: weight,
                });
            }
            Symbol::Rule(_) => {
                let mut path = Path {
                    frames: frames.to_vec(),
                };
                // Re-enter the sub-rule from its first terminal.
                path.descend(self.grammar, use_.symbol);
                debug_assert_eq!(path.terminal(self.grammar), e);
                out.push(Branch {
                    outcome: Outcome::Event(e),
                    path,
                    factor: weight,
                });
            }
        }
    }

    /// The use at `frames[idx]` is done repeating: move to the next
    /// position of the rule, or complete the rule and continue one level
    /// up, extending partial paths past their top frame when needed.
    fn exit(
        &self,
        frames: &mut Vec<Frame>,
        idx: usize,
        weight: f64,
        filter: Option<EventId>,
        out: &mut Vec<Branch>,
    ) {
        if weight <= 0.0 {
            return;
        }
        let f = frames[idx];
        let body_len = self.index.body(f.rule).len();
        if f.pos + 1 < body_len {
            // Next use within the same rule.
            let symbol = self.index.body(f.rule)[f.pos + 1].symbol;
            let e = self.index.first_terminal(symbol);
            if filter.is_some_and(|want| want != e) {
                return;
            }
            frames[idx] = Frame {
                rule: f.rule,
                pos: f.pos + 1,
                rep: Rep::Known(0),
            };
            let mut path = Path {
                frames: frames.clone(),
            };
            path.descend(self.grammar, symbol);
            out.push(Branch {
                outcome: Outcome::Event(e),
                path,
                factor: weight,
            });
            return;
        }
        // The rule body completed one pass: that completes one repetition
        // of the parent use.
        if idx > 0 {
            frames[idx - 1].rep = bump(frames[idx - 1].rep);
            self.decide(frames, idx - 1, weight, filter, out);
            return;
        }
        // Popping past the top frame.
        let top_rule = f.rule;
        if top_rule == self.grammar.root() {
            if filter.is_none() {
                out.push(Branch {
                    outcome: Outcome::End,
                    path: Path {
                        frames: frames.clone(),
                    },
                    factor: weight,
                });
            }
            return;
        }
        // Partial path: extend upward over every use site of the top rule,
        // weighting by how often each site accounts for the rule's
        // expansions (paper §II-C: probabilities are occurrence counts).
        let total = self.index.expansion(top_rule);
        if total <= 0.0 {
            return;
        }
        for site in self.index.rule_uses(top_rule) {
            let use_ = self.index.body(site.rule)[site.pos];
            debug_assert_eq!(use_.symbol, Symbol::Rule(top_rule));
            let site_visits = self.index.expansion(site.rule) * use_.count as f64;
            let w = weight * site_visits / total;
            if w <= 0.0 {
                continue;
            }
            // We just completed one repetition of the rule at this site,
            // with unknown offset.
            let mut new_frames = Vec::with_capacity(frames.len() + 1);
            new_frames.push(Frame {
                rule: site.rule,
                pos: site.pos,
                rep: Rep::Unknown(1),
            });
            self.decide(&mut new_frames, 0, w, filter, out);
        }
    }

    // ------------------------------------------------------------------
    // Distance-striding simulation
    // ------------------------------------------------------------------

    /// Accumulates into `acc` the distribution of the event emitted
    /// exactly `distance` steps after `path`'s current position, scaled by
    /// `weight`. Semantically identical to expanding stepwise `distance`
    /// times and summing the final branch weights, but repetition runs and
    /// rule subtrees shorter than the remaining distance are skipped in
    /// O(1) via the [`GrammarIndex`] lengths — no successor paths are
    /// materialized at all.
    pub fn simulate_distance(
        &self,
        path: &Path,
        distance: u64,
        weight: f64,
        acc: &mut DistanceAccumulator,
    ) {
        debug_assert!(distance >= 1 && !path.frames.is_empty());
        let mut frames = path.frames.clone();
        let innermost = frames.len() - 1;
        self.sim_decide(&mut frames, innermost, distance, weight, acc);
    }

    /// Striding counterpart of [`Walker::decide`]: a repetition of the use
    /// at `frames[idx]` just completed and the target event lies `rem ≥ 1`
    /// events ahead.
    fn sim_decide(
        &self,
        frames: &mut Vec<Frame>,
        idx: usize,
        rem: u64,
        weight: f64,
        acc: &mut DistanceAccumulator,
    ) {
        if weight <= 0.0 {
            return;
        }
        if acc.nodes_left == 0 || acc.over_deadline() {
            return;
        }
        acc.nodes_left -= 1;
        frames.truncate(idx + 1);
        let f = frames[idx];
        let use_ = self.index.body(f.rule)[f.pos];
        let c = use_.count as u64;
        // Terminals expand to 1 event; rule bodies are non-empty, so
        // `unit >= 1` and the strides below always make progress.
        let unit = self.index.sym_len(use_.symbol);
        match f.rep {
            Rep::Known(r) => {
                let left = c - r as u64;
                if left * unit >= rem {
                    // The target falls inside the remaining repetitions:
                    // skip whole repetitions, then locate it within one.
                    self.sim_enter(use_.symbol, (rem - 1) % unit + 1, weight, acc);
                } else {
                    // All remaining repetitions fall short: skip them all.
                    self.sim_exit(frames, idx, rem - left * unit, weight, acc);
                }
            }
            Rep::Unknown(k) => {
                // The unknown start offset makes "j more repetitions, then
                // exit" uniform over j = 0..=c-k (each stepwise stay/exit
                // product telescopes to 1/(c-k+1)). Every arm with
                // j·unit ≥ rem puts the target at the same spot inside a
                // repetition, so they aggregate into ONE descend branch;
                // only the arms exiting before the target are enumerated.
                let arms = c - k as u64 + 1;
                let jmin = rem.div_ceil(unit);
                if jmin < arms {
                    let stay_w = weight * (arms - jmin) as f64 / arms as f64;
                    self.sim_enter(use_.symbol, (rem - 1) % unit + 1, stay_w, acc);
                }
                let arm_w = weight / arms as f64;
                for j in 0..jmin.min(arms) {
                    let mut arm_frames = frames.clone();
                    self.sim_exit(&mut arm_frames, idx, rem - j * unit, arm_w, acc);
                }
            }
        }
    }

    /// The target is the `rem`-th terminal (1-based) of one expansion of
    /// `symbol` (`1 ≤ rem ≤ expanded_len(symbol)`): descend to it directly,
    /// skipping preceding siblings and whole repetition runs by length.
    fn sim_enter(&self, symbol: Symbol, rem: u64, weight: f64, acc: &mut DistanceAccumulator) {
        if weight <= 0.0 {
            return;
        }
        let mut sym = symbol;
        let mut rem = rem;
        loop {
            match sym {
                Symbol::Terminal(e) => {
                    debug_assert_eq!(rem, 1);
                    *acc.per_event.entry(e).or_insert(0.0) += weight;
                    return;
                }
                Symbol::Rule(r) => {
                    for u in self.index.body(r) {
                        let unit = self.index.sym_len(u.symbol);
                        let full = u.count as u64 * unit;
                        if rem <= full {
                            rem = (rem - 1) % unit + 1;
                            sym = u.symbol;
                            break;
                        }
                        rem -= full;
                    }
                }
            }
        }
    }

    /// Striding counterpart of [`Walker::exit`]: the use at `frames[idx]`
    /// is done repeating and the target lies `rem ≥ 1` events past it.
    fn sim_exit(
        &self,
        frames: &mut Vec<Frame>,
        idx: usize,
        rem: u64,
        weight: f64,
        acc: &mut DistanceAccumulator,
    ) {
        let f = frames[idx];
        // O(1) check whether the whole tail of this rule body falls short
        // of the target; if not, locate the target inside the tail with
        // O(1) per-use lengths.
        let tail = self.index.suffix_len(f.rule, f.pos + 1);
        if tail >= rem {
            let mut rem = rem;
            let body = self.index.body(f.rule);
            for u in body.iter().skip(f.pos + 1) {
                let unit = self.index.sym_len(u.symbol);
                let full = u.count as u64 * unit;
                if rem <= full {
                    self.sim_enter(u.symbol, (rem - 1) % unit + 1, weight, acc);
                    return;
                }
                rem -= full;
            }
            unreachable!("suffix length placed the target inside the tail");
        }
        let rem = rem - tail;
        // The rule body completed one pass: one repetition of the parent
        // use finished.
        if idx > 0 {
            frames[idx - 1].rep = bump(frames[idx - 1].rep);
            self.sim_decide(frames, idx - 1, rem, weight, acc);
            return;
        }
        let top_rule = f.rule;
        if top_rule == self.grammar.root() {
            acc.end_mass += weight;
            return;
        }
        // Partial path: extend upward over every use site, mirroring
        // `Walker::exit`.
        let total = self.index.expansion(top_rule);
        if total <= 0.0 {
            return;
        }
        for site in self.index.rule_uses(top_rule) {
            let use_ = self.index.body(site.rule)[site.pos];
            let site_visits = self.index.expansion(site.rule) * use_.count as f64;
            let w = weight * site_visits / total;
            if w <= 0.0 {
                continue;
            }
            let mut new_frames = vec![Frame {
                rule: site.rule,
                pos: site.pos,
                rep: Rep::Unknown(1),
            }];
            self.sim_decide(&mut new_frames, 0, rem, w, acc);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::builder::GrammarBuilder;
    use crate::grammar::Loc;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    struct Fixture {
        grammar: Grammar,
        index: GrammarIndex,
    }

    impl Fixture {
        fn new(seq: &[u32]) -> Self {
            let mut b = GrammarBuilder::new();
            for &s in seq {
                b.push(e(s));
            }
            let grammar = b.into_grammar().compact();
            let index = GrammarIndex::build(&grammar);
            Fixture { grammar, index }
        }

        fn walker(&self) -> Walker<'_> {
            Walker {
                grammar: &self.grammar,
                index: &self.index,
            }
        }

        fn terminal_uses(&self, ev: EventId) -> Vec<Loc> {
            self.grammar.terminal_uses(ev)
        }
    }

    #[test]
    fn factors_sum_to_one() {
        let fx = Fixture::new(&[0, 1, 1, 2, 1, 2, 0, 1, 3, 0, 1, 1, 2]);
        let w = fx.walker();
        for ev in [0u32, 1, 2, 3] {
            for loc in fx.terminal_uses(e(ev)) {
                let p = Path::seed(loc.rule, loc.pos);
                let mut out = Vec::new();
                w.expand(&p, &mut out);
                let total: f64 = out.iter().map(|b| b.factor).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "event {ev}: branch factors sum to {total}"
                );
            }
        }
    }

    #[test]
    fn deterministic_successor() {
        // a b a b: from a (inside the folded rule), the next event is b
        // with probability 1.
        let fx = Fixture::new(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let w = fx.walker();
        let uses = fx.terminal_uses(e(0));
        assert_eq!(uses.len(), 1);
        let p = Path::seed(uses[0].rule, uses[0].pos);
        let mut out = Vec::new();
        w.expand(&p, &mut out);
        for b in &out {
            assert_eq!(b.outcome, Outcome::Event(e(1)));
        }
    }

    #[test]
    fn repetition_branching_weights() {
        // a^4 b, repeated: from an `a` at unknown offset, staying on `a`
        // should carry 3/4 of the weight.
        let mut seq = Vec::new();
        for _ in 0..6 {
            seq.extend([0, 0, 0, 0, 1]);
        }
        let fx = Fixture::new(&seq);
        let w = fx.walker();
        let uses = fx.terminal_uses(e(0));
        assert_eq!(uses.len(), 1, "{}", fx.grammar.render(&|x| x.to_string()));
        let p = Path::seed(uses[0].rule, uses[0].pos);
        let mut out = Vec::new();
        w.expand(&p, &mut out);
        let stay: f64 = out
            .iter()
            .filter(|b| b.outcome == Outcome::Event(e(0)))
            .map(|b| b.factor)
            .sum();
        let leave: f64 = out
            .iter()
            .filter(|b| b.outcome == Outcome::Event(e(1)))
            .map(|b| b.factor)
            .sum();
        assert!((stay - 0.75).abs() < 1e-9, "stay weight {stay}");
        assert!((leave - 0.25).abs() < 1e-9, "leave weight {leave}");
    }

    #[test]
    fn end_of_trace_reachable() {
        // Root-anchored path at the last event must yield End.
        let fx = Fixture::new(&[0, 1, 2]);
        let g = &fx.grammar;
        let root = g.root();
        let last_pos = g.rule(root).body.len() - 1;
        let p = Path {
            frames: vec![Frame {
                rule: root,
                pos: last_pos,
                rep: Rep::Known(1),
            }],
        };
        let w = fx.walker();
        let mut out = Vec::new();
        w.expand(&p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outcome, Outcome::End);
    }

    #[test]
    fn upward_extension_covers_all_sites() {
        // Trace where rule "ab" is used in two different contexts:
        // a b c a b d a b c a b d — after finishing "ab" the next event is
        // c or d with equal weight.
        let fx = Fixture::new(&[0, 1, 2, 0, 1, 3, 0, 1, 2, 0, 1, 3]);
        let w = fx.walker();
        let uses = fx.terminal_uses(e(1));
        let mut all = Vec::new();
        for u in uses {
            let p = Path::seed(u.rule, u.pos);
            w.expand(&p, &mut all);
        }
        let evs: std::collections::HashSet<u32> = all
            .iter()
            .filter_map(|b| match b.outcome {
                Outcome::Event(x) => Some(x.0),
                Outcome::End => None,
            })
            .collect();
        assert!(evs.contains(&2), "{evs:?}");
        assert!(evs.contains(&3), "{evs:?}");
    }

    #[test]
    fn expand_matching_agrees_with_filtering_expand() {
        let seq: Vec<u32> = (0..20).flat_map(|i| [0, 0, 0, 1, (i % 3) + 2]).collect();
        let fx = Fixture::new(&seq);
        let w = fx.walker();
        for ev in 0..5u32 {
            for loc in fx.terminal_uses(e(ev)) {
                let p = Path::seed(loc.rule, loc.pos);
                let mut all = Vec::new();
                w.expand(&p, &mut all);
                for want in 0..5u32 {
                    let mut filtered = Vec::new();
                    w.expand_matching(&p, e(want), &mut filtered);
                    let reference: Vec<&Branch> = all
                        .iter()
                        .filter(|b| b.outcome == Outcome::Event(e(want)))
                        .collect();
                    assert_eq!(filtered.len(), reference.len());
                    for (f, r) in filtered.iter().zip(reference) {
                        assert_eq!(f.path, r.path);
                        assert!((f.factor - r.factor).abs() < 1e-12);
                    }
                }
            }
        }
    }

    #[test]
    fn advance_in_place_agrees_with_expand_matching() {
        // Over a soup of reachable paths × alphabet: a fast advance must
        // reproduce the unique matching branch exactly; NoMatch must mean
        // the filtered expansion is empty; Ambiguous is always allowed to
        // defer to the slow path (which the predictor then takes).
        let traces: Vec<Vec<u32>> = vec![
            (0..12).flat_map(|_| vec![0, 1, 2]).collect(),
            (0..8).flat_map(|_| vec![0, 0, 0, 0, 1]).collect(),
            (0..6)
                .flat_map(|i| vec![0, 1, 2, 0, 1, 3 + (i % 2)])
                .collect(),
            (0..20)
                .flat_map(|i| vec![0, 0, 0, 1, (i % 3) + 2])
                .collect(),
            vec![0, 1, 2, 3, 4, 5],
        ];
        for seq in traces {
            let fx = Fixture::new(&seq);
            let w = fx.walker();
            // Collect paths: every seed plus a few expansion generations.
            let mut paths: Vec<Path> = Vec::new();
            for ev in 0..6u32 {
                for loc in fx.terminal_uses(e(ev)) {
                    paths.push(Path::seed(loc.rule, loc.pos));
                }
            }
            let mut frontier = paths.clone();
            for _ in 0..3 {
                let mut next = Vec::new();
                for p in &frontier {
                    let mut out = Vec::new();
                    w.expand(p, &mut out);
                    for b in out {
                        if let Outcome::Event(_) = b.outcome {
                            next.push(b.path);
                        }
                    }
                }
                paths.extend(next.iter().cloned());
                frontier = next;
                if paths.len() > 400 {
                    break;
                }
            }
            for p in &paths {
                for ev in 0..6u32 {
                    let mut out = Vec::new();
                    w.expand_matching(p, e(ev), &mut out);
                    let mut frames = p.frames.clone();
                    match w.advance_in_place(&mut frames, e(ev)) {
                        Advance::Advanced => {
                            assert_eq!(out.len(), 1, "path {p:?} event {ev}");
                            assert_eq!(frames, out[0].path.frames, "path {p:?} event {ev}");
                        }
                        Advance::NoMatch => {
                            assert!(out.is_empty(), "path {p:?} event {ev}: {out:?}");
                        }
                        Advance::Ambiguous => {
                            // Deferred to the slow path; nothing to pin.
                        }
                    }
                }
            }
        }
    }

    /// Stepwise reference: expand `distance` times, summing final weights.
    fn stepwise_distance(
        w: &Walker<'_>,
        path: &Path,
        distance: usize,
    ) -> (FxHashMap<EventId, f64>, f64) {
        let mut states = vec![(path.clone(), 1.0f64)];
        let mut end_mass = 0.0;
        let mut dist: FxHashMap<EventId, f64> = FxHashMap::default();
        for step in 0..distance {
            let mut next = Vec::new();
            for (p, wt) in &states {
                let mut out = Vec::new();
                w.expand(p, &mut out);
                for b in out {
                    let bw = wt * b.factor;
                    match b.outcome {
                        Outcome::End => end_mass += bw,
                        Outcome::Event(ev) => {
                            if step + 1 == distance {
                                *dist.entry(ev).or_insert(0.0) += bw;
                            } else {
                                next.push((b.path, bw));
                            }
                        }
                    }
                }
            }
            states = next;
        }
        (dist, end_mass)
    }

    #[test]
    fn simulate_distance_matches_stepwise() {
        let traces: Vec<Vec<u32>> = vec![
            (0..12).flat_map(|_| vec![0, 1, 2]).collect(),
            (0..8).flat_map(|_| vec![0, 0, 0, 0, 1]).collect(),
            (0..6)
                .flat_map(|i| vec![0, 1, 2, 0, 1, 3 + (i % 2)])
                .collect(),
            vec![0, 1, 2, 3, 4, 5],
        ];
        for seq in traces {
            let fx = Fixture::new(&seq);
            let w = fx.walker();
            for ev in 0..6u32 {
                for loc in fx.terminal_uses(e(ev)) {
                    let p = Path::seed(loc.rule, loc.pos);
                    for distance in [1usize, 2, 3, 5, 8, 13] {
                        let (want, want_end) = stepwise_distance(&w, &p, distance);
                        let mut acc = DistanceAccumulator::new(usize::MAX);
                        w.simulate_distance(&p, distance as u64, 1.0, &mut acc);
                        assert!(
                            (acc.end_mass - want_end).abs() < 1e-9,
                            "end mass {} vs {} (d={distance})",
                            acc.end_mass,
                            want_end
                        );
                        for (ev2, wt) in &want {
                            let got = acc.per_event.get(ev2).copied().unwrap_or(0.0);
                            assert!(
                                (got - wt).abs() < 1e-9,
                                "event {ev2:?}: {got} vs {wt} (d={distance})"
                            );
                        }
                        for (ev2, wt) in &acc.per_event {
                            let exp = want.get(ev2).copied().unwrap_or(0.0);
                            assert!(
                                (wt - exp).abs() < 1e-9,
                                "spurious event {ev2:?}: {wt} vs {exp} (d={distance})"
                            );
                        }
                    }
                }
            }
        }
    }
}
