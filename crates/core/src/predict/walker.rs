//! Single-step expansion of progress sequences: given a candidate path,
//! enumerate every possible next terminal together with the successor path
//! and its relative weight (paper §II-B1's depth-first traversal, extended
//! with the branching needed for partial paths and unknown repetition
//! offsets).

use crate::event::EventId;
use crate::grammar::{Grammar, Loc, Symbol};
use crate::predict::path::{Frame, Path, Rep};

/// What a branch leads to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Outcome {
    /// The next event is `0` and the successor path is valid.
    Event(EventId),
    /// The reference trace ends here (the path ran past the root).
    End,
}

/// One possible continuation of a path.
#[derive(Debug, Clone)]
pub struct Branch {
    /// Next event or end of trace.
    pub outcome: Outcome,
    /// Successor path (meaningless for [`Outcome::End`]).
    pub path: Path,
    /// Weight of this branch relative to the input path's weight
    /// (occurrence-count fraction; branches of one expansion sum to 1).
    pub factor: f64,
}

/// Advances a repetition state by one completed repetition.
fn bump(rep: Rep) -> Rep {
    match rep {
        Rep::Known(r) => Rep::Known(r + 1),
        Rep::Unknown(k) => Rep::Unknown(k + 1),
    }
}

/// Borrowed read-side state needed to expand paths.
pub struct Walker<'a> {
    /// The reference grammar.
    pub grammar: &'a Grammar,
    /// `expansion_counts` of the grammar, as `f64`, indexed by rule slot.
    pub expansions: &'a [f64],
    /// Use sites of every rule, indexed by rule slot.
    pub rule_uses: &'a [Vec<Loc>],
}

impl Walker<'_> {
    /// Enumerates all continuations of `path`, appending them to `out`.
    /// The factors of the produced branches sum to 1 (up to rounding).
    pub fn expand(&self, path: &Path, out: &mut Vec<Branch>) {
        debug_assert!(!path.frames.is_empty());
        let mut frames = path.frames.clone();
        let innermost = frames.len() - 1;
        self.decide(&mut frames, innermost, 1.0, out);
    }

    /// A repetition of the use at `frames[idx]` just completed — `rep`
    /// already counts it (frames below `idx` have been truncated). Emit the
    /// possible continuations: begin another repetition of the same use, or
    /// move past it.
    fn decide(&self, frames: &mut Vec<Frame>, idx: usize, weight: f64, out: &mut Vec<Branch>) {
        if weight <= 0.0 {
            return;
        }
        frames.truncate(idx + 1);
        let f = frames[idx];
        let use_ = self.grammar.rule(f.rule).body[f.pos];
        let c = use_.count;
        let (stay_w, exit_w) = match f.rep {
            Rep::Known(r) => {
                debug_assert!(r >= 1 && r <= c);
                // Offset known: deterministically stay or exit.
                if r < c {
                    (weight, 0.0)
                } else {
                    (0.0, weight)
                }
            }
            Rep::Unknown(k) => {
                debug_assert!(k >= 1 && k <= c);
                // k repetitions completed at an unknown start offset: the
                // first one could have been any of offsets 0..=c-k, so of
                // the (c-k+1) possibilities, (c-k) continue and 1 exits.
                let possibilities = (c - k + 1) as f64;
                (
                    weight * (c - k) as f64 / possibilities,
                    weight / possibilities,
                )
            }
        };
        if stay_w > 0.0 {
            let mut stay_frames = frames.clone();
            self.stay(&mut stay_frames, idx, stay_w, out);
        }
        if exit_w > 0.0 {
            self.exit(frames, idx, exit_w, out);
        }
    }

    /// Begin another repetition of the use at `frames[idx]`. For a terminal
    /// the new repetition completes immediately (the event is emitted), so
    /// the completed count advances; for a rule it completes later, when
    /// the child body finishes a pass (see [`Walker::exit`]).
    fn stay(&self, frames: &mut [Frame], idx: usize, weight: f64, out: &mut Vec<Branch>) {
        let use_ = self.grammar.rule(frames[idx].rule).body[frames[idx].pos];
        match use_.symbol {
            Symbol::Terminal(e) => {
                frames[idx].rep = bump(frames[idx].rep);
                out.push(Branch {
                    outcome: Outcome::Event(e),
                    path: Path {
                        frames: frames.to_vec(),
                    },
                    factor: weight,
                });
            }
            Symbol::Rule(_) => {
                let mut path = Path {
                    frames: frames.to_vec(),
                };
                // Re-enter the sub-rule from its first terminal.
                path.descend(self.grammar, use_.symbol);
                let e = path.terminal(self.grammar);
                out.push(Branch {
                    outcome: Outcome::Event(e),
                    path,
                    factor: weight,
                });
            }
        }
    }

    /// The use at `frames[idx]` is done repeating: move to the next
    /// position of the rule, or complete the rule and continue one level
    /// up, extending partial paths past their top frame when needed.
    fn exit(&self, frames: &mut Vec<Frame>, idx: usize, weight: f64, out: &mut Vec<Branch>) {
        if weight <= 0.0 {
            return;
        }
        let f = frames[idx];
        let body_len = self.grammar.rule(f.rule).body.len();
        if f.pos + 1 < body_len {
            // Next use within the same rule.
            frames[idx] = Frame {
                rule: f.rule,
                pos: f.pos + 1,
                rep: Rep::Known(0),
            };
            let mut path = Path {
                frames: frames.clone(),
            };
            let symbol = self.grammar.rule(f.rule).body[f.pos + 1].symbol;
            path.descend(self.grammar, symbol);
            let e = path.terminal(self.grammar);
            out.push(Branch {
                outcome: Outcome::Event(e),
                path,
                factor: weight,
            });
            return;
        }
        // The rule body completed one pass: that completes one repetition
        // of the parent use.
        if idx > 0 {
            frames[idx - 1].rep = bump(frames[idx - 1].rep);
            self.decide(frames, idx - 1, weight, out);
            return;
        }
        // Popping past the top frame.
        let top_rule = f.rule;
        if top_rule == self.grammar.root() {
            out.push(Branch {
                outcome: Outcome::End,
                path: Path {
                    frames: frames.clone(),
                },
                factor: weight,
            });
            return;
        }
        // Partial path: extend upward over every use site of the top rule,
        // weighting by how often each site accounts for the rule's
        // expansions (paper §II-C: probabilities are occurrence counts).
        let total = self.expansions[top_rule.index()];
        if total <= 0.0 {
            return;
        }
        let sites = &self.rule_uses[top_rule.index()];
        for site in sites {
            let use_ = self.grammar.rule(site.rule).body[site.pos];
            debug_assert_eq!(use_.symbol, Symbol::Rule(top_rule));
            let site_visits = self.expansions[site.rule.index()] * use_.count as f64;
            let w = weight * site_visits / total;
            if w <= 0.0 {
                continue;
            }
            // We just completed one repetition of the rule at this site,
            // with unknown offset.
            let mut new_frames = Vec::with_capacity(frames.len() + 1);
            new_frames.push(Frame {
                rule: site.rule,
                pos: site.pos,
                rep: Rep::Unknown(1),
            });
            self.decide(&mut new_frames, 0, w, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::builder::GrammarBuilder;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    struct Fixture {
        grammar: Grammar,
        expansions: Vec<f64>,
        rule_uses: Vec<Vec<Loc>>,
    }

    impl Fixture {
        fn new(seq: &[u32]) -> Self {
            let mut b = GrammarBuilder::new();
            for &s in seq {
                b.push(e(s));
            }
            let grammar = b.into_grammar().compact();
            let expansions: Vec<f64> = grammar
                .expansion_counts()
                .into_iter()
                .map(|x| x as f64)
                .collect();
            let rule_uses = (0..grammar.rule_count())
                .map(|i| grammar.rule_uses(crate::grammar::RuleId(i as u32)))
                .collect();
            Fixture {
                grammar,
                expansions,
                rule_uses,
            }
        }

        fn walker(&self) -> Walker<'_> {
            Walker {
                grammar: &self.grammar,
                expansions: &self.expansions,
                rule_uses: &self.rule_uses,
            }
        }
    }

    #[test]
    fn factors_sum_to_one() {
        let fx = Fixture::new(&[0, 1, 1, 2, 1, 2, 0, 1, 3, 0, 1, 1, 2]);
        let w = fx.walker();
        for ev in [0u32, 1, 2, 3] {
            for loc in fx.grammar.terminal_uses(e(ev)) {
                let p = Path::seed(loc.rule, loc.pos);
                let mut out = Vec::new();
                w.expand(&p, &mut out);
                let total: f64 = out.iter().map(|b| b.factor).sum();
                assert!(
                    (total - 1.0).abs() < 1e-9,
                    "event {ev}: branch factors sum to {total}"
                );
            }
        }
    }

    #[test]
    fn deterministic_successor() {
        // a b a b: from a (inside the folded rule), the next event is b
        // with probability 1.
        let fx = Fixture::new(&[0, 1, 0, 1, 0, 1, 0, 1]);
        let w = fx.walker();
        let uses = fx.grammar.terminal_uses(e(0));
        assert_eq!(uses.len(), 1);
        let p = Path::seed(uses[0].rule, uses[0].pos);
        let mut out = Vec::new();
        w.expand(&p, &mut out);
        for b in &out {
            assert_eq!(b.outcome, Outcome::Event(e(1)));
        }
    }

    #[test]
    fn repetition_branching_weights() {
        // a^4 b, repeated: from an `a` at unknown offset, staying on `a`
        // should carry 3/4 of the weight.
        let mut seq = Vec::new();
        for _ in 0..6 {
            seq.extend([0, 0, 0, 0, 1]);
        }
        let fx = Fixture::new(&seq);
        let w = fx.walker();
        let uses = fx.grammar.terminal_uses(e(0));
        assert_eq!(uses.len(), 1, "{}", fx.grammar.render(&|x| x.to_string()));
        let p = Path::seed(uses[0].rule, uses[0].pos);
        let mut out = Vec::new();
        w.expand(&p, &mut out);
        let stay: f64 = out
            .iter()
            .filter(|b| b.outcome == Outcome::Event(e(0)))
            .map(|b| b.factor)
            .sum();
        let leave: f64 = out
            .iter()
            .filter(|b| b.outcome == Outcome::Event(e(1)))
            .map(|b| b.factor)
            .sum();
        assert!((stay - 0.75).abs() < 1e-9, "stay weight {stay}");
        assert!((leave - 0.25).abs() < 1e-9, "leave weight {leave}");
    }

    #[test]
    fn end_of_trace_reachable() {
        // Root-anchored path at the last event must yield End.
        let fx = Fixture::new(&[0, 1, 2]);
        let g = &fx.grammar;
        let root = g.root();
        let last_pos = g.rule(root).body.len() - 1;
        let p = Path {
            frames: vec![Frame {
                rule: root,
                pos: last_pos,
                rep: Rep::Known(1),
            }],
        };
        let w = fx.walker();
        let mut out = Vec::new();
        w.expand(&p, &mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].outcome, Outcome::End);
    }

    #[test]
    fn upward_extension_covers_all_sites() {
        // Trace where rule "ab" is used in two different contexts:
        // a b c a b d a b c a b d — after finishing "ab" the next event is
        // c or d with equal weight.
        let fx = Fixture::new(&[0, 1, 2, 0, 1, 3, 0, 1, 2, 0, 1, 3]);
        let w = fx.walker();
        let uses = fx.grammar.terminal_uses(e(1));
        let mut all = Vec::new();
        for u in uses {
            let p = Path::seed(u.rule, u.pos);
            w.expand(&p, &mut all);
        }
        let evs: std::collections::HashSet<u32> = all
            .iter()
            .filter_map(|b| match b.outcome {
                Outcome::Event(x) => Some(x.0),
                Outcome::End => None,
            })
            .collect();
        assert!(evs.contains(&2), "{evs:?}");
        assert!(evs.contains(&3), "{evs:?}");
    }
}
