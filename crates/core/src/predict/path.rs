//! Progress sequences (paper §II-B, Figs. 4–6).
//!
//! A *progress sequence* denotes one occurrence of an event in the
//! reference execution: the path from the terminal symbol up toward the
//! root of the grammar. PYTHIA-PREDICT tracks the application's position as
//! a set of candidate progress sequences; a sequence may be *partial* (its
//! top frame is not the root) when the predictor started mid-stream or
//! recovered from an unexpected event — partial sequences are extended
//! upward lazily as more events disambiguate the position (paper §II-B2).

use crate::grammar::{Grammar, RuleId, Symbol};
use crate::timing::ContextFrame;

/// Repetition state of one frame: how many repetitions of the symbol use
/// have *completed* at this level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Rep {
    /// The frame was entered at repetition 0 (start offset known); `r`
    /// repetitions have completed.
    Known(u32),
    /// The frame was entered mid-run at an unknown offset (seeded or
    /// extended upward); `k ≥ 1` repetitions have completed since entry.
    /// The true start offset is uniform over the possibilities, which is
    /// where prediction branching weights come from.
    Unknown(u32),
}

/// One level of a progress sequence: a symbol use (`pos`-th entry of
/// `rule`'s body) plus its repetition state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Frame {
    /// Rule whose body contains the use.
    pub rule: RuleId,
    /// Index of the use within the rule body.
    pub pos: usize,
    /// Repetition state.
    pub rep: Rep,
}

/// A (possibly partial) progress sequence. Frames are stored outermost
/// first; the last frame always points at a terminal use.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Path {
    /// Frames, outermost first.
    pub frames: Vec<Frame>,
}

impl Path {
    /// A fresh partial path seeded at one terminal occurrence whose start
    /// offset within its repetition run is unknown; the observed event
    /// counts as one completed repetition.
    pub fn seed(rule: RuleId, pos: usize) -> Self {
        Path {
            frames: vec![Frame {
                rule,
                pos,
                rep: Rep::Unknown(1),
            }],
        }
    }

    /// The innermost frame (terminal level).
    pub fn innermost(&self) -> &Frame {
        self.frames.last().expect("path has no frames")
    }

    /// Whether the path is anchored at the grammar root.
    pub fn is_anchored(&self, grammar: &Grammar) -> bool {
        self.frames
            .first()
            .is_some_and(|f| f.rule == grammar.root())
    }

    /// Path depth (number of frames).
    pub fn depth(&self) -> usize {
        self.frames.len()
    }

    /// The terminal this path points at.
    pub fn terminal(&self, grammar: &Grammar) -> crate::event::EventId {
        let f = self.innermost();
        grammar.rule(f.rule).body[f.pos]
            .symbol
            .terminal()
            .expect("innermost frame must point at a terminal")
    }

    /// Context frames for the timing model: `(rule, pos)` innermost first.
    pub fn context_frames(&self) -> Vec<ContextFrame> {
        self.frames.iter().rev().map(|f| (f.rule, f.pos)).collect()
    }

    /// Appends the frames needed to reach the first terminal of `symbol`
    /// (fresh descent: offsets known, nothing completed; the terminal frame
    /// records one completed repetition — the event it emits).
    ///
    /// `rule`/`pos` locate the use of `symbol` whose frame was already
    /// pushed by the caller; this only descends *below* it.
    pub(crate) fn descend(&mut self, grammar: &Grammar, mut symbol: Symbol) {
        while let Symbol::Rule(r) = symbol {
            self.frames.push(Frame {
                rule: r,
                pos: 0,
                rep: Rep::Known(0),
            });
            symbol = grammar.rule(r).body[0].symbol;
        }
        // The innermost frame now points at the first use of a (possibly
        // new) rule; mark the terminal's emitted repetition.
        let f = self.frames.last_mut().expect("descend on empty path");
        debug_assert!(matches!(
            grammar.rule(f.rule).body[f.pos].symbol,
            Symbol::Terminal(_)
        ));
        f.rep = match f.rep {
            Rep::Known(r) => Rep::Known(r + 1),
            Rep::Unknown(k) => Rep::Unknown(k + 1),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::grammar::builder::GrammarBuilder;

    fn grammar_of(seq: &[u32]) -> Grammar {
        let mut b = GrammarBuilder::new();
        for &s in seq {
            b.push(EventId(s));
        }
        b.into_grammar().compact()
    }

    #[test]
    fn seed_path_shape() {
        let g = grammar_of(&[0, 1, 0, 1, 0, 1]);
        let uses = g.terminal_uses(EventId(0));
        assert!(!uses.is_empty());
        let p = Path::seed(uses[0].rule, uses[0].pos);
        assert_eq!(p.depth(), 1);
        assert_eq!(p.terminal(&g), EventId(0));
        assert_eq!(p.innermost().rep, Rep::Unknown(1));
    }

    #[test]
    fn context_frames_innermost_first() {
        let p = Path {
            frames: vec![
                Frame {
                    rule: RuleId(0),
                    pos: 3,
                    rep: Rep::Known(0),
                },
                Frame {
                    rule: RuleId(2),
                    pos: 1,
                    rep: Rep::Known(1),
                },
            ],
        };
        assert_eq!(p.context_frames(), vec![(RuleId(2), 1), (RuleId(0), 3)]);
    }

    #[test]
    fn anchored_detection() {
        let g = grammar_of(&[0, 1, 2, 0, 1, 2]);
        let root_path = Path {
            frames: vec![Frame {
                rule: g.root(),
                pos: 0,
                rep: Rep::Known(0),
            }],
        };
        assert!(root_path.is_anchored(&g));
        let uses = g.terminal_uses(EventId(1));
        // In this grammar the terminal lives inside a sub-rule.
        let partial = Path::seed(uses[0].rule, uses[0].pos);
        let _ = partial.is_anchored(&g); // must not panic either way
    }
}
