//! PYTHIA-PREDICT: following the current execution inside the reference
//! grammar and predicting future events (paper §II-B and §II-C).
//!
//! A [`Predictor`] is fed the events of **one thread** of the new execution
//! through [`Predictor::observe`]. It maintains a weighted set of candidate
//! [`Path`]s (progress sequences):
//!
//! * when the stream matches the reference behavior, the set quickly
//!   collapses to a handful of candidates advanced deterministically;
//! * an event that *exists* in the grammar but does not match any candidate
//!   re-seeds the set from every occurrence of that event (tolerance to
//!   unexpected events, §II-B2);
//! * an event that never occurred in the reference execution leaves the
//!   oracle without information ([`ObserveOutcome::Unknown`]) — the runtime
//!   system should fall back to its heuristic until the stream
//!   re-synchronizes.
//!
//! [`Predictor::predict`] simulates the candidate set `distance` events
//! forward, weighting branches by occurrence counts in the reference
//! execution; [`Predictor::predict_delay_ns`] additionally accumulates the
//! timing model's context-sensitive mean durations along the most probable
//! chain (§II-C).
//!
//! # Hot-path costs
//!
//! All read-side queries go through the [`crate::grammar::GrammarIndex`]
//! built once per thread trace and shared (`Arc`) by every predictor:
//!
//! * [`Predictor::observe`] advances candidates with
//!   [`Walker::expand_matching`], which decides each branch's next terminal
//!   in O(1) and never materializes non-matching successor paths; re-seeding
//!   reads the precomputed occurrence index instead of scanning the grammar.
//!   Scratch buffers (branch vector, merge map) are reused across calls, so
//!   steady-state observation performs no per-call allocation beyond the
//!   successor paths themselves.
//! * [`Predictor::predict`] runs the distance-striding simulation
//!   ([`Walker::simulate_distance`]), skipping repetition runs and whole
//!   rule subtrees shorter than the remaining distance in O(1) — roughly
//!   O(distance + path depth) per candidate instead of O(unfolded events ×
//!   branching). The stepwise reference implementation is kept as
//!   [`Predictor::predict_scan`].

pub mod path;
pub mod walker;

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::error::{Error, Result};
use crate::event::EventId;
use crate::grammar::GrammarIndex;
use crate::trace::{ThreadTrace, TraceData};
use crate::util::FxHashMap;
use path::Path;
use walker::{Advance, Branch, DistanceAccumulator, Outcome, Walker};

/// Tuning knobs of the predictor.
#[derive(Debug, Clone)]
pub struct PredictorConfig {
    /// Maximum number of candidate progress sequences tracked after each
    /// observation (lowest-weight candidates are dropped). Must be ≥ 1.
    pub max_candidates: usize,
    /// Maximum number of weighted states expanded per step while
    /// simulating forward in [`Predictor::predict`]. Must be ≥ 1.
    pub max_states: usize,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            max_candidates: 64,
            max_states: 128,
        }
    }
}

impl PredictorConfig {
    /// Checks that the configuration is usable. A zero capacity would
    /// silently discard every candidate (the oracle could never
    /// synchronize), so it is rejected up front instead.
    pub fn validate(&self) -> Result<()> {
        if self.max_candidates == 0 {
            return Err(Error::InvalidConfig(
                "max_candidates must be at least 1".into(),
            ));
        }
        if self.max_states == 0 {
            return Err(Error::InvalidConfig("max_states must be at least 1".into()));
        }
        Ok(())
    }
}

/// Statistics accumulated by a [`Predictor`]; useful for accuracy studies
/// and for runtimes that want to distrust a frequently-mismatching oracle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredictStats {
    /// Total events observed.
    pub observed: u64,
    /// Events that matched a tracked candidate.
    pub matched: u64,
    /// Events that forced a re-seed (present in the grammar, but not where
    /// the candidates expected them).
    pub reseeded: u64,
    /// Events absent from the reference execution.
    pub unknown: u64,
    /// Panics caught (and isolated) by a resilience facade wrapping this
    /// predictor. Always 0 for a bare [`Predictor`]; filled in by
    /// [`crate::resilience::HardenedOracle`] when it merges its counters.
    pub panics_caught: u64,
    /// Predict queries that blew their time budget and were answered with
    /// the host default instead (facade counter, 0 on a bare predictor).
    pub deadline_misses: u64,
    /// Times the resilience layer quarantined the oracle (facade counter,
    /// 0 on a bare predictor).
    pub quarantine_transitions: u64,
    /// Nanoseconds spent with the oracle degraded — quarantined, probing,
    /// or poisoned (facade counter, 0 on a bare predictor).
    pub degraded_ns: u64,
}

/// How an observation related to the tracked candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObserveOutcome {
    /// The event continued at least one candidate progress sequence.
    Matched,
    /// The event exists in the grammar but matched no candidate; the
    /// candidate set was re-seeded from its occurrences.
    Reseeded,
    /// The event never occurred in the reference execution; the oracle has
    /// no information until the stream re-synchronizes.
    Unknown,
}

/// A probability distribution over the next event at some distance.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Prediction {
    /// `(event, probability)` sorted by decreasing probability. Empty when
    /// the oracle has no information.
    pub distribution: Vec<(EventId, f64)>,
    /// Probability mass on "the reference trace ends before that distance".
    pub end_probability: f64,
}

impl Prediction {
    /// The most probable event, if any.
    pub fn most_likely(&self) -> Option<EventId> {
        self.distribution.first().map(|&(e, _)| e)
    }

    /// Probability of a specific event.
    pub fn probability(&self, event: EventId) -> f64 {
        self.distribution
            .iter()
            .find(|&&(e, _)| e == event)
            .map_or(0.0, |&(_, p)| p)
    }

    /// Whether the oracle had any information.
    pub fn is_informed(&self) -> bool {
        !self.distribution.is_empty() || self.end_probability > 0.0
    }
}

/// Follows one thread of the current execution inside a reference trace
/// and predicts its future behavior.
#[derive(Debug)]
pub struct Predictor {
    thread: Arc<ThreadTrace>,
    config: PredictorConfig,
    /// Precomputed query tables over `thread.grammar`, shared by every
    /// predictor (and walker) over the same thread trace.
    index: Arc<GrammarIndex>,
    candidates: Vec<(Path, f64)>,
    stats: PredictStats,
    // Scratch storage reused across `observe` calls so the steady-state hot
    // path allocates nothing beyond the successor paths themselves.
    scratch_branches: Vec<(Path, f64)>,
    scratch_expand: Vec<Branch>,
    scratch_merge: FxHashMap<Path, f64>,
}

impl Predictor {
    /// Creates a predictor over thread 0 of `trace` with default settings.
    pub fn new(trace: &TraceData) -> Self {
        Self::for_thread(trace, 0, PredictorConfig::default()).expect("trace has no thread 0")
    }

    /// Creates a predictor over a specific thread of a multi-thread trace.
    /// Fails on a missing thread or an invalid configuration.
    pub fn for_thread(trace: &TraceData, index: usize, config: PredictorConfig) -> Result<Self> {
        Self::try_from_thread_trace(trace.thread(index)?.clone(), config)
    }

    /// Creates a predictor directly from a [`ThreadTrace`]. Panics on an
    /// invalid configuration; use [`Predictor::try_from_thread_trace`] to
    /// handle that gracefully.
    pub fn from_thread_trace(thread: Arc<ThreadTrace>, config: PredictorConfig) -> Self {
        Self::try_from_thread_trace(thread, config).expect("invalid predictor configuration")
    }

    /// Creates a predictor directly from a [`ThreadTrace`], validating the
    /// configuration. The thread's [`GrammarIndex`] is computed once and
    /// shared, so constructing many predictors over one trace is cheap.
    pub fn try_from_thread_trace(
        thread: Arc<ThreadTrace>,
        config: PredictorConfig,
    ) -> Result<Self> {
        config.validate()?;
        let index = thread.index();
        Ok(Predictor {
            thread,
            config,
            index,
            candidates: Vec::new(),
            stats: PredictStats::default(),
            scratch_branches: Vec::new(),
            scratch_expand: Vec::new(),
            scratch_merge: FxHashMap::default(),
        })
    }

    fn walker(&self) -> Walker<'_> {
        Walker {
            grammar: &self.thread.grammar,
            index: &self.index,
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> PredictStats {
        self.stats
    }

    /// Number of candidate progress sequences currently tracked.
    pub fn candidate_count(&self) -> usize {
        self.candidates.len()
    }

    /// Whether the predictor currently knows where the application is.
    pub fn is_synchronized(&self) -> bool {
        !self.candidates.is_empty()
    }

    /// Submits the next event of the current execution.
    pub fn observe(&mut self, event: EventId) -> ObserveOutcome {
        self.stats.observed += 1;
        if !self.index.knows_event(event) {
            // Never seen in the reference execution: the oracle loses track
            // (paper §II-B2 — the runtime must fall back to heuristics).
            self.candidates.clear();
            self.stats.unknown += 1;
            return ObserveOutcome::Unknown;
        }
        if self.candidates.len() == 1 {
            // Steady-state fast path: a synchronized stream tracks one
            // candidate, and the in-place advance mutates its frames
            // without cloning, allocating, or touching the merge map. On
            // ambiguity it falls through to the general expansion, which
            // produces the identical result.
            let walker = Walker {
                grammar: &self.thread.grammar,
                index: &self.index,
            };
            let (path, weight) = &mut self.candidates[0];
            match walker.advance_in_place(&mut path.frames, event) {
                Advance::Advanced => {
                    *weight = 1.0; // a lone candidate always normalizes to 1
                    self.stats.matched += 1;
                    return ObserveOutcome::Matched;
                }
                Advance::NoMatch => {
                    self.seed(event);
                    self.stats.reseeded += 1;
                    return ObserveOutcome::Reseeded;
                }
                Advance::Ambiguous => {}
            }
        }
        if !self.candidates.is_empty() {
            // Advance every candidate, materializing only the branches that
            // emit the observed event. The buffers are taken out of `self`
            // for the duration of the walk (the walker borrows `self`
            // immutably) and put back afterwards, keeping their capacity.
            let mut branches = std::mem::take(&mut self.scratch_branches);
            let mut out = std::mem::take(&mut self.scratch_expand);
            branches.clear();
            {
                let walker = self.walker();
                for (path, weight) in &self.candidates {
                    out.clear();
                    walker.expand_matching(path, event, &mut out);
                    for b in out.drain(..) {
                        branches.push((b.path, weight * b.factor));
                    }
                }
            }
            self.scratch_expand = out;
            let matched = !branches.is_empty();
            if matched {
                self.consolidate_into(&mut branches);
            }
            self.scratch_branches = branches;
            if matched {
                self.stats.matched += 1;
                return ObserveOutcome::Matched;
            }
        }
        // Start (or re-start after a mismatch) from every occurrence of the
        // event, weighted by occurrence counts.
        self.seed(event);
        self.stats.reseeded += 1;
        ObserveOutcome::Reseeded
    }

    /// Submits a batch of events in order and returns the outcome of the
    /// **last** one (`None` for an empty batch) — exactly equivalent to
    /// calling [`Predictor::observe`] once per event, but the
    /// steady-state single-candidate fast path is hoisted *across the
    /// batch*: one walker (grammar + occurrence-index borrow) advances
    /// the lone candidate in place through as many consecutive events as
    /// it can absorb, so the per-event cost is one `advance_in_place`
    /// call instead of a full dispatch through the observe entry point.
    /// Any event the run cannot absorb (unknown, mismatch, ambiguity,
    /// multi-candidate tracking) falls back to the general per-event
    /// path and the run restarts after it.
    ///
    /// Serving layers that transport several events per request (the
    /// `pythia-serve` observe frames) use this to amortize the index
    /// lookup across the batch.
    pub fn observe_batch(&mut self, events: &[EventId]) -> Option<ObserveOutcome> {
        let mut last = None;
        let mut i = 0;
        while i < events.len() {
            if self.candidates.len() == 1 {
                // Disjoint field borrows: the walker holds `thread` and
                // `index`, the advance mutates `candidates`, the tallies
                // touch `stats`.
                let walker = Walker {
                    grammar: &self.thread.grammar,
                    index: &self.index,
                };
                let (path, weight) = &mut self.candidates[0];
                let mut advanced = 0u64;
                while i < events.len() {
                    let event = events[i];
                    if !walker.index.knows_event(event) {
                        break;
                    }
                    match walker.advance_in_place(&mut path.frames, event) {
                        Advance::Advanced => {
                            i += 1;
                            advanced += 1;
                        }
                        Advance::NoMatch | Advance::Ambiguous => break,
                    }
                }
                if advanced > 0 {
                    *weight = 1.0; // a lone candidate always normalizes to 1
                    self.stats.observed += advanced;
                    self.stats.matched += advanced;
                    last = Some(ObserveOutcome::Matched);
                }
                if i >= events.len() {
                    break;
                }
            }
            // The odd event out (or a non-steady candidate set): the
            // general path handles it and may collapse the candidates
            // back to one, re-arming the fast run for what remains.
            last = Some(self.observe(events[i]));
            i += 1;
        }
        last
    }

    /// Rebuilds the candidate set from the occurrence index: one candidate
    /// per use site of `event`, pre-weighted with `expansions × count`.
    fn seed(&mut self, event: EventId) {
        let index = Arc::clone(&self.index);
        let mut cands = std::mem::take(&mut self.scratch_branches);
        cands.clear();
        if let Some(occs) = index.occurrences(event) {
            cands.reserve(occs.len());
            for &(loc, weight) in occs {
                if weight > 0.0 {
                    cands.push((Path::seed(loc.rule, loc.pos), weight));
                }
            }
        }
        self.consolidate_into(&mut cands);
        self.scratch_branches = cands;
    }

    /// Merges identical paths, keeps the heaviest `max_candidates`, and
    /// normalizes weights — draining `cands` into `self.candidates` through
    /// the reused merge map, so no fresh map or vector is allocated.
    fn consolidate_into(&mut self, cands: &mut Vec<(Path, f64)>) {
        self.scratch_merge.clear();
        for (p, w) in cands.drain(..) {
            *self.scratch_merge.entry(p).or_insert(0.0) += w;
        }
        self.candidates.clear();
        self.candidates.extend(self.scratch_merge.drain());
        self.candidates.sort_by(|a, b| b.1.total_cmp(&a.1));
        self.candidates.truncate(self.config.max_candidates);
        let total: f64 = self.candidates.iter().map(|&(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut self.candidates {
                *w /= total;
            }
        }
    }

    /// Predicts the event that will occur `distance` events from now
    /// (`distance = 1` is the next event), simulating the candidate set
    /// forward and aggregating branch weights (paper §II-C).
    ///
    /// Uses the distance-striding simulation: repetition runs and whole
    /// rule subtrees shorter than the remaining distance are skipped in
    /// O(1), so the cost grows with the distance and the grammar depth, not
    /// with the number of unfolded events. [`Predictor::predict_scan`] is
    /// the stepwise reference returning the same distribution.
    pub fn predict(&self, distance: usize) -> Prediction {
        self.predict_inner(distance, None)
            .expect("only a deadline can abort the distance walk")
    }

    /// [`Predictor::predict`] with a wall-clock deadline enforced inside
    /// the distance walk: a query that cannot finish in time returns
    /// [`Error::Degraded`] instead of stalling the host runtime. The
    /// partial distribution computed before the cutoff is discarded — a
    /// truncated distribution would be silently biased towards the branches
    /// visited first.
    pub fn predict_deadline(&self, distance: usize, deadline: Instant) -> Result<Prediction> {
        self.predict_inner(distance, Some(deadline))
    }

    fn predict_inner(&self, distance: usize, deadline: Option<Instant>) -> Result<Prediction> {
        assert!(distance >= 1, "prediction distance must be >= 1");
        if self.candidates.is_empty() {
            return Ok(Prediction::default());
        }
        let walker = self.walker();
        // Branch-node budget mirroring `predict_scan`'s per-step state cap;
        // beyond it residual branches are dropped, as truncation does.
        let budget = self
            .config
            .max_states
            .saturating_mul(distance.saturating_add(4));
        let mut acc = DistanceAccumulator::with_deadline(budget, deadline);
        for (path, weight) in &self.candidates {
            walker.simulate_distance(path, distance as u64, *weight, &mut acc);
            if acc.deadline_hit() {
                return Err(Error::Degraded(format!(
                    "predict(distance={distance}) exceeded its time budget"
                )));
            }
        }
        let mut end_mass = acc.end_mass;
        let mut distribution: Vec<(EventId, f64)> = acc.per_event.into_iter().collect();
        let total: f64 = distribution.iter().map(|&(_, w)| w).sum::<f64>() + end_mass;
        if total > 0.0 {
            for (_, w) in &mut distribution {
                *w /= total;
            }
            end_mass /= total;
        }
        distribution.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Ok(Prediction {
            distribution,
            end_probability: end_mass,
        })
    }

    /// Stepwise reference implementation of [`Predictor::predict`]: expands
    /// every state one event at a time. Kept for regression testing and as
    /// executable documentation of the semantics the striding simulation
    /// must reproduce; prefer [`Predictor::predict`] everywhere else.
    pub fn predict_scan(&self, distance: usize) -> Prediction {
        assert!(distance >= 1, "prediction distance must be >= 1");
        if self.candidates.is_empty() {
            return Prediction::default();
        }
        let walker = self.walker();
        let mut states = self.candidates.clone();
        let mut end_mass = 0.0f64;
        let mut last_step: Vec<(EventId, f64)> = Vec::new();
        for step in 0..distance {
            let mut next: Vec<(Path, f64)> = Vec::new();
            let mut out: Vec<Branch> = Vec::new();
            if step + 1 == distance {
                last_step.clear();
            }
            for (path, weight) in &states {
                out.clear();
                walker.expand(path, &mut out);
                for b in &out {
                    let w = weight * b.factor;
                    match b.outcome {
                        Outcome::End => end_mass += w,
                        Outcome::Event(e) => {
                            if step + 1 == distance {
                                last_step.push((e, w));
                            } else {
                                next.push((b.path.clone(), w));
                            }
                        }
                    }
                }
            }
            if step + 1 == distance {
                break;
            }
            if next.is_empty() {
                break;
            }
            // Merge identical states but do not renormalize: remaining mass
            // must stay comparable with `end_mass`.
            let mut merged: FxHashMap<Path, f64> = FxHashMap::default();
            for (p, w) in next {
                *merged.entry(p).or_insert(0.0) += w;
            }
            let mut v: Vec<(Path, f64)> = merged.into_iter().collect();
            v.sort_by(|a, b| b.1.total_cmp(&a.1));
            v.truncate(self.config.max_states);
            states = v;
        }
        let mut per_event: FxHashMap<EventId, f64> = FxHashMap::default();
        for (e, w) in last_step {
            *per_event.entry(e).or_insert(0.0) += w;
        }
        let mut distribution: Vec<(EventId, f64)> = per_event.into_iter().collect();
        let total: f64 = distribution.iter().map(|&(_, w)| w).sum::<f64>() + end_mass;
        if total > 0.0 {
            for (_, w) in &mut distribution {
                *w /= total;
            }
            end_mass /= total;
        }
        distribution.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        Prediction {
            distribution,
            end_probability: end_mass,
        }
    }

    /// Estimated time (nanoseconds) until the event `distance` steps ahead,
    /// following the most probable chain of progress sequences and summing
    /// the timing model's context means (paper §II-C). Returns `None` when
    /// the oracle is out of sync or the trace holds no timing data.
    ///
    /// This walk stays step-by-step on purpose: the timing model keys its
    /// means on the rule context of *each intermediate event*, so every
    /// step's context frames are needed and subtree skipping cannot apply.
    pub fn predict_delay_ns(&self, distance: usize) -> Option<f64> {
        self.predict_delay_ns_inner(distance, None)
            .expect("only a deadline can abort the delay walk")
    }

    /// [`Predictor::predict_delay_ns`] with a wall-clock deadline checked
    /// at every step of the chain; returns [`Error::Degraded`] on expiry.
    pub fn predict_delay_deadline_ns(&self, distance: usize, deadline: Instant) -> Result<f64> {
        match self.predict_delay_ns_inner(distance, Some(deadline))? {
            Some(ns) => Ok(ns),
            None => Err(Error::OracleUnavailable(
                "no delay information at this position".into(),
            )),
        }
    }

    fn predict_delay_ns_inner(
        &self,
        distance: usize,
        deadline: Option<Instant>,
    ) -> Result<Option<f64>> {
        assert!(distance >= 1, "prediction distance must be >= 1");
        if self.candidates.is_empty() || self.thread.timing.is_empty() {
            return Ok(None);
        }
        let walker = self.walker();
        // Follow the heaviest candidate.
        let Some((mut path, _)) = self
            .candidates
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
        else {
            return Ok(None);
        };
        let mut total = 0.0f64;
        let mut out: Vec<Branch> = Vec::new();
        for _ in 0..distance {
            if let Some(d) = deadline {
                if Instant::now() >= d {
                    return Err(Error::Degraded(format!(
                        "predict_delay(distance={distance}) exceeded its time budget"
                    )));
                }
            }
            out.clear();
            walker.expand(&path, &mut out);
            let Some(best) = out
                .iter()
                .filter(|b| matches!(b.outcome, Outcome::Event(_)))
                .max_by(|a, b| a.factor.total_cmp(&b.factor))
            else {
                return Ok(None);
            };
            let Outcome::Event(e) = best.outcome else {
                return Ok(None);
            };
            let frames = best.path.context_frames();
            let Some(mean) = self
                .thread
                .timing
                .mean_ns(e, &frames)
                .or_else(|| self.thread.timing.mean_ns(e, &[]))
            else {
                return Ok(None);
            };
            total += mean;
            path = best.path.clone();
        }
        Ok(Some(total))
    }

    /// [`Predictor::predict_delay_ns`] as a [`Duration`].
    pub fn predict_delay(&self, distance: usize) -> Option<Duration> {
        self.predict_delay_ns(distance)
            .map(|ns| Duration::from_nanos(ns.max(0.0) as u64))
    }

    /// The most probable sequence of the next `n` events, following the
    /// greedy maximum-likelihood chain (useful for prefetch-style
    /// optimizations that need the whole upcoming window, not one event).
    /// Shorter than `n` if the chain reaches the end of the reference
    /// trace or the oracle is out of sync.
    pub fn predict_sequence(&self, n: usize) -> Vec<EventId> {
        let mut out_events = Vec::with_capacity(n);
        if self.candidates.is_empty() {
            return out_events;
        }
        let walker = self.walker();
        let Some((mut path, _)) = self
            .candidates
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .cloned()
        else {
            return out_events;
        };
        let mut branches: Vec<Branch> = Vec::new();
        for _ in 0..n {
            branches.clear();
            walker.expand(&path, &mut branches);
            let Some(best) = branches
                .iter()
                .filter(|b| matches!(b.outcome, Outcome::Event(_)))
                .max_by(|a, b| a.factor.total_cmp(&b.factor))
            else {
                break;
            };
            let Outcome::Event(e) = best.outcome else {
                break;
            };
            out_events.push(e);
            path = best.path.clone();
        }
        out_events
    }

    /// Drops all tracked candidates, forcing a re-seed on the next event.
    pub fn desynchronize(&mut self) {
        self.candidates.clear();
    }

    /// The grammar being tracked.
    pub fn grammar(&self) -> &crate::grammar::Grammar {
        &self.thread.grammar
    }

    /// The precomputed index over the tracked grammar.
    pub fn index(&self) -> &Arc<GrammarIndex> {
        &self.index
    }

    /// Weighted candidate summary: `(depth, weight)` per candidate, for
    /// diagnostics.
    pub fn candidate_summary(&self) -> Vec<(usize, f64)> {
        self.candidates
            .iter()
            .map(|(p, w)| (p.depth(), *w))
            .collect()
    }
}

/// Re-export the key types at module level.
pub use path::{Frame, Rep};
pub use walker::Outcome as BranchOutcome;

#[allow(unused)]
fn _assert_send_sync() {
    fn check<T: Send>() {}
    check::<Predictor>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventRegistry;
    use crate::record::{RecordConfig, Recorder};

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    /// Records `seq` (with uniform 100ns spacing) into a trace.
    fn trace_of(seq: &[u32]) -> TraceData {
        let mut rec = Recorder::new(RecordConfig::default());
        let mut t = 0u64;
        for &s in seq {
            t += 100;
            rec.record_at(e(s), t);
        }
        rec.finish(&EventRegistry::new()).unwrap()
    }

    #[test]
    fn predicts_deterministic_next_event() {
        let seq: Vec<u32> = (0..50).flat_map(|_| [0, 1, 2]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        assert_eq!(p.observe(e(0)), ObserveOutcome::Reseeded);
        let pred = p.predict(1);
        assert_eq!(pred.most_likely(), Some(e(1)));
        assert!(pred.probability(e(1)) > 0.9);
    }

    #[test]
    fn tracks_along_stream_with_high_accuracy() {
        let seq: Vec<u32> = (0..100).flat_map(|_| [0, 1, 2, 2, 3]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..seq.len() - 1 {
            p.observe(e(seq[i]));
            let pred = p.predict(1);
            total += 1;
            if pred.most_likely() == Some(e(seq[i + 1])) {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.9, "accuracy {acc}");
    }

    #[test]
    fn distance_prediction_follows_loop() {
        // Period-3 loop: at distance 3 the same event comes back.
        let seq: Vec<u32> = (0..60).flat_map(|_| [0, 1, 2]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        for &s in &seq[..30] {
            p.observe(e(s));
        }
        // Last observed is seq[29] == 2 (index 29 → 29 % 3 == 2).
        let pred3 = p.predict(3);
        assert_eq!(pred3.most_likely(), Some(e(2)));
        let pred1 = p.predict(1);
        assert_eq!(pred1.most_likely(), Some(e(0)));
        let pred2 = p.predict(2);
        assert_eq!(pred2.most_likely(), Some(e(1)));
    }

    #[test]
    fn unknown_event_loses_then_resyncs() {
        let seq: Vec<u32> = (0..40).flat_map(|_| [0, 1]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        assert!(p.is_synchronized());
        assert_eq!(p.observe(e(99)), ObserveOutcome::Unknown);
        assert!(!p.is_synchronized());
        assert!(!p.predict(1).is_informed());
        // Re-synchronizes on the next known event.
        assert_eq!(p.observe(e(0)), ObserveOutcome::Reseeded);
        assert_eq!(p.predict(1).most_likely(), Some(e(1)));
    }

    #[test]
    fn mismatched_event_reseeds() {
        // Reference alternates 0 1 0 1; feed 0 0 — the second 0 mismatches.
        let seq: Vec<u32> = (0..40).flat_map(|_| [0, 1]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        let outcome = p.observe(e(0));
        assert_eq!(outcome, ObserveOutcome::Reseeded);
        assert!(p.is_synchronized());
        assert_eq!(p.stats().reseeded, 2);
    }

    #[test]
    fn mid_stream_start_tolerated() {
        // Paper §II-B1: start observing mid-trace.
        let seq: Vec<u32> = (0..50).flat_map(|_| [0, 1, 2, 3]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        // Start at phase 2 of the loop.
        for &s in &[2u32, 3, 0, 1, 2, 3, 0] {
            p.observe(e(s));
        }
        assert_eq!(p.predict(1).most_likely(), Some(e(1)));
    }

    #[test]
    fn end_probability_at_trace_end() {
        let trace = trace_of(&[0, 1, 2]);
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        p.observe(e(1));
        p.observe(e(2));
        let pred = p.predict(1);
        assert!(
            pred.end_probability > 0.5,
            "end probability {}",
            pred.end_probability
        );
    }

    #[test]
    fn delay_prediction_uniform_spacing() {
        let seq: Vec<u32> = (0..100).flat_map(|_| [0, 1]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        for &s in &seq[..20] {
            p.observe(e(s));
        }
        let d1 = p.predict_delay_ns(1).unwrap();
        assert!((d1 - 100.0).abs() < 1.0, "{d1}");
        let d4 = p.predict_delay_ns(4).unwrap();
        assert!((d4 - 400.0).abs() < 4.0, "{d4}");
    }

    #[test]
    fn delay_none_without_timing() {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: false,
            validate: false,
        });
        for _ in 0..10 {
            rec.record(e(0));
            rec.record(e(1));
        }
        let trace = rec.finish(&EventRegistry::new()).unwrap();
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        assert_eq!(p.predict_delay_ns(1), None);
    }

    #[test]
    fn stats_accumulate() {
        let seq: Vec<u32> = (0..10).flat_map(|_| [0, 1]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        for &s in &seq {
            p.observe(e(s));
        }
        let st = p.stats();
        assert_eq!(st.observed, 20);
        assert_eq!(st.reseeded, 1); // only the initial seed
        assert_eq!(st.matched, 19);
        assert_eq!(st.unknown, 0);
    }

    #[test]
    fn candidate_cap_respected() {
        // Many occurrences of the same event: candidates stay bounded.
        let mut seq = Vec::new();
        for i in 0..64u32 {
            seq.push(200 + i); // unique separators
            seq.push(7); // the common event
        }
        let trace = trace_of(&seq);
        let cfg = PredictorConfig {
            max_candidates: 8,
            max_states: 16,
        };
        let mut p = Predictor::for_thread(&trace, 0, cfg).unwrap();
        p.observe(e(7));
        assert!(p.candidate_count() <= 8);
    }

    #[test]
    fn varying_problem_size_prediction() {
        // Record a loop of 10 iterations; predict on a run with 30
        // iterations: inner-loop predictions stay accurate (paper §III-C2's
        // observation about working-set-independent behavior).
        let small: Vec<u32> = (0..10).flat_map(|_| [0, 1, 2]).collect();
        let trace = trace_of(&small);
        let large: Vec<u32> = (0..30).flat_map(|_| [0, 1, 2]).collect();
        let mut p = Predictor::new(&trace);
        let mut correct = 0;
        let mut total = 0;
        for i in 0..large.len() - 1 {
            p.observe(e(large[i]));
            total += 1;
            if p.predict(1).most_likely() == Some(e(large[i + 1])) {
                correct += 1;
            }
        }
        let acc = correct as f64 / total as f64;
        assert!(acc > 0.8, "accuracy {acc}");
    }

    #[test]
    fn zero_capacity_config_rejected() {
        let trace = trace_of(&[0, 1, 0, 1]);
        for cfg in [
            PredictorConfig {
                max_candidates: 0,
                max_states: 16,
            },
            PredictorConfig {
                max_candidates: 16,
                max_states: 0,
            },
        ] {
            assert!(cfg.validate().is_err());
            let err = Predictor::for_thread(&trace, 0, cfg.clone()).unwrap_err();
            assert!(
                matches!(err, Error::InvalidConfig(_)),
                "unexpected error {err}"
            );
            let thread = trace.thread(0).unwrap().clone();
            assert!(Predictor::try_from_thread_trace(thread, cfg).is_err());
        }
    }

    #[test]
    #[should_panic(expected = "invalid predictor configuration")]
    fn zero_capacity_config_panics_in_infallible_constructor() {
        let trace = trace_of(&[0, 1, 0, 1]);
        let thread = trace.thread(0).unwrap().clone();
        let _ = Predictor::from_thread_trace(
            thread,
            PredictorConfig {
                max_candidates: 0,
                max_states: 0,
            },
        );
    }

    #[test]
    fn generous_deadline_matches_plain_predict() {
        let seq: Vec<u32> = (0..40).flat_map(|_| [0, 1, 2]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        let deadline = Instant::now() + Duration::from_secs(60);
        let timed = p.predict_deadline(3, deadline).unwrap();
        let plain = p.predict(3);
        assert_eq!(timed.most_likely(), plain.most_likely());
        assert!((timed.end_probability - plain.end_probability).abs() < 1e-12);
        let d_timed = p.predict_delay_deadline_ns(1, deadline).unwrap();
        let d_plain = p.predict_delay_ns(1).unwrap();
        assert!((d_timed - d_plain).abs() < 1e-9);
    }

    #[test]
    fn expired_deadline_degrades() {
        let seq: Vec<u32> = (0..40).flat_map(|_| [0, 1, 2]).collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        let past = Instant::now() - Duration::from_millis(5);
        let err = p.predict_deadline(4, past).unwrap_err();
        assert!(matches!(err, Error::Degraded(_)), "{err}");
        let err = p.predict_delay_deadline_ns(1, past).unwrap_err();
        assert!(matches!(err, Error::Degraded(_)), "{err}");
        // The predictor itself is unharmed: the plain query still answers.
        assert!(p.predict(1).is_informed());
    }

    #[test]
    fn predict_matches_predict_scan() {
        // The striding simulation must reproduce the stepwise reference
        // distribution on a structured trace, at every phase and distance.
        let seq: Vec<u32> = (0..40)
            .flat_map(|i| vec![0, 1, 1, 1, 2, 3 + (i % 2)])
            .collect();
        let trace = trace_of(&seq);
        let mut p = Predictor::new(&trace);
        for &s in &seq[..25] {
            p.observe(e(s));
            for distance in [1usize, 2, 3, 7, 19, 64] {
                let fast = p.predict(distance);
                let slow = p.predict_scan(distance);
                assert!(
                    (fast.end_probability - slow.end_probability).abs() < 1e-9,
                    "end probability {} vs {} (d={distance})",
                    fast.end_probability,
                    slow.end_probability
                );
                let events: std::collections::HashSet<EventId> = fast
                    .distribution
                    .iter()
                    .chain(&slow.distribution)
                    .map(|&(ev, _)| ev)
                    .collect();
                for ev in events {
                    assert!(
                        (fast.probability(ev) - slow.probability(ev)).abs() < 1e-9,
                        "event {ev:?}: {} vs {} (d={distance})",
                        fast.probability(ev),
                        slow.probability(ev)
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod sequence_tests {
    use super::*;
    use crate::event::EventRegistry;
    use crate::record::{RecordConfig, Recorder};

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    #[test]
    fn predict_sequence_follows_loop() {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: false,
            validate: false,
        });
        for _ in 0..50 {
            for ev in [0u32, 1, 2, 3] {
                rec.record_at(e(ev), 0);
            }
        }
        let trace = rec.finish(&EventRegistry::new()).unwrap();
        let mut p = Predictor::new(&trace);
        for ev in [0u32, 1, 2, 3, 0] {
            p.observe(e(ev));
        }
        let seq = p.predict_sequence(7);
        let want: Vec<EventId> = [1u32, 2, 3, 0, 1, 2, 3].iter().map(|&x| e(x)).collect();
        assert_eq!(seq, want);
    }

    #[test]
    fn predict_sequence_stops_at_trace_end() {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: false,
            validate: false,
        });
        for ev in [0u32, 1, 2] {
            rec.record_at(e(ev), 0);
        }
        let trace = rec.finish(&EventRegistry::new()).unwrap();
        let mut p = Predictor::new(&trace);
        p.observe(e(0));
        let seq = p.predict_sequence(10);
        assert_eq!(seq, vec![e(1), e(2)]);
    }

    #[test]
    fn predict_sequence_empty_when_desynced() {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: false,
            validate: false,
        });
        rec.record_at(e(0), 0);
        rec.record_at(e(1), 0);
        let trace = rec.finish(&EventRegistry::new()).unwrap();
        let p = Predictor::new(&trace);
        assert!(p.predict_sequence(5).is_empty());
    }

    /// `observe_batch` must be observationally identical to per-event
    /// `observe` — same outcomes, same statistics, same subsequent
    /// predictions — across streams that exercise the batched fast run,
    /// its restart after mismatches, unknown events, and every batch
    /// split of the same stream.
    #[test]
    fn observe_batch_matches_sequential_observe() {
        let seq: Vec<u32> = (0..60).flat_map(|_| [0, 1, 2, 2, 3, 0, 1, 4]).collect();
        let mut rec = Recorder::new(RecordConfig::default());
        let mut t = 0u64;
        for &s in &seq {
            t += 100;
            rec.record_at(e(s), t);
        }
        let trace = rec.finish(&EventRegistry::new()).unwrap();
        // A replay with disturbances: unknown events (99), mismatching
        // detours, and long clean runs.
        let mut stream: Vec<EventId> = Vec::new();
        for (i, &s) in seq.iter().take(300).enumerate() {
            stream.push(e(s));
            if i % 37 == 0 {
                stream.push(e(99)); // never recorded: Unknown
            }
            if i % 23 == 0 {
                stream.push(e(seq[(i + 5) % seq.len()])); // out-of-place
            }
        }
        for batch in [1usize, 2, 3, 7, 16, 300, stream.len()] {
            let mut a = Predictor::new(&trace);
            let mut b = Predictor::new(&trace);
            for chunk in stream.chunks(batch) {
                let mut last = None;
                for &ev in chunk {
                    last = Some(a.observe(ev));
                }
                assert_eq!(b.observe_batch(chunk), last, "batch size {batch}");
            }
            assert_eq!(a.stats(), b.stats(), "batch size {batch}");
            assert_eq!(a.candidate_count(), b.candidate_count());
            for d in [1usize, 4, 32] {
                let (pa, pb) = (a.predict(d), b.predict(d));
                assert_eq!(pa.distribution, pb.distribution, "distance {d}");
                assert_eq!(pa.end_probability.to_bits(), pb.end_probability.to_bits());
            }
        }
    }
}
