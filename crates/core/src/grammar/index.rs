//! Precomputed query layer over an immutable grammar.
//!
//! The predict-side hot path must never walk the grammar blindly: reseeding
//! after a mismatch needs every occurrence of an event *with its weight*,
//! and distance-`x` simulation needs to know how many terminals a symbol
//! expands to so whole subtrees can be skipped in O(1). A [`GrammarIndex`]
//! computes all of that once, at trace-load time, and is shared (`Arc`) by
//! every predictor over the same thread trace:
//!
//! * per-rule metadata: expanded terminal length (exponents included),
//!   first/last terminal, expansion count as `f64`;
//! * per-rule *suffix lengths*: expanded length of `body[pos..]`, so a
//!   forward simulation can skip the whole tail of a rule body in O(1);
//! * use sites of every rule (for upward extension of partial paths);
//! * the **occurrence index**: `EventId -> [(Loc, weight)]` with
//!   `weight = expansions(rule) × count`, exactly the quantity
//!   `Predictor::seed` needs, in the same deterministic (rule, pos) order
//!   as [`Grammar::terminal_uses`];
//! * the **body arena**: every live rule body copied into one contiguous
//!   `Vec<SymbolUse>` slab (slot order), addressed by per-rule spans.
//!   [`GrammarIndex::body`] serves the same slices as
//!   `Grammar::rule(r).body` but without chasing a per-rule heap `Vec`,
//!   so the observe/predict walkers and the analyzer passes stream
//!   cache-linear memory instead of pointer-hopping.
//!
//! The index is valid only for the exact grammar it was built from; it is
//! attached to the immutable post-compaction grammar inside a
//! [`crate::trace::ThreadTrace`].

use crate::event::EventId;
use crate::grammar::{Grammar, Loc, RuleId, Symbol, SymbolUse};
use crate::util::FxHashMap;

/// Precomputed metadata for one rule (slot).
#[derive(Debug, Clone, Default)]
pub struct RuleMeta {
    /// Number of terminals one expansion of the rule body produces.
    pub expanded_len: u64,
    /// How many times the body is expanded when unfolding the whole trace
    /// (the root expands once), as `f64` for weight arithmetic.
    pub expansions: f64,
    /// First terminal emitted by one expansion (`None` for an empty body,
    /// which only the root of an empty grammar has).
    pub first_terminal: Option<EventId>,
    /// Last terminal emitted by one expansion.
    pub last_terminal: Option<EventId>,
}

/// Precomputed rule-metadata tables and occurrence index for one grammar.
#[derive(Debug, Clone, Default)]
pub struct GrammarIndex {
    /// Per-slot rule metadata (vacant slots hold zeroed entries).
    metas: Vec<RuleMeta>,
    /// Per-slot suffix lengths: `suffix_lens[r][pos]` is the expanded
    /// length of `body[pos..]` (full exponents); one extra trailing `0`.
    suffix_lens: Vec<Vec<u64>>,
    /// Use sites of every rule, indexed by rule slot.
    rule_uses: Vec<Vec<Loc>>,
    /// Every terminal occurrence with its seed weight
    /// (`expansions(rule) × count`), in deterministic (rule, pos) order.
    occurrences: FxHashMap<EventId, Vec<(Loc, f64)>>,
    /// All live rule bodies packed back to back, in rule-slot order.
    arena: Vec<SymbolUse>,
    /// Per-slot `(offset, len)` spans into [`GrammarIndex::arena`]
    /// (vacant slots hold `(0, 0)`).
    spans: Vec<(u32, u32)>,
    /// Total trace length (expanded length of the root).
    trace_len: u64,
}

impl GrammarIndex {
    /// Builds the index in one pass over the rule bodies plus one
    /// topological sweep for lengths and terminals. O(grammar size).
    pub fn build(g: &Grammar) -> Self {
        let n = g.rules_slots();
        let mut metas = vec![RuleMeta::default(); n];
        for (i, c) in g.expansion_counts().into_iter().enumerate() {
            metas[i].expansions = c as f64;
        }
        // Children-first sweep: topological order is parents-first.
        let order = g.topological_order();
        for &id in order.iter().rev() {
            let body = &g.rule(id).body;
            let mut len = 0u64;
            for u in body {
                len += u.count as u64 * symbol_len(&metas, u.symbol);
            }
            metas[id.index()].expanded_len = len;
            metas[id.index()].first_terminal = body
                .first()
                .map(|u| edge_terminal(&metas, u.symbol, /*first=*/ true));
            metas[id.index()].last_terminal = body
                .last()
                .map(|u| edge_terminal(&metas, u.symbol, /*first=*/ false));
        }
        // Suffix lengths, use sites, the occurrence index, and the body
        // arena in one scan.
        let mut suffix_lens = vec![Vec::new(); n];
        let mut rule_uses: Vec<Vec<Loc>> = vec![Vec::new(); n];
        let mut occurrences: FxHashMap<EventId, Vec<(Loc, f64)>> = FxHashMap::default();
        let total_uses: usize = g.iter_rules().map(|(_, r)| r.body.len()).sum();
        let mut arena: Vec<SymbolUse> = Vec::with_capacity(total_uses);
        let mut spans: Vec<(u32, u32)> = vec![(0, 0); n];
        for (id, rule) in g.iter_rules() {
            spans[id.index()] = (arena.len() as u32, rule.body.len() as u32);
            arena.extend_from_slice(&rule.body);
            let mut suffix = vec![0u64; rule.body.len() + 1];
            for (pos, u) in rule.body.iter().enumerate().rev() {
                suffix[pos] = suffix[pos + 1] + u.count as u64 * symbol_len(&metas, u.symbol);
            }
            suffix_lens[id.index()] = suffix;
            for (pos, u) in rule.body.iter().enumerate() {
                let loc = Loc { rule: id, pos };
                match u.symbol {
                    Symbol::Terminal(e) => {
                        let weight = metas[id.index()].expansions * u.count as f64;
                        occurrences.entry(e).or_default().push((loc, weight));
                    }
                    Symbol::Rule(r) => rule_uses[r.index()].push(loc),
                }
            }
        }
        let trace_len = metas[g.root().index()].expanded_len;
        GrammarIndex {
            metas,
            suffix_lens,
            rule_uses,
            occurrences,
            arena,
            spans,
            trace_len,
        }
    }

    /// The body of rule `r` as a slice of the contiguous arena — same
    /// content as `Grammar::rule(r).body`, cache-linear storage. Vacant
    /// slots yield an empty slice.
    #[inline]
    pub fn body(&self, r: RuleId) -> &[SymbolUse] {
        let (off, len) = self.spans[r.index()];
        &self.arena[off as usize..off as usize + len as usize]
    }

    /// The symbol use at `loc`, served from the arena. O(1).
    #[inline]
    pub fn use_at(&self, loc: Loc) -> SymbolUse {
        self.body(loc.rule)[loc.pos]
    }

    /// Metadata of one rule slot.
    #[inline]
    pub fn meta(&self, r: RuleId) -> &RuleMeta {
        &self.metas[r.index()]
    }

    /// Expansion count of a rule as `f64`.
    #[inline]
    pub fn expansion(&self, r: RuleId) -> f64 {
        self.metas[r.index()].expansions
    }

    /// Number of terminals one expansion of `symbol` produces (1 for a
    /// terminal).
    #[inline]
    pub fn sym_len(&self, symbol: Symbol) -> u64 {
        match symbol {
            Symbol::Terminal(_) => 1,
            Symbol::Rule(r) => self.metas[r.index()].expanded_len,
        }
    }

    /// Number of terminals a full use (all repetitions) produces.
    #[inline]
    pub fn use_len(&self, u: SymbolUse) -> u64 {
        u.count as u64 * self.sym_len(u.symbol)
    }

    /// Expanded length of `body[pos..]` of rule `r` (full exponents);
    /// `pos == body.len()` yields 0.
    #[inline]
    pub fn suffix_len(&self, r: RuleId, pos: usize) -> u64 {
        self.suffix_lens[r.index()][pos]
    }

    /// Expanded length of `body[..pos]` of rule `r` — the offset of
    /// position `pos` inside one expansion of the rule. O(1).
    #[inline]
    pub fn prefix_len(&self, r: RuleId, pos: usize) -> u64 {
        let s = &self.suffix_lens[r.index()];
        s[0] - s[pos]
    }

    /// For every rule slot, the index (into the expanded trace) at which
    /// the rule's *first* expansion begins: the anchor the static analyzer
    /// uses to report an approximate event position for a grammar location
    /// (`first_starts[r] + prefix_len(r, pos)`). `None` for vacant or
    /// unreachable slots. One parents-first sweep, O(|grammar|).
    pub fn rule_first_starts(&self, g: &Grammar) -> Vec<Option<u64>> {
        let mut starts: Vec<Option<u64>> = vec![None; g.rules_slots()];
        starts[g.root().index()] = Some(0);
        for &id in &g.topological_order() {
            let Some(s) = starts[id.index()] else {
                continue;
            };
            let mut offset = 0u64;
            for u in &g.rule(id).body {
                if let Symbol::Rule(child) = u.symbol {
                    let candidate = s + offset;
                    if starts[child.index()].is_none_or(|cur| candidate < cur) {
                        starts[child.index()] = Some(candidate);
                    }
                }
                offset += self.use_len(*u);
            }
        }
        starts
    }

    /// First terminal produced when expanding `symbol`, in O(1).
    #[inline]
    pub fn first_terminal(&self, symbol: Symbol) -> EventId {
        match symbol {
            Symbol::Terminal(e) => e,
            Symbol::Rule(r) => self.metas[r.index()]
                .first_terminal
                .expect("empty rule body"),
        }
    }

    /// Use sites of rule `r`.
    #[inline]
    pub fn rule_uses(&self, r: RuleId) -> &[Loc] {
        &self.rule_uses[r.index()]
    }

    /// All occurrences of `event` with their seed weights, or `None` if the
    /// event never occurred in the reference execution.
    #[inline]
    pub fn occurrences(&self, event: EventId) -> Option<&[(Loc, f64)]> {
        self.occurrences.get(&event).map(Vec::as_slice)
    }

    /// Whether `event` occurred in the reference execution. O(1).
    #[inline]
    pub fn knows_event(&self, event: EventId) -> bool {
        self.occurrences.contains_key(&event)
    }

    /// Number of distinct terminals in the grammar.
    pub fn distinct_events(&self) -> usize {
        self.occurrences.len()
    }

    /// Total trace length (expanded length of the root).
    #[inline]
    pub fn trace_len(&self) -> u64 {
        self.trace_len
    }
}

fn symbol_len(metas: &[RuleMeta], symbol: Symbol) -> u64 {
    match symbol {
        Symbol::Terminal(_) => 1,
        Symbol::Rule(r) => metas[r.index()].expanded_len,
    }
}

fn edge_terminal(metas: &[RuleMeta], symbol: Symbol, first: bool) -> EventId {
    match symbol {
        Symbol::Terminal(e) => e,
        Symbol::Rule(r) => {
            let m = &metas[r.index()];
            if first {
                m.first_terminal
            } else {
                m.last_terminal
            }
            .expect("empty rule body")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::builder::GrammarBuilder;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    fn grammar_of(seq: &[u32]) -> Grammar {
        let mut b = GrammarBuilder::new();
        for &s in seq {
            b.push(e(s));
        }
        b.into_grammar().compact()
    }

    #[test]
    fn lengths_match_expanded_len() {
        let seq: Vec<u32> = (0..40).flat_map(|i| [0, 1, 1, 2, i % 3]).collect();
        let g = grammar_of(&seq);
        let idx = GrammarIndex::build(&g);
        assert_eq!(idx.trace_len(), g.trace_len());
        for (id, rule) in g.iter_rules() {
            assert_eq!(
                idx.meta(id).expanded_len,
                g.expanded_len(Symbol::Rule(id)),
                "rule {id}"
            );
            assert_eq!(idx.suffix_len(id, 0), idx.meta(id).expanded_len);
            assert_eq!(idx.suffix_len(id, rule.body.len()), 0);
            for (pos, u) in rule.body.iter().enumerate() {
                assert_eq!(
                    idx.suffix_len(id, pos),
                    idx.suffix_len(id, pos + 1) + idx.use_len(*u),
                );
            }
        }
    }

    #[test]
    fn first_last_terminals() {
        let seq: Vec<u32> = (0..30).flat_map(|_| [5, 6, 7]).collect();
        let g = grammar_of(&seq);
        let idx = GrammarIndex::build(&g);
        for (id, _) in g.iter_rules() {
            assert_eq!(
                idx.first_terminal(Symbol::Rule(id)),
                g.first_terminal(Symbol::Rule(id)),
                "rule {id}"
            );
        }
        assert_eq!(idx.meta(g.root()).last_terminal, Some(e(7)));
    }

    #[test]
    fn occurrence_index_matches_naive_scan() {
        let seq: Vec<u32> = (0..50).flat_map(|i| [0, 1, 2, 2, (i % 4) + 3]).collect();
        let g = grammar_of(&seq);
        let idx = GrammarIndex::build(&g);
        let expansions = g.expansion_counts();
        for ev in 0..8u32 {
            let naive = g.terminal_uses(e(ev));
            match idx.occurrences(e(ev)) {
                None => assert!(naive.is_empty()),
                Some(occs) => {
                    assert_eq!(occs.len(), naive.len());
                    for (&(loc, w), &nloc) in occs.iter().zip(naive.iter()) {
                        assert_eq!(loc, nloc);
                        let want = expansions[loc.rule.index()] as f64 * g.at(loc).count as f64;
                        assert_eq!(w, want);
                    }
                }
            }
        }
        assert!(!idx.knows_event(e(99)));
    }

    #[test]
    fn empty_grammar() {
        let g = Grammar::new();
        let idx = GrammarIndex::build(&g);
        assert_eq!(idx.trace_len(), 0);
        assert_eq!(idx.meta(g.root()).first_terminal, None);
        assert_eq!(idx.distinct_events(), 0);
        assert!(idx.body(g.root()).is_empty());
    }

    #[test]
    fn arena_bodies_match_grammar() {
        let seq: Vec<u32> = (0..60).flat_map(|i| [0, 1, 1, 2, (i % 5) + 3]).collect();
        let g = grammar_of(&seq);
        let idx = GrammarIndex::build(&g);
        for (id, rule) in g.iter_rules() {
            assert_eq!(idx.body(id), rule.body.as_slice(), "rule {id}");
            for (pos, &u) in rule.body.iter().enumerate() {
                assert_eq!(idx.use_at(Loc { rule: id, pos }), u);
            }
        }
        // The arena packs exactly the live bodies, nothing more.
        let total: usize = g.iter_rules().map(|(_, r)| r.body.len()).sum();
        assert_eq!(idx.arena.len(), total);
    }
}
