//! The trace grammar (paper §II-A).
//!
//! A trace — the sequence of terminal events raised by the runtime — is
//! reduced into a *grammar*: a set of rules, each mapping a non-terminal
//! symbol to a finite sequence of terminal and non-terminal symbols, where
//! every symbol use carries a *consecutive-repetition exponent*. One rule is
//! the *root* and represents the complete trace; the trace is the only
//! expression the grammar can produce.
//!
//! The grammar maintained by [`builder::GrammarBuilder`] respects the three
//! rules from the paper at all times:
//!
//! 1. every non-root non-terminal is used at least twice (counting
//!    exponents), so each rule represents a sequence that actually repeats;
//! 2. every ordered couple of distinct adjacent symbols appears at most once
//!    in the whole grammar (digram uniqueness);
//! 3. no symbol appears twice side by side — consecutive repetitions
//!    `aⁿ aᵐ` are merged into `aⁿ⁺ᵐ`.
//!
//! This module holds the passive data structures plus read-side algorithms
//! (unfolding, occurrence counting, pretty-printing); the on-line reduction
//! lives in [`builder`], and the debug validator in [`invariants`].

pub mod builder;
pub mod index;
pub mod invariants;

pub use index::{GrammarIndex, RuleMeta};

use serde::{Deserialize, Serialize};

use crate::event::EventId;
use crate::util::FxHashMap;

/// Identifier of a grammar rule (non-terminal symbol).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RuleId(pub u32);

impl RuleId {
    /// Index into rule-ordered arrays.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "R{}", self.0)
    }
}

/// A grammar symbol: either a terminal (an event) or a non-terminal (a rule).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Symbol {
    /// A terminal symbol: one event raised by the runtime.
    Terminal(EventId),
    /// A non-terminal symbol: a recurring sub-sequence.
    Rule(RuleId),
}

impl Symbol {
    /// Returns the event id if this is a terminal.
    #[inline]
    pub fn terminal(self) -> Option<EventId> {
        match self {
            Symbol::Terminal(e) => Some(e),
            Symbol::Rule(_) => None,
        }
    }

    /// Returns the rule id if this is a non-terminal.
    #[inline]
    pub fn rule(self) -> Option<RuleId> {
        match self {
            Symbol::Rule(r) => Some(r),
            Symbol::Terminal(_) => None,
        }
    }
}

/// One use of a symbol inside a rule body, together with its number of
/// consecutive repetitions (`count >= 1`). `aⁿ` is `SymbolUse { symbol: a,
/// count: n }`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SymbolUse {
    /// The symbol being used.
    pub symbol: Symbol,
    /// Number of consecutive repetitions (≥ 1).
    pub count: u32,
}

impl SymbolUse {
    /// Convenience constructor.
    #[inline]
    pub fn new(symbol: Symbol, count: u32) -> Self {
        debug_assert!(count >= 1);
        SymbolUse { symbol, count }
    }
}

/// A rule body plus the bookkeeping used by the builder.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Rule {
    /// The sequence the non-terminal expands to.
    pub body: Vec<SymbolUse>,
    /// Weighted reference count: the sum of `count` over every use of this
    /// rule in other rule bodies. The root's refcount is 0.
    pub refcount: u32,
}

impl Rule {
    fn empty() -> Self {
        Rule {
            body: Vec::new(),
            refcount: 0,
        }
    }
}

/// An immutable position inside the grammar: `pos`-th symbol use of `rule`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Loc {
    /// Rule whose body contains the symbol use.
    pub rule: RuleId,
    /// Index of the symbol use within the rule body.
    pub pos: usize,
}

/// The trace grammar: a set of rules with a designated root.
///
/// Rule slots may be vacant (`None`) while a [`builder::GrammarBuilder`] is
/// mutating the grammar; [`Grammar::compact`] renumbers rules densely for
/// serialization.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Grammar {
    pub(crate) rules: Vec<Option<Rule>>,
    pub(crate) root: RuleId,
}

impl Default for Grammar {
    fn default() -> Self {
        Self::new()
    }
}

impl Grammar {
    /// Creates a grammar containing only an empty root rule.
    pub fn new() -> Self {
        Grammar {
            rules: vec![Some(Rule::empty())],
            root: RuleId(0),
        }
    }

    /// The root rule id.
    #[inline]
    pub fn root(&self) -> RuleId {
        self.root
    }

    /// Returns the rule for `id`, panicking if the slot is vacant.
    #[inline]
    pub fn rule(&self, id: RuleId) -> &Rule {
        self.rules[id.index()]
            .as_ref()
            .expect("rule slot is vacant")
    }

    /// Returns the rule for `id` if the slot is live.
    #[inline]
    pub fn try_rule(&self, id: RuleId) -> Option<&Rule> {
        self.rules.get(id.index()).and_then(|r| r.as_ref())
    }

    #[inline]
    pub(crate) fn rule_mut(&mut self, id: RuleId) -> &mut Rule {
        self.rules[id.index()]
            .as_mut()
            .expect("rule slot is vacant")
    }

    /// Whether `id` refers to a live rule.
    #[inline]
    pub fn is_live(&self, id: RuleId) -> bool {
        self.try_rule(id).is_some()
    }

    /// Number of live rules, including the root.
    ///
    /// This is the "# rules" metric of the paper's Table I.
    pub fn rule_count(&self) -> usize {
        self.rules.iter().filter(|r| r.is_some()).count()
    }

    /// Total number of rule slots (live + vacant); rule ids index into this
    /// range.
    pub fn rules_slots(&self) -> usize {
        self.rules.len()
    }

    /// Iterates over `(id, rule)` for all live rules.
    pub fn iter_rules(&self) -> impl Iterator<Item = (RuleId, &Rule)> {
        self.rules
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().map(|r| (RuleId(i as u32), r)))
    }

    /// The symbol use at `loc`.
    #[inline]
    pub fn at(&self, loc: Loc) -> SymbolUse {
        self.rule(loc.rule).body[loc.pos]
    }

    /// Total number of terminal occurrences the grammar unfolds to, i.e. the
    /// length of the original trace.
    pub fn trace_len(&self) -> u64 {
        self.expanded_len(Symbol::Rule(self.root))
    }

    /// Number of terminals `symbol` expands to (1 for terminals).
    pub fn expanded_len(&self, symbol: Symbol) -> u64 {
        let mut memo: FxHashMap<RuleId, u64> = FxHashMap::default();
        self.expanded_len_memo(symbol, &mut memo)
    }

    fn expanded_len_memo(&self, symbol: Symbol, memo: &mut FxHashMap<RuleId, u64>) -> u64 {
        match symbol {
            Symbol::Terminal(_) => 1,
            Symbol::Rule(r) => {
                if let Some(&n) = memo.get(&r) {
                    return n;
                }
                let n = self
                    .rule(r)
                    .body
                    .iter()
                    .map(|u| u.count as u64 * self.expanded_len_memo(u.symbol, memo))
                    .sum();
                memo.insert(r, n);
                n
            }
        }
    }

    /// Unfolds the grammar back into the full terminal sequence.
    ///
    /// This is the inverse of the reduction: recursively replacing every
    /// non-terminal with its body and expanding repetition exponents (paper
    /// Fig. 1). Use [`Grammar::unfold_iter`] to avoid materializing the
    /// whole trace.
    pub fn unfold(&self) -> Vec<EventId> {
        self.unfold_iter().collect()
    }

    /// Lazily unfolds the grammar into the terminal sequence.
    pub fn unfold_iter(&self) -> Unfold<'_> {
        Unfold::new(self)
    }

    /// How many times each live rule's body is expanded when unfolding the
    /// whole trace (the root expands exactly once). Indexed by rule slot.
    ///
    /// These counts drive the probability estimates of PYTHIA-PREDICT
    /// (paper §II-C): the likelihood of a progress sequence is proportional
    /// to the number of times it occurs in the reference execution.
    pub fn expansion_counts(&self) -> Vec<u64> {
        // The rule graph is a DAG; process rules in topological order from
        // the root by repeated relaxation (the grammar is small, and a
        // simple two-phase DFS avoids recursion limits).
        let mut counts = vec![0u64; self.rules.len()];
        counts[self.root.index()] = 1;
        for &id in self.topological_order().iter() {
            let c = counts[id.index()];
            if c == 0 {
                continue;
            }
            for u in &self.rule(id).body {
                if let Symbol::Rule(r) = u.symbol {
                    counts[r.index()] += c * u.count as u64;
                }
            }
        }
        counts
    }

    /// Live rules sorted so that every rule precedes the rules it references
    /// (root first). Panics if the rule graph has a cycle, which the builder
    /// never produces.
    pub fn topological_order(&self) -> Vec<RuleId> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut marks = vec![Mark::White; self.rules.len()];
        let mut order = Vec::with_capacity(self.rules.len());
        // Iterative post-order DFS over rule references.
        for (start, _) in self.iter_rules() {
            if marks[start.index()] != Mark::White {
                continue;
            }
            let mut stack: Vec<(RuleId, usize)> = vec![(start, 0)];
            marks[start.index()] = Mark::Grey;
            'outer: while let Some(&(r, next)) = stack.last() {
                let body_len = self.rule(r).body.len();
                let mut i = next;
                while i < body_len {
                    let sym = self.rule(r).body[i].symbol;
                    i += 1;
                    if let Symbol::Rule(child) = sym {
                        match marks[child.index()] {
                            Mark::White => {
                                marks[child.index()] = Mark::Grey;
                                stack.last_mut().unwrap().1 = i;
                                stack.push((child, 0));
                                continue 'outer;
                            }
                            Mark::Grey => panic!("grammar rule graph has a cycle at {child}"),
                            Mark::Black => {}
                        }
                    }
                }
                marks[r.index()] = Mark::Black;
                order.push(r);
                stack.pop();
            }
        }
        // Post-order gives children first; reverse for parents-first.
        order.reverse();
        order
    }

    /// First terminal produced when expanding `symbol`.
    pub fn first_terminal(&self, symbol: Symbol) -> EventId {
        let mut s = symbol;
        loop {
            match s {
                Symbol::Terminal(e) => return e,
                Symbol::Rule(r) => {
                    s = self.rule(r).body.first().expect("empty rule body").symbol;
                }
            }
        }
    }

    /// Every location where the terminal `event` is used, across all live
    /// rules, in deterministic (rule, position) order.
    pub fn terminal_uses(&self, event: EventId) -> Vec<Loc> {
        let mut out = Vec::new();
        for (id, rule) in self.iter_rules() {
            for (pos, u) in rule.body.iter().enumerate() {
                if u.symbol == Symbol::Terminal(event) {
                    out.push(Loc { rule: id, pos });
                }
            }
        }
        out
    }

    /// Every location where rule `target` is used.
    pub fn rule_uses(&self, target: RuleId) -> Vec<Loc> {
        let mut out = Vec::new();
        self.collect_rule_uses(target, &mut out);
        out
    }

    /// [`Grammar::rule_uses`] into a caller-provided buffer (cleared
    /// first), so hot callers can recycle the allocation.
    pub fn collect_rule_uses(&self, target: RuleId, out: &mut Vec<Loc>) {
        out.clear();
        for (id, rule) in self.iter_rules() {
            for (pos, u) in rule.body.iter().enumerate() {
                if u.symbol == Symbol::Rule(target) {
                    out.push(Loc { rule: id, pos });
                }
            }
        }
    }

    /// Renumbers live rules densely (root becomes rule 0) and drops vacant
    /// slots. Used before serialization.
    pub fn compact(&self) -> Grammar {
        let mut remap: FxHashMap<RuleId, RuleId> = FxHashMap::default();
        remap.insert(self.root, RuleId(0));
        let mut next = 1u32;
        for (id, _) in self.iter_rules() {
            if id != self.root {
                remap.insert(id, RuleId(next));
                next += 1;
            }
        }
        let mut rules: Vec<Option<Rule>> = vec![None; next as usize];
        for (id, rule) in self.iter_rules() {
            let mut new_rule = rule.clone();
            for u in &mut new_rule.body {
                if let Symbol::Rule(r) = u.symbol {
                    u.symbol = Symbol::Rule(remap[&r]);
                }
            }
            rules[remap[&id].index()] = Some(new_rule);
        }
        Grammar {
            rules,
            root: RuleId(0),
        }
    }

    /// Renders the grammar in the paper's notation, resolving terminal names
    /// through `name_of`:
    ///
    /// ```text
    /// R0 -> Bcast^6 R1 Barrier R2^200 ...
    /// R1 -> Irecv Irecv Waitall
    /// ```
    pub fn render(&self, name_of: &dyn Fn(EventId) -> String) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let mut ids: Vec<RuleId> = self.iter_rules().map(|(id, _)| id).collect();
        ids.sort();
        // Root first.
        ids.retain(|&id| id != self.root);
        ids.insert(0, self.root);
        for id in ids {
            let _ = write!(out, "{id} ->");
            for u in &self.rule(id).body {
                match u.symbol {
                    Symbol::Terminal(e) => {
                        let _ = write!(out, " {}", name_of(e));
                    }
                    Symbol::Rule(r) => {
                        let _ = write!(out, " {r}");
                    }
                }
                if u.count > 1 {
                    let _ = write!(out, "^{}", u.count);
                }
            }
            out.push('\n');
        }
        out
    }
}

/// Lazy depth-first unfolding of a [`Grammar`] into its terminal sequence.
pub struct Unfold<'g> {
    grammar: &'g Grammar,
    // Stack of (rule, position, repetitions already emitted for that use).
    stack: Vec<(RuleId, usize, u32)>,
}

impl<'g> Unfold<'g> {
    fn new(grammar: &'g Grammar) -> Self {
        let mut u = Unfold {
            grammar,
            stack: Vec::new(),
        };
        if !grammar.rule(grammar.root).body.is_empty() {
            u.stack.push((grammar.root, 0, 0));
            u.descend();
        }
        u
    }

    /// Descends from the current top-of-stack use until it points at a
    /// terminal use.
    fn descend(&mut self) {
        loop {
            let &(rule, pos, _) = self.stack.last().unwrap();
            match self.grammar.rule(rule).body[pos].symbol {
                Symbol::Terminal(_) => return,
                Symbol::Rule(r) => self.stack.push((r, 0, 0)),
            }
        }
    }
}

impl Iterator for Unfold<'_> {
    type Item = EventId;

    fn next(&mut self) -> Option<EventId> {
        let &(rule, pos, _) = self.stack.last()?;
        let u = self.grammar.rule(rule).body[pos];
        let event = u.symbol.terminal().expect("descend stopped at terminal");
        // Advance to the next terminal position.
        while let Some(&(r, p, rep)) = self.stack.last() {
            let use_ = self.grammar.rule(r).body[p];
            let body_len = self.grammar.rule(r).body.len();
            if rep + 1 < use_.count {
                // Another repetition of the same use.
                self.stack.last_mut().unwrap().2 = rep + 1;
                if let Symbol::Rule(_) = use_.symbol {
                    // Re-enter the sub-rule from its start.
                    self.descend();
                }
                return Some(event);
            }
            if p + 1 < body_len {
                let top = self.stack.last_mut().unwrap();
                top.1 = p + 1;
                top.2 = 0;
                self.descend();
                return Some(event);
            }
            // Finished this rule body; pop and continue in the parent.
            self.stack.pop();
        }
        Some(event)
    }
}

#[cfg(test)]
mod tests {
    use super::builder::GrammarBuilder;
    use super::*;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    /// Builds a grammar for the paper's Fig. 1 trace "abbcbcab" by hand.
    fn fig1_grammar() -> Grammar {
        // R  -> A B^2 A        (paper: R -> A b B A ... we use the variant
        // A  -> a b            that our exponent scheme produces; what the
        // B  -> b c            test checks is unfold == "abbcbcab")
        let mut g = Grammar::new();
        // rule 1: A -> a b
        g.rules.push(Some(Rule {
            body: vec![
                SymbolUse::new(Symbol::Terminal(e(0)), 1),
                SymbolUse::new(Symbol::Terminal(e(1)), 1),
            ],
            refcount: 2,
        }));
        // rule 2: B -> b c
        g.rules.push(Some(Rule {
            body: vec![
                SymbolUse::new(Symbol::Terminal(e(1)), 1),
                SymbolUse::new(Symbol::Terminal(e(2)), 1),
            ],
            refcount: 2,
        }));
        let root = g.root;
        g.rules[root.index()] = Some(Rule {
            body: vec![
                SymbolUse::new(Symbol::Rule(RuleId(1)), 1),
                SymbolUse::new(Symbol::Rule(RuleId(2)), 2),
                SymbolUse::new(Symbol::Rule(RuleId(1)), 1),
            ],
            refcount: 0,
        });
        g
    }

    #[test]
    fn unfold_hand_built_grammar() {
        let g = fig1_grammar();
        let trace: Vec<u32> = g.unfold().into_iter().map(|x| x.0).collect();
        // a b | b c | b c | a b
        assert_eq!(trace, vec![0, 1, 1, 2, 1, 2, 0, 1]);
        assert_eq!(g.trace_len(), 8);
    }

    #[test]
    fn unfold_empty_grammar() {
        let g = Grammar::new();
        assert_eq!(g.unfold(), Vec::<EventId>::new());
        assert_eq!(g.trace_len(), 0);
    }

    #[test]
    fn expansion_counts_weighted_by_exponents() {
        let g = fig1_grammar();
        let counts = g.expansion_counts();
        assert_eq!(counts[g.root.index()], 1);
        assert_eq!(counts[1], 2); // A used twice
        assert_eq!(counts[2], 2); // B used once with exponent 2
    }

    #[test]
    fn first_terminal_descends() {
        let g = fig1_grammar();
        assert_eq!(g.first_terminal(Symbol::Rule(g.root)), e(0));
        assert_eq!(g.first_terminal(Symbol::Rule(RuleId(2))), e(1));
        assert_eq!(g.first_terminal(Symbol::Terminal(e(7))), e(7));
    }

    #[test]
    fn terminal_and_rule_uses() {
        let g = fig1_grammar();
        // b appears in A (pos 1) and B (pos 0).
        let uses = g.terminal_uses(e(1));
        assert_eq!(uses.len(), 2);
        let a_uses = g.rule_uses(RuleId(1));
        assert_eq!(a_uses.len(), 2); // two sites in root
        let b_uses = g.rule_uses(RuleId(2));
        assert_eq!(b_uses.len(), 1); // one site, exponent 2
    }

    #[test]
    fn compact_renumbers_and_preserves_trace() {
        let mut b = GrammarBuilder::new();
        let seq = [0u32, 1, 1, 2, 1, 2, 0, 1, 0, 1, 1, 2];
        for &s in &seq {
            b.push(e(s));
        }
        let g = b.into_grammar();
        let c = g.compact();
        assert_eq!(c.root(), RuleId(0));
        assert_eq!(c.rules.iter().filter(|r| r.is_none()).count(), 0);
        assert_eq!(g.unfold(), c.unfold());
    }

    #[test]
    fn render_uses_exponents() {
        let g = fig1_grammar();
        let s = g.render(&|id| ["a", "b", "c"][id.index()].to_owned());
        assert!(s.contains("R0 ->"), "{s}");
        assert!(s.contains("^2"), "{s}");
    }

    #[test]
    fn topological_order_root_first() {
        let g = fig1_grammar();
        let order = g.topological_order();
        assert_eq!(order[0], g.root);
        assert_eq!(order.len(), 3);
    }
}
