//! Validation of the grammar invariants of paper §II-A.
//!
//! Two surfaces share one engine (the release-mode grammar linter,
//! [`crate::analyze::lint`]):
//!
//! * [`Grammar::check_invariants`] — public API validating a *loaded*,
//!   read-only grammar (e.g. one deserialized from a trace file): digram
//!   uniqueness, rule utility, run merging, exponent sanity, refcount
//!   recount, reachability, acyclicity. Every message references only
//!   grammar-visible state, so it is meaningful post-load.
//! * [`GrammarBuilder::check_invariants`] — the debug validator exercised
//!   after every event push by the unit and property tests. It layers the
//!   builder-only checks on top: the digram index must cover exactly the
//!   pairs present in rule bodies, and the grammar must expand to exactly
//!   the number of events pushed.

use crate::analyze::lint::{lint_grammar, LintOptions};
use crate::analyze::Severity;
use crate::grammar::builder::GrammarBuilder;
use crate::grammar::{Grammar, Loc, Symbol};
use crate::util::FxHashMap;

impl Grammar {
    /// Validates all grammar invariants on this (possibly loaded) grammar,
    /// returning a description of the first violation found.
    ///
    /// This is the strict variant: warnings of the underlying linter (rule
    /// utility, aliases, unreachable rules) are violations too, because a
    /// grammar the reduction produced can never contain them. Use
    /// [`crate::analyze::lint_grammar`] directly for the full diagnostic
    /// list with severities and positions.
    pub fn check_invariants(&self) -> Result<(), String> {
        let diags = lint_grammar(
            self,
            &LintOptions {
                expected_events: None,
                annotate_positions: false,
            },
        );
        match diags.into_iter().find(|d| d.severity >= Severity::Warning) {
            Some(d) => Err(d.message),
            None => Ok(()),
        }
    }
}

impl GrammarBuilder {
    /// Validates all grammar invariants plus the builder's bookkeeping,
    /// returning a description of the first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let g = self.grammar();
        g.check_invariants()?;

        // -- digram index covers exactly the existing pairs (builder-only
        //    state; the grammar-level linter cannot see the index) ---------
        let mut pairs: FxHashMap<(Symbol, Symbol), Loc> = FxHashMap::default();
        for (id, rule) in g.iter_rules() {
            for (pos, u) in rule.body.iter().enumerate() {
                if pos + 1 < rule.body.len() {
                    pairs.insert((u.symbol, rule.body[pos + 1].symbol), Loc { rule: id, pos });
                }
            }
        }
        for (key, loc) in &pairs {
            match self.digram_entry(*key) {
                None => {
                    return Err(format!(
                        "pair at {}[{}] missing from digram index",
                        loc.rule, loc.pos
                    ));
                }
                Some(entry) => {
                    if entry.rule != loc.rule {
                        return Err(format!(
                            "digram index points at rule {} but pair lives in {}",
                            entry.rule, loc.rule
                        ));
                    }
                }
            }
        }

        // -- losslessness of length (needs the builder's event counter) ----
        if g.trace_len() != self.event_count() {
            return Err(format!(
                "trace length {} != events pushed {}",
                g.trace_len(),
                self.event_count()
            ));
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;
    use crate::grammar::{Rule, RuleId, SymbolUse};

    #[test]
    fn fresh_builder_is_valid() {
        let b = GrammarBuilder::new();
        b.check_invariants().unwrap();
    }

    #[test]
    fn validator_runs_after_pushes() {
        let mut b = GrammarBuilder::new();
        for ev in [0u32, 1, 2, 0, 1, 2, 0, 1, 2, 3, 3, 3] {
            b.push(EventId(ev));
            b.flush_accel();
            b.check_invariants().unwrap();
        }
    }

    #[test]
    fn loaded_grammar_validates_standalone() {
        let mut b = GrammarBuilder::new();
        for ev in [0u32, 1, 2, 0, 1, 2, 0, 1, 2] {
            b.push(EventId(ev));
        }
        let g = b.into_grammar().compact();
        g.check_invariants().unwrap();
    }

    #[test]
    fn corrupted_grammar_fails_standalone_check() {
        let mut b = GrammarBuilder::new();
        for ev in [0u32, 1, 0, 1, 0, 1, 2] {
            b.push(EventId(ev));
        }
        let mut g = b.into_grammar().compact();
        let victim = g
            .iter_rules()
            .map(|(id, _)| id)
            .find(|&id| id != g.root())
            .unwrap();
        g.rules[victim.index()].as_mut().unwrap().refcount += 1;
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("refcount"), "{err}");
    }

    #[test]
    fn message_references_no_builder_state() {
        // A hand-built grammar (no builder in sight) with a duplicated
        // digram still gets a precise message.
        let mut g = Grammar::new();
        let t = |n: u32| SymbolUse::new(Symbol::Terminal(EventId(n)), 1);
        g.rules[0] = Some(Rule {
            body: vec![t(0), t(1), t(2), t(0), t(1)],
            refcount: 0,
        });
        assert_eq!(g.root(), RuleId(0));
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("digram duplicated"), "{err}");
    }
}
