//! Debug validator for the grammar invariants of paper §II-A.
//!
//! The validator is exercised after every event push by the unit tests and
//! the property-based tests; it is not used on the hot path. It verifies:
//!
//! 1. rule utility — every non-root rule is used at least twice (weighted
//!    by repetition exponents);
//! 2. digram uniqueness — every ordered pair of distinct adjacent symbols
//!    appears at most once across all rule bodies, and the digram index
//!    covers exactly those pairs;
//! 3. run merging — no symbol appears twice side by side, and every
//!    repetition exponent is at least 1;
//! 4. structure — reference counts match a full recount, every live rule is
//!    reachable from the root, and the rule graph is acyclic.

use crate::grammar::builder::GrammarBuilder;
use crate::grammar::{Loc, RuleId, Symbol};
use crate::util::{FxHashMap, FxHashSet};

impl GrammarBuilder {
    /// Validates all grammar invariants, returning a description of the
    /// first violation found.
    pub fn check_invariants(&self) -> Result<(), String> {
        let g = self.grammar();
        let root = g.root();

        // -- per-rule body checks + collect pairs and refcounts ----------
        let mut pairs: FxHashMap<(Symbol, Symbol), Loc> = FxHashMap::default();
        let mut refcounts: FxHashMap<RuleId, u32> = FxHashMap::default();
        for (id, rule) in g.iter_rules() {
            if id != root && rule.body.is_empty() {
                return Err(format!("non-root rule {id} has an empty body"));
            }
            if id != root && rule.body.len() == 1 && rule.body[0].count == 1 {
                return Err(format!("rule {id} is an alias (single unit use)"));
            }
            for (pos, u) in rule.body.iter().enumerate() {
                if u.count == 0 {
                    return Err(format!("zero repetition count at {id}[{pos}]"));
                }
                if let Symbol::Rule(r) = u.symbol {
                    if !g.is_live(r) {
                        return Err(format!("{id}[{pos}] references dead rule {r}"));
                    }
                    *refcounts.entry(r).or_insert(0) += u.count;
                }
                if pos + 1 < rule.body.len() {
                    let next = rule.body[pos + 1];
                    if next.symbol == u.symbol {
                        return Err(format!(
                            "adjacent equal symbols (unmerged run) at {id}[{pos}]"
                        ));
                    }
                    let key = (u.symbol, next.symbol);
                    if let Some(prev) = pairs.insert(key, Loc { rule: id, pos }) {
                        return Err(format!(
                            "digram duplicated at {id}[{pos}] and {}[{}]",
                            prev.rule, prev.pos
                        ));
                    }
                }
            }
        }

        // -- digram index covers exactly the existing pairs --------------
        for (key, loc) in &pairs {
            match self.digram_entry(*key) {
                None => {
                    return Err(format!(
                        "pair at {}[{}] missing from digram index",
                        loc.rule, loc.pos
                    ));
                }
                Some(entry) => {
                    if entry.rule != loc.rule {
                        return Err(format!(
                            "digram index points at rule {} but pair lives in {}",
                            entry.rule, loc.rule
                        ));
                    }
                }
            }
        }

        // -- refcounts + utility ------------------------------------------
        for (id, rule) in g.iter_rules() {
            let expected = refcounts.get(&id).copied().unwrap_or(0);
            if rule.refcount != expected {
                return Err(format!(
                    "rule {id} refcount {} != recount {expected}",
                    rule.refcount
                ));
            }
            if id != root && expected < 2 {
                return Err(format!(
                    "rule utility violated: {id} used {expected} time(s)"
                ));
            }
            if id == root && expected != 0 {
                return Err(format!("root is referenced {expected} time(s)"));
            }
        }

        // -- reachability (acyclicity is asserted by topological_order) ---
        let order = g.topological_order();
        let reachable: FxHashSet<RuleId> = {
            let mut seen: FxHashSet<RuleId> = FxHashSet::default();
            let mut stack = vec![root];
            while let Some(r) = stack.pop() {
                if !seen.insert(r) {
                    continue;
                }
                for u in &g.rule(r).body {
                    if let Symbol::Rule(child) = u.symbol {
                        stack.push(child);
                    }
                }
            }
            seen
        };
        for (id, _) in g.iter_rules() {
            if !reachable.contains(&id) {
                return Err(format!("rule {id} unreachable from root"));
            }
        }
        if order.len() != g.rule_count() {
            return Err("topological order misses live rules".to_owned());
        }

        // -- losslessness of length ---------------------------------------
        if g.trace_len() != self.event_count() {
            return Err(format!(
                "trace length {} != events pushed {}",
                g.trace_len(),
                self.event_count()
            ));
        }

        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventId;

    #[test]
    fn fresh_builder_is_valid() {
        let b = GrammarBuilder::new();
        b.check_invariants().unwrap();
    }

    #[test]
    fn validator_runs_after_pushes() {
        let mut b = GrammarBuilder::new();
        for ev in [0u32, 1, 2, 0, 1, 2, 0, 1, 2, 3, 3, 3] {
            b.push(EventId(ev));
            b.check_invariants().unwrap();
        }
    }
}
