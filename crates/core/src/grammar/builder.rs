//! On-the-fly reduction of an event stream into the trace grammar
//! (PYTHIA-RECORD's core algorithm, paper §II-A and Fig. 3).
//!
//! The algorithm is derived from Sequitur (Nevill-Manning & Witten) extended
//! with consecutive-repetition exponents (as in Cyclitur): every use of a
//! symbol carries a repetition count, and *digrams* — ordered pairs of
//! distinct adjacent symbols — must be unique across the grammar. When a
//! digram appears twice, the shared part `a^k b^m` (with `k`/`m` the minimum
//! exponents of the two occurrences) is factored into a rule, reusing an
//! existing rule whose body is exactly that digram when possible. Rules
//! whose weighted use count drops below two are inlined back (rule utility).
//!
//! ### Implementation notes
//!
//! Rule bodies are flat `Vec<SymbolUse>`s rather than the linked lists of
//! classic Sequitur; bodies stay short once the trace compresses, and the
//! root is only mutated near its tail in the common case. The digram index
//! is a [`DigramTable`] — open addressing over a flat slot array keyed by
//! the exact packed symbol pair, probed linearly from a multiplicative
//! hash, so the per-event lookup is a handful of arithmetic ops and one
//! cache line in the common hit case (no tuple hashing, no bucket
//! indirection). It maps a symbol pair to one location and is repaired
//! lazily: positions may go stale after a splice, so lookups re-validate
//! and rescan the recorded rule when needed. Structural repairs (digram
//! collisions → factoring, boundary merges, rule-utility inlining) are
//! driven by a work queue of *dirty windows* so that no recursive mutation
//! happens while a rule body is being scanned.
//!
//! ### Loop acceleration
//!
//! Steady-state loops are the dominant workload (the paper's traces are
//! overwhelmingly `motif^n`), and the generic machinery pays a full
//! factor→substitute→inline churn cycle per motif repetition just to end
//! up bumping one repetition exponent. The builder therefore runs a *loop
//! cursor*: when the root ends in a rule use `A^k` and the next event
//! matches the first terminal of `A`'s expansion, incoming terminals are
//! appended to the root **raw** (unindexed, no digram work) while the
//! cursor walks `A`'s expansion in lockstep. If the whole expansion
//! matches, the raw tail is truncated and the use becomes `A^{k+1}` — a
//! handful of writes per motif instead of the churn cycle. On a mismatch
//! the raw tail is re-scanned through the normal digram machinery
//! ([`GrammarBuilder::flush_accel`]), reproducing exactly what immediate
//! processing would have produced. The grammar is **lossless at every
//! instant** (the raw tail unfolds as part of the root); only the digram
//! index invariants are deferred while a cursor is in flight, so
//! compaction/publication boundaries and the invariant validator flush
//! first.

use std::collections::VecDeque;

use crate::event::EventId;
use crate::grammar::{Grammar, Loc, Rule, RuleId, Symbol, SymbolUse};

/// Packs a symbol into a collision-free 64-bit code: terminals keep their
/// event id, rules set bit 32 above their id. Both ids are `u32`, so codes
/// never collide and never reach `u64::MAX`.
#[inline]
fn sym_code(s: Symbol) -> u64 {
    match s {
        Symbol::Terminal(e) => e.0 as u64,
        Symbol::Rule(r) => (1u64 << 32) | r.0 as u64,
    }
}

/// Packs an ordered symbol pair into its exact 128-bit key.
#[inline]
fn digram_key(key: (Symbol, Symbol)) -> u128 {
    ((sym_code(key.0) as u128) << 64) | sym_code(key.1) as u128
}

/// Slot sentinel: unreachable as a real key because each packed half is
/// at most `2^33 - 1`.
const EMPTY: u128 = u128::MAX;

/// Open-addressing digram index: exact `u128` keys in one flat slot
/// array, linear probing, back-shift deletion (no tombstones). The hot
/// probe is branch-predictable arithmetic — multiply-mix, mask, compare —
/// instead of `FxHashMap`'s tuple hashing and bucket logic.
#[derive(Debug)]
struct DigramTable {
    /// Packed pair per slot, `EMPTY` when vacant. Power-of-two length.
    keys: Vec<u128>,
    /// Value per slot (garbage when the slot is vacant).
    vals: Vec<Loc>,
    /// Occupied slots.
    len: usize,
}

impl DigramTable {
    const MIN_SLOTS: usize = 64;

    fn new() -> Self {
        DigramTable {
            keys: vec![EMPTY; Self::MIN_SLOTS],
            vals: vec![
                Loc {
                    rule: RuleId(0),
                    pos: 0
                };
                Self::MIN_SLOTS
            ],
            len: 0,
        }
    }

    #[inline]
    fn mask(&self) -> usize {
        self.keys.len() - 1
    }

    /// Probe start: both key halves multiplied by odd constants and
    /// folded, so adjacent ids spread across the table.
    #[inline]
    fn probe_start(&self, key: u128) -> usize {
        let lo = key as u64;
        let hi = (key >> 64) as u64;
        let mut h = lo.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        h ^= hi.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        h ^= h >> 32;
        h as usize & self.mask()
    }

    #[inline]
    fn get(&self, key: u128) -> Option<Loc> {
        let mask = self.mask();
        let mut i = self.probe_start(key);
        loop {
            let k = self.keys[i];
            if k == key {
                return Some(self.vals[i]);
            }
            if k == EMPTY {
                return None;
            }
            i = (i + 1) & mask;
        }
    }

    /// Inserts or overwrites.
    fn insert(&mut self, key: u128, val: Loc) {
        // Grow at 3/4 load to keep probe runs short.
        if (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        let mask = self.mask();
        let mut i = self.probe_start(key);
        loop {
            let k = self.keys[i];
            if k == key {
                self.vals[i] = val;
                return;
            }
            if k == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return;
            }
            i = (i + 1) & mask;
        }
    }

    /// Removes `key` if present, back-shifting the following probe run so
    /// no tombstones accumulate (lookups stay probe-run bounded forever).
    fn remove(&mut self, key: u128) {
        let mask = self.mask();
        let mut i = self.probe_start(key);
        loop {
            let k = self.keys[i];
            if k == EMPTY {
                return;
            }
            if k == key {
                break;
            }
            i = (i + 1) & mask;
        }
        self.len -= 1;
        // Back-shift: any later element of the run whose home slot lies
        // cyclically at or before the vacated slot moves into it.
        let mut j = i;
        loop {
            j = (j + 1) & mask;
            let kj = self.keys[j];
            if kj == EMPTY {
                break;
            }
            let home = self.probe_start(kj);
            if (j.wrapping_sub(home) & mask) >= (j.wrapping_sub(i) & mask) {
                self.keys[i] = kj;
                self.vals[i] = self.vals[j];
                i = j;
            }
        }
        self.keys[i] = EMPTY;
    }

    fn grow(&mut self) {
        let new_slots = self.keys.len() * 2;
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_slots]);
        let old_vals = std::mem::replace(
            &mut self.vals,
            vec![
                Loc {
                    rule: RuleId(0),
                    pos: 0
                };
                new_slots
            ],
        );
        self.len = 0;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k != EMPTY {
                self.insert(k, v);
            }
        }
    }
}

/// Range of pair-start indices (inclusive) of a rule body that must be
/// re-checked for merges / unregistered digrams / digram collisions.
#[derive(Debug, Clone, Copy)]
struct Window {
    rule: RuleId,
    lo: usize,
    hi: usize,
}

/// Incrementally reduces a terminal sequence into a [`Grammar`].
///
/// ```
/// use pythia_core::event::EventId;
/// use pythia_core::grammar::builder::GrammarBuilder;
///
/// let mut b = GrammarBuilder::new();
/// for ev in [0u32, 1, 1, 2, 1, 2, 0, 1] {
///     b.push(EventId(ev));
/// }
/// let g = b.into_grammar();
/// let unfolded: Vec<u32> = g.unfold().into_iter().map(|e| e.0).collect();
/// assert_eq!(unfolded, vec![0, 1, 1, 2, 1, 2, 0, 1]);
/// ```
#[derive(Debug)]
pub struct GrammarBuilder {
    g: Grammar,
    digrams: DigramTable,
    free: Vec<RuleId>,
    windows: VecDeque<Window>,
    utility: Vec<RuleId>,
    event_count: u64,
    /// Recycled rule-body buffers: factoring constantly creates short-lived
    /// rules (created on a digram repeat, often inlined away a few events
    /// later), and round-tripping their `Vec`s through the allocator
    /// dominated the record hot path. Bounded so a pathological burst
    /// cannot pin memory.
    body_pool: Vec<Vec<SymbolUse>>,
    /// Scratch buffer for rule-use collection (same motivation).
    sites: Vec<Loc>,
    /// Loop-acceleration cursor (see the module docs).
    accel: AccelCursor,
}

/// Cursor state for loop acceleration: a descent stack walking the
/// engaged rule's expansion terminal by terminal, plus the root-body
/// index where the raw (unindexed) tail starts.
#[derive(Debug, Default)]
struct AccelCursor {
    /// Whether a raw tail is in flight.
    active: bool,
    /// Root-body index of the first raw use; the raw tail is
    /// `root.body[raw_start..]`.
    raw_start: usize,
    /// Descent stack: `(rule, pos, remaining)` — `remaining` full
    /// repetitions of `rule.body[pos]` not yet consumed. The expansion is
    /// complete when the stack empties. Only valid while `active` (and
    /// during engagement); the grammar is never mutated structurally while
    /// a cursor is in flight, so positions cannot go stale.
    frames: Vec<(RuleId, usize, u32)>,
}

impl Default for GrammarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GrammarBuilder {
    /// Creates a builder with an empty grammar.
    pub fn new() -> Self {
        GrammarBuilder {
            g: Grammar::new(),
            digrams: DigramTable::new(),
            free: Vec::new(),
            windows: VecDeque::new(),
            utility: Vec::new(),
            event_count: 0,
            body_pool: Vec::new(),
            sites: Vec::new(),
            accel: AccelCursor::default(),
        }
    }

    /// Takes a recycled body buffer (empty, capacity retained) or a fresh
    /// one.
    fn pooled_body(&mut self) -> Vec<SymbolUse> {
        self.body_pool.pop().unwrap_or_default()
    }

    /// Returns a dead rule's body buffer to the pool.
    fn recycle_body(&mut self, mut body: Vec<SymbolUse>) {
        if self.body_pool.len() < 32 {
            body.clear();
            self.body_pool.push(body);
        }
    }

    /// Appends one terminal event to the trace. The grammar is lossless
    /// when this returns; digram/index invariants may be deferred while a
    /// loop-acceleration cursor is in flight (see the module docs and
    /// [`GrammarBuilder::flush_accel`]).
    pub fn push(&mut self, event: EventId) {
        self.event_count += 1;
        if self.accel.active {
            if self.accel_next_terminal() == Some(event) {
                self.append_raw(event);
                if !self.accel_advance() {
                    self.fold_cycle();
                }
                return;
            }
            // Mismatch: settle the raw tail through the normal machinery,
            // then take the legacy path for this event.
            self.deaccelerate();
        } else if self.try_engage(event) {
            return;
        }
        self.push_legacy(event);
    }

    /// The classic per-event path: merge into a trailing terminal run or
    /// append a fresh use and run the digram machinery.
    fn push_legacy(&mut self, event: EventId) {
        let root = self.g.root;
        let sym = Symbol::Terminal(event);
        let body = &mut self.g.rule_mut(root).body;
        if let Some(last) = body.last_mut() {
            if last.symbol == sym {
                last.count += 1;
                return;
            }
        }
        body.push(SymbolUse::new(sym, 1));
        let len = self.g.rule(root).body.len();
        if len >= 2 {
            self.push_window(root, len - 2, len - 2);
            self.drain();
        }
    }

    // ------------------------------------------------------------------
    // Loop acceleration
    // ------------------------------------------------------------------

    /// Tries to engage the loop cursor: the root must end in a rule use
    /// whose expansion starts with `event`. On success the event is
    /// appended raw and the cursor is live.
    fn try_engage(&mut self, event: EventId) -> bool {
        let root = self.g.root;
        let body = &self.g.rule(root).body;
        let Some(&last) = body.last() else {
            return false;
        };
        let Symbol::Rule(r) = last.symbol else {
            return false;
        };
        self.accel.frames.clear();
        let first_count = self.g.rule(r).body[0].count;
        self.accel.frames.push((r, 0, first_count));
        if self.accel_descend() != event {
            return false;
        }
        self.accel.raw_start = self.g.rule(root).body.len();
        self.accel.active = true;
        self.append_raw(event);
        if !self.accel_advance() {
            self.fold_cycle();
        }
        true
    }

    /// Descends from the cursor's top frame to the next terminal of the
    /// expansion and returns it. Precondition: the stack is non-empty and
    /// every frame position is in bounds.
    fn accel_descend(&mut self) -> EventId {
        loop {
            let &(r, pos, _) = self.accel.frames.last().expect("descend on empty cursor");
            match self.g.rule(r).body[pos].symbol {
                Symbol::Terminal(t) => return t,
                Symbol::Rule(rr) => {
                    let c0 = self.g.rule(rr).body[0].count;
                    self.accel.frames.push((rr, 0, c0));
                }
            }
        }
    }

    /// The next terminal the engaged expansion expects, or `None` if the
    /// cursor is exhausted.
    fn accel_next_terminal(&mut self) -> Option<EventId> {
        self.accel.frames.last()?;
        Some(self.accel_descend())
    }

    /// Consumes one occurrence of the cursor's current terminal. Returns
    /// `false` when the engaged unit's expansion is complete.
    fn accel_advance(&mut self) -> bool {
        loop {
            let Some(top) = self.accel.frames.last_mut() else {
                return false; // one full unit consumed
            };
            let (r, pos) = (top.0, top.1);
            top.2 -= 1;
            if top.2 > 0 {
                return true; // more repetitions of the current use
            }
            let body = &self.g.rule(r).body;
            if pos + 1 < body.len() {
                let count = body[pos + 1].count;
                let top = self.accel.frames.last_mut().expect("checked above");
                top.1 = pos + 1;
                top.2 = count;
                return true;
            }
            // This body is complete: that closes one repetition of the
            // parent's current (rule) use — loop to decrement it.
            self.accel.frames.pop();
            if self.accel.frames.is_empty() {
                return false;
            }
        }
    }

    /// Appends a raw (unindexed) terminal to the root tail, merging
    /// trailing runs.
    fn append_raw(&mut self, event: EventId) {
        let root = self.g.root;
        let raw_start = self.accel.raw_start;
        let sym = Symbol::Terminal(event);
        let body = &mut self.g.rule_mut(root).body;
        if body.len() > raw_start {
            if let Some(last) = body.last_mut() {
                if last.symbol == sym {
                    last.count += 1;
                    return;
                }
            }
        }
        body.push(SymbolUse::new(sym, 1));
    }

    /// The engaged expansion matched completely: drop the raw tail and
    /// bump the rule use's repetition exponent instead.
    fn fold_cycle(&mut self) {
        let root = self.g.root;
        let raw_start = self.accel.raw_start;
        let r = {
            let body = &mut self.g.rule_mut(root).body;
            debug_assert!(raw_start >= 1 && body.len() > raw_start);
            body.truncate(raw_start);
            let unit = &mut body[raw_start - 1];
            let Symbol::Rule(r) = unit.symbol else {
                unreachable!("engaged use must be a rule");
            };
            unit.count = unit
                .count
                .checked_add(1)
                .expect("repetition exponent overflow");
            r
        };
        // The bumped exponent is one more weighted reference to `r`.
        self.inc_ref(r, 1);
        self.accel.active = false;
    }

    /// Runs the deferred digram work over the raw tail, restoring every
    /// builder invariant. The tail is detached and replayed one use at a
    /// time — the exact per-event discipline of [`Self::push_legacy`] —
    /// because the index maintenance (notably `unregister`'s
    /// rule-granular matching) relies on at most one un-deduplicated
    /// digram existing at a time.
    fn deaccelerate(&mut self) {
        self.accel.active = false;
        let root = self.g.root;
        let raw_start = self.accel.raw_start;
        debug_assert!(self.g.rule(root).body.len() > raw_start);
        let mut tail = self.pooled_body();
        tail.extend(self.g.rule_mut(root).body.drain(raw_start..));
        for &u in &tail {
            let body = &mut self.g.rule_mut(root).body;
            if let Some(last) = body.last_mut() {
                if last.symbol == u.symbol {
                    // A run merge is what `push_legacy` would have done for
                    // each of the `u.count` repetitions.
                    last.count += u.count;
                    continue;
                }
            }
            body.push(u);
            let len = self.g.rule(root).body.len();
            if len >= 2 {
                self.push_window(root, len - 2, len - 2);
                self.drain();
            }
        }
        self.recycle_body(tail);
    }

    /// Settles any in-flight loop acceleration so all grammar/index
    /// invariants hold (the grammar is lossless either way — the raw tail
    /// is simply not yet folded). Called automatically by
    /// [`GrammarBuilder::into_grammar`]; compaction or validation of a
    /// *live* builder should call it first.
    pub fn flush_accel(&mut self) {
        if self.accel.active {
            self.deaccelerate();
        }
    }

    /// Whether a loop-acceleration cursor is currently in flight (digram
    /// index invariants deferred; the grammar itself is still lossless).
    pub fn accel_active(&self) -> bool {
        self.accel.active
    }

    /// Appends a whole sequence of events.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = EventId>) {
        for e in events {
            self.push(e);
        }
    }

    /// Number of events pushed so far.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Read access to the grammar under construction.
    pub fn grammar(&self) -> &Grammar {
        &self.g
    }

    /// Finishes the reduction and returns the (non-compacted) grammar.
    pub fn into_grammar(mut self) -> Grammar {
        self.flush_accel();
        debug_assert!(self.windows.is_empty() && self.utility.is_empty());
        self.g
    }

    /// Read-only digram-index lookup (no lazy revalidation); used by the
    /// invariant validator.
    pub(crate) fn digram_entry(&self, key: (Symbol, Symbol)) -> Option<Loc> {
        self.digrams.get(digram_key(key))
    }

    // ------------------------------------------------------------------
    // Work-queue driver
    // ------------------------------------------------------------------

    fn push_window(&mut self, rule: RuleId, lo: usize, hi: usize) {
        self.windows.push_back(Window { rule, lo, hi });
    }

    /// Adjusts queued windows of `rule` after positions at/after `from`
    /// shifted by `delta`.
    fn shift_windows(&mut self, rule: RuleId, from: usize, delta: isize) {
        if delta == 0 {
            return;
        }
        let apply = |v: usize| -> usize {
            if v >= from {
                (v as isize + delta).max(0) as usize
            } else {
                v
            }
        };
        for w in &mut self.windows {
            if w.rule == rule {
                w.lo = apply(w.lo);
                w.hi = apply(w.hi);
            }
        }
    }

    /// Processes queued repairs until the grammar is stable. Rule-utility
    /// fixes run first (matching the order of the paper's Fig. 3 example).
    fn drain(&mut self) {
        loop {
            if let Some(rid) = self.utility.pop() {
                self.enforce_utility(rid);
                continue;
            }
            if let Some(w) = self.windows.pop_front() {
                self.scan_window(w);
                continue;
            }
            break;
        }
    }

    /// Scans a dirty window for adjacent-equal merges, unindexed digrams,
    /// and digram collisions. Any structural mutation re-queues the
    /// remainder and returns, so mutation never happens inside an active
    /// scan position.
    fn scan_window(&mut self, w: Window) {
        if !self.g.is_live(w.rule) {
            return;
        }
        let mut pos = w.lo.saturating_sub(1);
        let mut hi = w.hi + 1;
        loop {
            let body_len = self.g.rule(w.rule).body.len();
            if body_len < 2 || pos + 1 >= body_len || pos > hi {
                return;
            }
            let (a, b) = {
                let body = &self.g.rule(w.rule).body;
                (body[pos], body[pos + 1])
            };
            if a.symbol == b.symbol {
                // Invariant 3: merge `a^n a^m` into `a^{n+m}`.
                self.merge_at(w.rule, pos);
                hi = hi.saturating_sub(1);
                pos = pos.saturating_sub(1);
                continue;
            }
            let here = Loc { rule: w.rule, pos };
            let key = (a.symbol, b.symbol);
            match self.find_digram(key) {
                None => {
                    self.digrams.insert(digram_key(key), here);
                    pos += 1;
                }
                Some(loc) if loc == here => {
                    pos += 1;
                }
                Some(other) => {
                    // Invariant 2 violated: factor the repeated digram.
                    // Requeue the remainder first; `factor` keeps queued
                    // windows aligned across its splices.
                    self.push_window(w.rule, pos, hi);
                    self.factor(other, here, key);
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Digram index
    // ------------------------------------------------------------------

    /// The digram (pair of adjacent symbols) starting at `loc`, if any.
    fn digram_at(&self, loc: Loc) -> Option<(Symbol, Symbol)> {
        let rule = self.g.try_rule(loc.rule)?;
        if loc.pos + 1 >= rule.body.len() {
            return None;
        }
        Some((rule.body[loc.pos].symbol, rule.body[loc.pos + 1].symbol))
    }

    /// Looks up a digram with lazy re-validation: positions recorded in the
    /// index may have shifted within their rule after splices; rescan the
    /// rule to fix them, and drop entries whose digram no longer exists.
    fn find_digram(&mut self, key: (Symbol, Symbol)) -> Option<Loc> {
        let packed = digram_key(key);
        let loc = self.digrams.get(packed)?;
        if self.digram_at(loc) == Some(key) {
            return Some(loc);
        }
        // Stale: rescan the recorded rule for the pair.
        if let Some(rule) = self.g.try_rule(loc.rule) {
            for pos in 0..rule.body.len().saturating_sub(1) {
                if (rule.body[pos].symbol, rule.body[pos + 1].symbol) == key {
                    let fixed = Loc {
                        rule: loc.rule,
                        pos,
                    };
                    self.digrams.insert(packed, fixed);
                    return Some(fixed);
                }
            }
        }
        self.digrams.remove(packed);
        None
    }

    /// Removes the index entry for `key` if it points into `loc.rule`
    /// (positions may be stale, so matching on the rule is the reliable
    /// part; a live occurrence elsewhere would have its own entry).
    fn unregister(&mut self, key: (Symbol, Symbol), loc: Loc) {
        let packed = digram_key(key);
        if let Some(entry) = self.digrams.get(packed) {
            if entry.rule == loc.rule {
                self.digrams.remove(packed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Structural mutations
    // ------------------------------------------------------------------

    /// Merges `body[pos]` and `body[pos+1]` (equal symbols) into one use.
    fn merge_at(&mut self, rule: RuleId, pos: usize) {
        let extra = {
            let body = &mut self.g.rule_mut(rule).body;
            debug_assert_eq!(body[pos].symbol, body[pos + 1].symbol);
            let extra = body[pos + 1].count;
            body[pos].count += extra;
            body.remove(pos + 1);
            extra
        };
        let _ = extra; // total exponent preserved: refcounts unchanged
        self.shift_windows(rule, pos + 1, -1);
    }

    fn inc_ref(&mut self, rule: RuleId, by: u32) {
        self.g.rule_mut(rule).refcount += by;
    }

    fn dec_ref(&mut self, rule: RuleId, by: u32) {
        let rc = &mut self.g.rule_mut(rule).refcount;
        *rc = rc.saturating_sub(by);
        if *rc < 2 {
            self.utility.push(rule);
        }
    }

    /// Allocates a rule slot (recycling freed ids).
    fn alloc_rule(&mut self, body: Vec<SymbolUse>) -> RuleId {
        // Creation increments the refcount of every referenced rule.
        for u in &body {
            if let Symbol::Rule(r) = u.symbol {
                self.inc_ref(r, u.count);
            }
        }
        let rule = Rule { body, refcount: 0 };
        if let Some(id) = self.free.pop() {
            self.g.rules[id.index()] = Some(rule);
            id
        } else {
            let id = RuleId(self.g.rules.len() as u32);
            self.g.rules.push(Some(rule));
            id
        }
    }

    /// Factors the digram `key` shared by sites `s1` and `s2` into a rule
    /// (created, or reused when one site is already exactly a whole rule
    /// body), rewriting the non-reused site(s).
    fn factor(&mut self, s1: Loc, s2: Loc, key: (Symbol, Symbol)) {
        debug_assert!(s1 != s2);
        debug_assert_eq!(self.digram_at(s1), Some(key));
        debug_assert_eq!(self.digram_at(s2), Some(key));
        if s1.rule == s2.rule {
            debug_assert!(s1.pos.abs_diff(s2.pos) >= 2, "digram sites overlap");
        }
        let (a, b) = key;
        let (p1, q1) = {
            let body = &self.g.rule(s1.rule).body;
            (body[s1.pos].count, body[s1.pos + 1].count)
        };
        let (p2, q2) = {
            let body = &self.g.rule(s2.rule).body;
            (body[s2.pos].count, body[s2.pos + 1].count)
        };
        let ka = p1.min(p2);
        let kb = q1.min(q2);

        let whole = |s: Loc, p: u32, q: u32| -> bool {
            s.pos == 0
                && s.rule != self.g.root
                && self.g.rule(s.rule).body.len() == 2
                && p == ka
                && q == kb
        };

        if whole(s1, p1, q1) {
            // Reuse s1's rule; only rewrite s2 (paper: "if possible, reuses
            // an existing [non-terminal]", Fig. 3e).
            let n = s1.rule;
            self.substitute(s2, ka, kb, n);
            self.digrams
                .insert(digram_key(key), Loc { rule: n, pos: 0 });
        } else if whole(s2, p2, q2) {
            let n = s2.rule;
            self.substitute(s1, ka, kb, n);
            self.digrams
                .insert(digram_key(key), Loc { rule: n, pos: 0 });
        } else {
            // Create a new rule N -> a^ka b^kb and rewrite both sites.
            let mut nbody = self.pooled_body();
            nbody.push(SymbolUse::new(a, ka));
            nbody.push(SymbolUse::new(b, kb));
            let n = self.alloc_rule(nbody);
            // Same-rule sites: rewrite the later one first so the earlier
            // site's position stays valid.
            if s1.rule == s2.rule && s2.pos > s1.pos {
                self.substitute(s2, ka, kb, n);
                self.substitute(s1, ka, kb, n);
            } else {
                self.substitute(s1, ka, kb, n);
                self.substitute(s2, ka, kb, n);
            }
            self.digrams
                .insert(digram_key(key), Loc { rule: n, pos: 0 });
        }
    }

    /// Replaces `a^ka b^kb` inside the digram at `site` by one use of rule
    /// `n`, keeping the leftover exponents around it:
    /// `… X a^p b^q Y … ⇒ … X a^{p−ka} N b^{q−kb} Y …`.
    fn substitute(&mut self, site: Loc, ka: u32, kb: u32, n: RuleId) {
        let r = site.rule;
        let pos = site.pos;
        let (a_use, b_use, body_len) = {
            let body = &self.g.rule(r).body;
            (body[pos], body[pos + 1], body.len())
        };
        debug_assert!(a_use.count >= ka && b_use.count >= kb);

        // Unregister digrams destroyed by the splice.
        self.unregister((a_use.symbol, b_use.symbol), site);
        if a_use.count == ka && pos > 0 {
            let prev = self.g.rule(r).body[pos - 1].symbol;
            self.unregister(
                (prev, a_use.symbol),
                Loc {
                    rule: r,
                    pos: pos - 1,
                },
            );
        }
        if b_use.count == kb && pos + 2 < body_len {
            let next = self.g.rule(r).body[pos + 2].symbol;
            self.unregister(
                (b_use.symbol, next),
                Loc {
                    rule: r,
                    pos: pos + 1,
                },
            );
        }

        // Reference counts: the exponents absorbed into N leave this body.
        if let Symbol::Rule(ar) = a_use.symbol {
            self.dec_ref(ar, ka);
        }
        if let Symbol::Rule(br) = b_use.symbol {
            self.dec_ref(br, kb);
        }
        self.inc_ref(n, 1);

        // Splice the replacement segment in (stack buffer: at most 3 uses,
        // no heap allocation on this path).
        let mut seg = [SymbolUse::new(Symbol::Rule(n), 1); 3];
        let mut seg_len = 0;
        if a_use.count > ka {
            seg[seg_len] = SymbolUse::new(a_use.symbol, a_use.count - ka);
            seg_len += 1;
        }
        seg[seg_len] = SymbolUse::new(Symbol::Rule(n), 1);
        seg_len += 1;
        if b_use.count > kb {
            seg[seg_len] = SymbolUse::new(b_use.symbol, b_use.count - kb);
            seg_len += 1;
        }
        {
            let body = &mut self.g.rule_mut(r).body;
            body.splice(pos..=pos + 1, seg[..seg_len].iter().copied());
        }
        self.shift_windows(r, pos + 2, seg_len as isize - 2);
        // Re-check boundaries and the spliced interior (merges with equal
        // neighbours, new digrams, possible cascaded collisions).
        self.push_window(r, pos.saturating_sub(1), pos + seg_len);

        // A non-root body reduced to a single unit use is an alias
        // (`Y -> N`): eliminate it.
        if r != self.g.root && self.g.rule(r).body.len() == 1 {
            self.eliminate_alias(r);
        }
    }

    /// Replaces every use of alias rule `y` (whose body is a single
    /// `SymbolUse`) by that use, then deletes `y`.
    fn eliminate_alias(&mut self, y: RuleId) {
        let ybody = std::mem::take(&mut self.g.rule_mut(y).body);
        debug_assert_eq!(ybody.len(), 1);
        let inner = ybody[0];
        self.recycle_body(ybody);
        // Uses of y elsewhere in the grammar.
        let mut sites = std::mem::take(&mut self.sites);
        self.g.collect_rule_uses(y, &mut sites);
        for site in sites.drain(..) {
            let use_count = {
                let body = &mut self.g.rule_mut(site.rule).body;
                let u = &mut body[site.pos];
                debug_assert_eq!(u.symbol, Symbol::Rule(y));
                let c = u.count;
                u.symbol = inner.symbol;
                u.count = c
                    .checked_mul(inner.count)
                    .expect("repetition exponent overflow");
                c
            };
            let _ = use_count;
            if let Symbol::Rule(ir) = inner.symbol {
                let new_count = self.g.rule(site.rule).body[site.pos].count;
                self.inc_ref(ir, new_count);
            }
            // Entries keyed on y at this site become garbage; lazy lookup
            // cleans them. New adjacencies need a re-check.
            self.push_window(site.rule, site.pos.saturating_sub(1), site.pos + 1);
        }
        self.sites = sites;
        // Delete y: its body held `inner.count` references to inner.
        if let Symbol::Rule(ir) = inner.symbol {
            self.dec_ref(ir, inner.count);
        }
        self.g.rules[y.index()] = None;
        self.free.push(y);
    }

    /// Rule-utility enforcement (invariant 1): a non-root rule whose
    /// weighted reference count dropped below 2 is inlined at its single use
    /// (refcount 1) or deleted (refcount 0).
    fn enforce_utility(&mut self, x: RuleId) {
        if x == self.g.root || !self.g.is_live(x) {
            return;
        }
        match self.g.rule(x).refcount {
            0 => self.delete_rule(x),
            1 => {
                let mut sites = std::mem::take(&mut self.sites);
                self.g.collect_rule_uses(x, &mut sites);
                debug_assert_eq!(sites.len(), 1, "refcount 1 rule with != 1 site");
                let site = sites.first().copied();
                self.sites = sites;
                if let Some(site) = site {
                    self.inline_at(x, site);
                }
            }
            _ => {}
        }
    }

    /// Deletes a rule with no remaining uses, releasing its references.
    fn delete_rule(&mut self, x: RuleId) {
        let body = std::mem::take(&mut self.g.rule_mut(x).body);
        for (i, u) in body.iter().enumerate() {
            if i + 1 < body.len() {
                self.unregister((u.symbol, body[i + 1].symbol), Loc { rule: x, pos: i });
            }
            if let Symbol::Rule(r) = u.symbol {
                self.dec_ref(r, u.count);
            }
        }
        self.recycle_body(body);
        self.g.rules[x.index()] = None;
        self.free.push(x);
    }

    /// Inlines rule `x` (single use, count 1) into its use site.
    fn inline_at(&mut self, x: RuleId, site: Loc) {
        let mut xbody = std::mem::take(&mut self.g.rule_mut(x).body);
        debug_assert!(!xbody.is_empty());
        let r = site.rule;
        let pos = site.pos;
        debug_assert_eq!(self.g.rule(r).body[pos], SymbolUse::new(Symbol::Rule(x), 1));

        // Boundary digrams involving X disappear.
        if pos > 0 {
            let prev = self.g.rule(r).body[pos - 1].symbol;
            self.unregister(
                (prev, Symbol::Rule(x)),
                Loc {
                    rule: r,
                    pos: pos - 1,
                },
            );
        }
        if pos + 1 < self.g.rule(r).body.len() {
            let next = self.g.rule(r).body[pos + 1].symbol;
            self.unregister((Symbol::Rule(x), next), Loc { rule: r, pos });
        }

        let xlen = xbody.len();
        // Interior digrams of X move with the body: re-point their entries.
        for i in 0..xlen.saturating_sub(1) {
            let key = (xbody[i].symbol, xbody[i + 1].symbol);
            self.digrams.insert(
                digram_key(key),
                Loc {
                    rule: r,
                    pos: pos + i,
                },
            );
        }
        {
            let body = &mut self.g.rule_mut(r).body;
            body.splice(pos..=pos, xbody.drain(..));
        }
        self.recycle_body(xbody);
        self.shift_windows(r, pos + 1, xlen as isize - 1);
        // Boundary pairs are new; the scan also performs boundary merges.
        self.push_window(r, pos.saturating_sub(1), pos + xlen);

        // X's references moved (not released): delete without dec_ref.
        self.g.rules[x.index()] = None;
        self.free.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    fn build(seq: &[u32]) -> GrammarBuilder {
        let mut b = GrammarBuilder::new();
        for &s in seq {
            b.push(e(s));
            b.flush_accel();
            b.check_invariants().unwrap();
        }
        b
    }

    fn unfolded(b: &GrammarBuilder) -> Vec<u32> {
        b.grammar().unfold().into_iter().map(|x| x.0).collect()
    }

    #[test]
    fn empty_builder() {
        let b = GrammarBuilder::new();
        assert_eq!(b.event_count(), 0);
        assert_eq!(unfolded(&b), Vec::<u32>::new());
    }

    #[test]
    fn single_event() {
        let b = build(&[7]);
        assert_eq!(unfolded(&b), vec![7]);
        assert_eq!(b.grammar().rule_count(), 1);
    }

    #[test]
    fn pure_repetition_collapses_to_one_use() {
        let b = build(&[4; 1000]);
        assert_eq!(b.grammar().rule(b.grammar().root()).body.len(), 1);
        assert_eq!(b.grammar().rule(b.grammar().root()).body[0].count, 1000);
        assert_eq!(unfolded(&b), vec![4; 1000]);
    }

    #[test]
    fn paper_fig1_trace() {
        // "abbcbcab" (paper Fig. 1)
        let b = build(&[0, 1, 1, 2, 1, 2, 0, 1]);
        assert_eq!(unfolded(&b), vec![0, 1, 1, 2, 1, 2, 0, 1]);
    }

    #[test]
    fn simple_loop_creates_rule_with_exponent() {
        // (a b)^50, paper Fig. 2: grammar should be a loop of 50 reps of a
        // rule A -> a b.
        let mut seq = Vec::new();
        for _ in 0..50 {
            seq.push(0);
            seq.push(1);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        let g = b.grammar();
        // Root should be a single use with exponent 50 of a rule "ab".
        let root = g.rule(g.root());
        assert_eq!(root.body.len(), 1, "{}", g.render(&|x| x.to_string()));
        assert_eq!(root.body[0].count, 50);
        let a = root.body[0].symbol.rule().unwrap();
        assert_eq!(g.rule(a).body.len(), 2);
    }

    #[test]
    fn paper_fig3_cascade() {
        // Reconstructs the Fig. 3 scenario: trace so far unfolds with a
        // grammar containing A -> b^3 c^2, B -> b^2 A, root ending "B b^5",
        // then two more `c`s arrive. We don't force the exact same rule ids,
        // but the final state must contain B -> b^2 A, A -> b^3 c^2 and a
        // root ending with B^2, with no C rule left.
        //
        // Build the prefix: x (b^2 b^3 c^2) (b^2 b^3 c^2) b^5  => that is
        // x A' A' b^5 with A' = b^5 c^2... To get the paper's exact shapes we
        // drive the sequence that produces them:
        //   x b b (b b b c c) ... simpler: verify algebraically through
        // unfold-equality and invariants instead of exact shapes, then check
        // the c^2 suffix folds into a repeated non-terminal.
        let mut seq: Vec<u32> = vec![9];
        let block: Vec<u32> = vec![1, 1, 1, 1, 1, 2, 2]; // b^2 (b^3 c^2)
        seq.extend(&block);
        seq.extend(&block);
        // tail: b^5 then c, c  -> completes a third block
        seq.extend([1, 1, 1, 1, 1]);
        seq.push(2);
        let b1 = build(&seq);
        assert_eq!(unfolded(&b1), seq);
        let mut b2 = b1;
        b2.push(e(2));
        b2.check_invariants().unwrap();
        let mut want = seq.clone();
        want.push(2);
        assert_eq!(unfolded(&b2), want);
        // Three identical blocks must now be folded: the root should be
        // short (x + B-ish structure), and some use must carry exponent >= 2.
        let g = b2.grammar();
        let root = g.rule(g.root());
        assert!(
            root.body.len() <= 3,
            "root not folded: {}",
            g.render(&|x| x.to_string())
        );
        let has_rep = root.body.iter().any(|u| u.count >= 2);
        assert!(has_rep, "{}", g.render(&|x| x.to_string()));
    }

    #[test]
    fn nested_repetition() {
        // ((a b)^3 c)^4
        let mut seq = Vec::new();
        for _ in 0..4 {
            for _ in 0..3 {
                seq.push(0);
                seq.push(1);
            }
            seq.push(2);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        // Expect a deeply folded grammar: few rules, root of 1 use.
        let g = b.grammar();
        assert!(g.rule_count() <= 4, "{}", g.render(&|x| x.to_string()));
    }

    #[test]
    fn alternating_long() {
        let mut seq = Vec::new();
        for i in 0..500 {
            seq.push(i % 2);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        assert!(b.grammar().rule_count() <= 6);
    }

    #[test]
    fn all_distinct_events() {
        let seq: Vec<u32> = (0..100).collect();
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        // No repetition: everything stays in the root.
        assert_eq!(b.grammar().rule_count(), 1);
        assert_eq!(b.grammar().rule(b.grammar().root()).body.len(), 100);
    }

    #[test]
    fn runs_with_varying_lengths() {
        // a^3 b a^5 b a^3 b — runs of a with different exponents around a
        // repeated digram.
        let mut seq = Vec::new();
        for run in [3usize, 5, 3] {
            seq.extend(std::iter::repeat_n(0u32, run));
            seq.push(1);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
    }

    #[test]
    fn interleaved_phases() {
        // Mimics an app with a setup phase, a compute loop, and a teardown.
        let mut seq: Vec<u32> = vec![10, 11, 12];
        for _ in 0..30 {
            seq.extend([0, 1, 2, 2, 3]);
        }
        seq.extend([13, 14]);
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        assert!(
            b.grammar().rule_count() <= 6,
            "{}",
            b.grammar().render(&|x| x.to_string())
        );
    }

    #[test]
    fn fuzz_small_alphabet() {
        // Deterministic pseudo-random stress with alphabet 3; invariants
        // are checked after every push inside `build`.
        let mut state = 0x12345678u64;
        let mut seq = Vec::new();
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(((state >> 33) % 3) as u32);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
    }

    #[test]
    fn fuzz_medium_alphabet() {
        let mut state = 0xdeadbeefu64;
        let mut seq = Vec::new();
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(((state >> 33) % 12) as u32);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
    }

    #[test]
    fn event_count_tracked() {
        let b = build(&[0, 1, 0, 1, 0, 1]);
        assert_eq!(b.event_count(), 6);
        assert_eq!(b.grammar().trace_len(), 6);
    }

    #[test]
    fn digram_table_matches_hashmap_model() {
        // Random insert/overwrite/remove/get churn checked against a
        // HashMap model — exercises growth and back-shift deletion runs.
        use crate::util::FxHashMap;
        let mut table = DigramTable::new();
        let mut model: FxHashMap<u128, Loc> = FxHashMap::default();
        let mut state = 0xfeed_f00du64;
        let mut keys: Vec<u128> = Vec::new();
        for step in 0..20_000u64 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let r = (state >> 33) as u32;
            // Small id space forces overwrites; clustered ids force probe
            // collisions after the multiplicative mix.
            let key = digram_key((
                Symbol::Terminal(EventId(r % 97)),
                Symbol::Rule(RuleId((r / 97) % 53)),
            ));
            let val = Loc {
                rule: RuleId(r % 7),
                pos: step as usize,
            };
            match r % 4 {
                0 | 1 => {
                    table.insert(key, val);
                    model.insert(key, val);
                    keys.push(key);
                }
                2 => {
                    table.remove(key);
                    model.remove(&key);
                }
                _ => {
                    assert_eq!(table.get(key), model.get(&key).copied(), "step {step}");
                }
            }
        }
        for key in keys {
            assert_eq!(table.get(key), model.get(&key).copied());
        }
        assert_eq!(table.len, model.len());
    }

    #[test]
    fn digram_keys_are_injective() {
        // Terminal n vs rule n must produce distinct codes, and order
        // matters.
        let t = Symbol::Terminal(EventId(5));
        let r = Symbol::Rule(RuleId(5));
        assert_ne!(sym_code(t), sym_code(r));
        assert_ne!(digram_key((t, r)), digram_key((r, t)));
        assert_ne!(digram_key((t, t)), EMPTY);
    }

    // ------------------------------------------------------------------
    // Loop acceleration
    // ------------------------------------------------------------------

    /// Streams `seq` through an accelerating builder and asserts the
    /// settled result is lossless and invariant-clean.
    fn accel_run(seq: &[u32]) -> GrammarBuilder {
        let mut b = GrammarBuilder::new();
        for &s in seq {
            b.push(e(s));
        }
        b.flush_accel();
        b.check_invariants().unwrap();
        assert_eq!(unfolded(&b), seq, "acceleration broke losslessness");
        b
    }

    #[test]
    fn accel_steady_loop_bumps_exponent_without_rule_growth() {
        // (a b c d)^500: after the motif is factored once, every further
        // iteration must ride the cursor — constant rule count, and the
        // repetition must live in an exponent, not a long root.
        let mut seq = Vec::new();
        for _ in 0..500 {
            seq.extend([0u32, 1, 2, 3]);
        }
        let b = accel_run(&seq);
        assert!(
            b.grammar().rule_count() <= 4,
            "steady loop grew {} rules",
            b.grammar().rule_count()
        );
        let root = b.grammar().root;
        assert!(
            b.grammar().rule(root).body.len() <= 4,
            "steady loop left a long root"
        );
        let max_exp = b
            .grammar()
            .iter_rules()
            .flat_map(|(_, r)| r.body.iter())
            .map(|u| u.count)
            .max()
            .unwrap();
        assert!(max_exp >= 400, "exponent {max_exp} — cursor never folded");
    }

    #[test]
    fn accel_engages_on_steady_loops() {
        // White-box: after a few repetitions of a motif the cursor must be
        // the thing carrying the stream (mid-motif the builder reports an
        // in-flight acceleration).
        let mut b = GrammarBuilder::new();
        for _ in 0..8 {
            for s in [0u32, 1, 2, 3] {
                b.push(e(s));
            }
        }
        let mut engaged = false;
        for s in [0u32, 1, 2] {
            b.push(e(s));
            engaged |= b.accel_active();
        }
        assert!(engaged, "cursor never engaged on a steady loop");
    }

    #[test]
    fn accel_mid_cycle_mismatch_stays_lossless() {
        // Break a steady loop mid-motif: the cursor must deaccelerate and
        // hand the partial cycle to the legacy machinery.
        let mut seq = Vec::new();
        for _ in 0..50 {
            seq.extend([0u32, 1, 2, 3]);
        }
        seq.extend([0u32, 1, 9]); // partial cycle, then a surprise
        for _ in 0..30 {
            seq.extend([4u32, 5]);
        }
        accel_run(&seq);
    }

    #[test]
    fn accel_grammar_is_lossless_at_every_event() {
        // The raw tail is part of the root: unfold and trace_len must be
        // exact at *every* instant, cursor in flight or not.
        let mut seq = Vec::new();
        for i in 0..40u32 {
            seq.extend([0u32, 1, 2, 3]);
            if i % 7 == 0 {
                seq.push(10 + (i % 3));
            }
        }
        let mut b = GrammarBuilder::new();
        for (i, &s) in seq.iter().enumerate() {
            b.push(e(s));
            assert_eq!(
                b.grammar().trace_len(),
                (i + 1) as u64,
                "trace_len drifted at event {i}"
            );
            assert_eq!(
                unfolded(&b),
                &seq[..=i],
                "unfold drifted at event {i} (accel={})",
                b.accel_active()
            );
        }
    }

    #[test]
    fn accel_noise_matches_reference_compression() {
        // On noise, both the accelerating build and a flush-per-event
        // reference build must be lossless, invariant-clean, and compress
        // comparably. (Bit identity is not promised: a completed cycle
        // folds into an exponent bump where the reference re-factors the
        // motif — different but equally valid grammars.)
        let mut seq = Vec::new();
        let mut x = 7u64;
        for _ in 0..600 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(((x >> 33) % 5) as u32);
        }
        let accel = accel_run(&seq);
        let mut reference = GrammarBuilder::new();
        for &s in &seq {
            reference.push(e(s));
            reference.flush_accel();
        }
        reference.check_invariants().unwrap();
        assert_eq!(unfolded(&reference), seq);
        let (a, r) = (
            accel.grammar().rule_count(),
            reference.grammar().rule_count(),
        );
        assert!(
            a <= r * 2 && r <= a * 2,
            "compression diverged: accel {a} rules vs reference {r}"
        );
    }
}
