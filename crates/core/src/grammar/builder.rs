//! On-the-fly reduction of an event stream into the trace grammar
//! (PYTHIA-RECORD's core algorithm, paper §II-A and Fig. 3).
//!
//! The algorithm is derived from Sequitur (Nevill-Manning & Witten) extended
//! with consecutive-repetition exponents (as in Cyclitur): every use of a
//! symbol carries a repetition count, and *digrams* — ordered pairs of
//! distinct adjacent symbols — must be unique across the grammar. When a
//! digram appears twice, the shared part `a^k b^m` (with `k`/`m` the minimum
//! exponents of the two occurrences) is factored into a rule, reusing an
//! existing rule whose body is exactly that digram when possible. Rules
//! whose weighted use count drops below two are inlined back (rule utility).
//!
//! ### Implementation notes
//!
//! Rule bodies are flat `Vec<SymbolUse>`s rather than the linked lists of
//! classic Sequitur; bodies stay short once the trace compresses, and the
//! root is only mutated near its tail in the common case. The digram index
//! maps a symbol pair to one location and is repaired lazily: positions may
//! go stale after a splice, so lookups re-validate and rescan the recorded
//! rule when needed. Structural repairs (digram collisions → factoring,
//! boundary merges, rule-utility inlining) are driven by a work queue of
//! *dirty windows* so that no recursive mutation happens while a rule body
//! is being scanned.

use std::collections::VecDeque;

use crate::event::EventId;
use crate::grammar::{Grammar, Loc, Rule, RuleId, Symbol, SymbolUse};
use crate::util::FxHashMap;

/// Range of pair-start indices (inclusive) of a rule body that must be
/// re-checked for merges / unregistered digrams / digram collisions.
#[derive(Debug, Clone, Copy)]
struct Window {
    rule: RuleId,
    lo: usize,
    hi: usize,
}

/// Incrementally reduces a terminal sequence into a [`Grammar`].
///
/// ```
/// use pythia_core::event::EventId;
/// use pythia_core::grammar::builder::GrammarBuilder;
///
/// let mut b = GrammarBuilder::new();
/// for ev in [0u32, 1, 1, 2, 1, 2, 0, 1] {
///     b.push(EventId(ev));
/// }
/// let g = b.into_grammar();
/// let unfolded: Vec<u32> = g.unfold().into_iter().map(|e| e.0).collect();
/// assert_eq!(unfolded, vec![0, 1, 1, 2, 1, 2, 0, 1]);
/// ```
#[derive(Debug)]
pub struct GrammarBuilder {
    g: Grammar,
    digrams: FxHashMap<(Symbol, Symbol), Loc>,
    free: Vec<RuleId>,
    windows: VecDeque<Window>,
    utility: Vec<RuleId>,
    event_count: u64,
}

impl Default for GrammarBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GrammarBuilder {
    /// Creates a builder with an empty grammar.
    pub fn new() -> Self {
        GrammarBuilder {
            g: Grammar::new(),
            digrams: FxHashMap::default(),
            free: Vec::new(),
            windows: VecDeque::new(),
            utility: Vec::new(),
            event_count: 0,
        }
    }

    /// Appends one terminal event to the trace, updating the grammar so all
    /// invariants hold when this returns.
    pub fn push(&mut self, event: EventId) {
        self.event_count += 1;
        let root = self.g.root;
        let sym = Symbol::Terminal(event);
        let body = &mut self.g.rule_mut(root).body;
        if let Some(last) = body.last_mut() {
            if last.symbol == sym {
                last.count += 1;
                return;
            }
        }
        body.push(SymbolUse::new(sym, 1));
        let len = self.g.rule(root).body.len();
        if len >= 2 {
            self.push_window(root, len - 2, len - 2);
            self.drain();
        }
    }

    /// Appends a whole sequence of events.
    pub fn push_all(&mut self, events: impl IntoIterator<Item = EventId>) {
        for e in events {
            self.push(e);
        }
    }

    /// Number of events pushed so far.
    pub fn event_count(&self) -> u64 {
        self.event_count
    }

    /// Read access to the grammar under construction.
    pub fn grammar(&self) -> &Grammar {
        &self.g
    }

    /// Finishes the reduction and returns the (non-compacted) grammar.
    pub fn into_grammar(self) -> Grammar {
        debug_assert!(self.windows.is_empty() && self.utility.is_empty());
        self.g
    }

    /// Read-only digram-index lookup (no lazy revalidation); used by the
    /// invariant validator.
    pub(crate) fn digram_entry(&self, key: (Symbol, Symbol)) -> Option<Loc> {
        self.digrams.get(&key).copied()
    }

    // ------------------------------------------------------------------
    // Work-queue driver
    // ------------------------------------------------------------------

    fn push_window(&mut self, rule: RuleId, lo: usize, hi: usize) {
        self.windows.push_back(Window { rule, lo, hi });
    }

    /// Adjusts queued windows of `rule` after positions at/after `from`
    /// shifted by `delta`.
    fn shift_windows(&mut self, rule: RuleId, from: usize, delta: isize) {
        if delta == 0 {
            return;
        }
        let apply = |v: usize| -> usize {
            if v >= from {
                (v as isize + delta).max(0) as usize
            } else {
                v
            }
        };
        for w in &mut self.windows {
            if w.rule == rule {
                w.lo = apply(w.lo);
                w.hi = apply(w.hi);
            }
        }
    }

    /// Processes queued repairs until the grammar is stable. Rule-utility
    /// fixes run first (matching the order of the paper's Fig. 3 example).
    fn drain(&mut self) {
        loop {
            if let Some(rid) = self.utility.pop() {
                self.enforce_utility(rid);
                continue;
            }
            if let Some(w) = self.windows.pop_front() {
                self.scan_window(w);
                continue;
            }
            break;
        }
    }

    /// Scans a dirty window for adjacent-equal merges, unindexed digrams,
    /// and digram collisions. Any structural mutation re-queues the
    /// remainder and returns, so mutation never happens inside an active
    /// scan position.
    fn scan_window(&mut self, w: Window) {
        if !self.g.is_live(w.rule) {
            return;
        }
        let mut pos = w.lo.saturating_sub(1);
        let mut hi = w.hi + 1;
        loop {
            let body_len = self.g.rule(w.rule).body.len();
            if body_len < 2 || pos + 1 >= body_len || pos > hi {
                return;
            }
            let (a, b) = {
                let body = &self.g.rule(w.rule).body;
                (body[pos], body[pos + 1])
            };
            if a.symbol == b.symbol {
                // Invariant 3: merge `a^n a^m` into `a^{n+m}`.
                self.merge_at(w.rule, pos);
                hi = hi.saturating_sub(1);
                pos = pos.saturating_sub(1);
                continue;
            }
            let here = Loc { rule: w.rule, pos };
            let key = (a.symbol, b.symbol);
            match self.find_digram(key) {
                None => {
                    self.digrams.insert(key, here);
                    pos += 1;
                }
                Some(loc) if loc == here => {
                    pos += 1;
                }
                Some(other) => {
                    // Invariant 2 violated: factor the repeated digram.
                    // Requeue the remainder first; `factor` keeps queued
                    // windows aligned across its splices.
                    self.push_window(w.rule, pos, hi);
                    self.factor(other, here, key);
                    return;
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Digram index
    // ------------------------------------------------------------------

    /// The digram (pair of adjacent symbols) starting at `loc`, if any.
    fn digram_at(&self, loc: Loc) -> Option<(Symbol, Symbol)> {
        let rule = self.g.try_rule(loc.rule)?;
        if loc.pos + 1 >= rule.body.len() {
            return None;
        }
        Some((rule.body[loc.pos].symbol, rule.body[loc.pos + 1].symbol))
    }

    /// Looks up a digram with lazy re-validation: positions recorded in the
    /// index may have shifted within their rule after splices; rescan the
    /// rule to fix them, and drop entries whose digram no longer exists.
    fn find_digram(&mut self, key: (Symbol, Symbol)) -> Option<Loc> {
        let loc = *self.digrams.get(&key)?;
        if self.digram_at(loc) == Some(key) {
            return Some(loc);
        }
        // Stale: rescan the recorded rule for the pair.
        if let Some(rule) = self.g.try_rule(loc.rule) {
            for pos in 0..rule.body.len().saturating_sub(1) {
                if (rule.body[pos].symbol, rule.body[pos + 1].symbol) == key {
                    let fixed = Loc {
                        rule: loc.rule,
                        pos,
                    };
                    self.digrams.insert(key, fixed);
                    return Some(fixed);
                }
            }
        }
        self.digrams.remove(&key);
        None
    }

    /// Removes the index entry for `key` if it points into `loc.rule`
    /// (positions may be stale, so matching on the rule is the reliable
    /// part; a live occurrence elsewhere would have its own entry).
    fn unregister(&mut self, key: (Symbol, Symbol), loc: Loc) {
        if let Some(entry) = self.digrams.get(&key) {
            if entry.rule == loc.rule {
                self.digrams.remove(&key);
            }
        }
    }

    // ------------------------------------------------------------------
    // Structural mutations
    // ------------------------------------------------------------------

    /// Merges `body[pos]` and `body[pos+1]` (equal symbols) into one use.
    fn merge_at(&mut self, rule: RuleId, pos: usize) {
        let extra = {
            let body = &mut self.g.rule_mut(rule).body;
            debug_assert_eq!(body[pos].symbol, body[pos + 1].symbol);
            let extra = body[pos + 1].count;
            body[pos].count += extra;
            body.remove(pos + 1);
            extra
        };
        let _ = extra; // total exponent preserved: refcounts unchanged
        self.shift_windows(rule, pos + 1, -1);
    }

    fn inc_ref(&mut self, rule: RuleId, by: u32) {
        self.g.rule_mut(rule).refcount += by;
    }

    fn dec_ref(&mut self, rule: RuleId, by: u32) {
        let rc = &mut self.g.rule_mut(rule).refcount;
        *rc = rc.saturating_sub(by);
        if *rc < 2 {
            self.utility.push(rule);
        }
    }

    /// Allocates a rule slot (recycling freed ids).
    fn alloc_rule(&mut self, body: Vec<SymbolUse>) -> RuleId {
        // Creation increments the refcount of every referenced rule.
        for u in &body {
            if let Symbol::Rule(r) = u.symbol {
                self.inc_ref(r, u.count);
            }
        }
        let rule = Rule { body, refcount: 0 };
        if let Some(id) = self.free.pop() {
            self.g.rules[id.index()] = Some(rule);
            id
        } else {
            let id = RuleId(self.g.rules.len() as u32);
            self.g.rules.push(Some(rule));
            id
        }
    }

    /// Factors the digram `key` shared by sites `s1` and `s2` into a rule
    /// (created, or reused when one site is already exactly a whole rule
    /// body), rewriting the non-reused site(s).
    fn factor(&mut self, s1: Loc, s2: Loc, key: (Symbol, Symbol)) {
        debug_assert!(s1 != s2);
        debug_assert_eq!(self.digram_at(s1), Some(key));
        debug_assert_eq!(self.digram_at(s2), Some(key));
        if s1.rule == s2.rule {
            debug_assert!(s1.pos.abs_diff(s2.pos) >= 2, "digram sites overlap");
        }
        let (a, b) = key;
        let (p1, q1) = {
            let body = &self.g.rule(s1.rule).body;
            (body[s1.pos].count, body[s1.pos + 1].count)
        };
        let (p2, q2) = {
            let body = &self.g.rule(s2.rule).body;
            (body[s2.pos].count, body[s2.pos + 1].count)
        };
        let ka = p1.min(p2);
        let kb = q1.min(q2);

        let whole = |s: Loc, p: u32, q: u32| -> bool {
            s.pos == 0
                && s.rule != self.g.root
                && self.g.rule(s.rule).body.len() == 2
                && p == ka
                && q == kb
        };

        if whole(s1, p1, q1) {
            // Reuse s1's rule; only rewrite s2 (paper: "if possible, reuses
            // an existing [non-terminal]", Fig. 3e).
            let n = s1.rule;
            self.substitute(s2, ka, kb, n);
            self.digrams.insert(key, Loc { rule: n, pos: 0 });
        } else if whole(s2, p2, q2) {
            let n = s2.rule;
            self.substitute(s1, ka, kb, n);
            self.digrams.insert(key, Loc { rule: n, pos: 0 });
        } else {
            // Create a new rule N -> a^ka b^kb and rewrite both sites.
            let n = self.alloc_rule(vec![SymbolUse::new(a, ka), SymbolUse::new(b, kb)]);
            // Same-rule sites: rewrite the later one first so the earlier
            // site's position stays valid.
            if s1.rule == s2.rule && s2.pos > s1.pos {
                self.substitute(s2, ka, kb, n);
                self.substitute(s1, ka, kb, n);
            } else {
                self.substitute(s1, ka, kb, n);
                self.substitute(s2, ka, kb, n);
            }
            self.digrams.insert(key, Loc { rule: n, pos: 0 });
        }
    }

    /// Replaces `a^ka b^kb` inside the digram at `site` by one use of rule
    /// `n`, keeping the leftover exponents around it:
    /// `… X a^p b^q Y … ⇒ … X a^{p−ka} N b^{q−kb} Y …`.
    fn substitute(&mut self, site: Loc, ka: u32, kb: u32, n: RuleId) {
        let r = site.rule;
        let pos = site.pos;
        let (a_use, b_use, body_len) = {
            let body = &self.g.rule(r).body;
            (body[pos], body[pos + 1], body.len())
        };
        debug_assert!(a_use.count >= ka && b_use.count >= kb);

        // Unregister digrams destroyed by the splice.
        self.unregister((a_use.symbol, b_use.symbol), site);
        if a_use.count == ka && pos > 0 {
            let prev = self.g.rule(r).body[pos - 1].symbol;
            self.unregister(
                (prev, a_use.symbol),
                Loc {
                    rule: r,
                    pos: pos - 1,
                },
            );
        }
        if b_use.count == kb && pos + 2 < body_len {
            let next = self.g.rule(r).body[pos + 2].symbol;
            self.unregister(
                (b_use.symbol, next),
                Loc {
                    rule: r,
                    pos: pos + 1,
                },
            );
        }

        // Reference counts: the exponents absorbed into N leave this body.
        if let Symbol::Rule(ar) = a_use.symbol {
            self.dec_ref(ar, ka);
        }
        if let Symbol::Rule(br) = b_use.symbol {
            self.dec_ref(br, kb);
        }
        self.inc_ref(n, 1);

        // Splice the replacement segment in.
        let mut seg: Vec<SymbolUse> = Vec::with_capacity(3);
        if a_use.count > ka {
            seg.push(SymbolUse::new(a_use.symbol, a_use.count - ka));
        }
        seg.push(SymbolUse::new(Symbol::Rule(n), 1));
        if b_use.count > kb {
            seg.push(SymbolUse::new(b_use.symbol, b_use.count - kb));
        }
        let seg_len = seg.len();
        {
            let body = &mut self.g.rule_mut(r).body;
            body.splice(pos..=pos + 1, seg);
        }
        self.shift_windows(r, pos + 2, seg_len as isize - 2);
        // Re-check boundaries and the spliced interior (merges with equal
        // neighbours, new digrams, possible cascaded collisions).
        self.push_window(r, pos.saturating_sub(1), pos + seg_len);

        // A non-root body reduced to a single unit use is an alias
        // (`Y -> N`): eliminate it.
        if r != self.g.root && self.g.rule(r).body.len() == 1 {
            self.eliminate_alias(r);
        }
    }

    /// Replaces every use of alias rule `y` (whose body is a single
    /// `SymbolUse`) by that use, then deletes `y`.
    fn eliminate_alias(&mut self, y: RuleId) {
        let inner = {
            let body = &self.g.rule(y).body;
            debug_assert_eq!(body.len(), 1);
            body[0]
        };
        // Uses of y elsewhere in the grammar.
        let sites = self.g.rule_uses(y);
        for site in sites {
            let use_count = {
                let body = &mut self.g.rule_mut(site.rule).body;
                let u = &mut body[site.pos];
                debug_assert_eq!(u.symbol, Symbol::Rule(y));
                let c = u.count;
                u.symbol = inner.symbol;
                u.count = c
                    .checked_mul(inner.count)
                    .expect("repetition exponent overflow");
                c
            };
            let _ = use_count;
            if let Symbol::Rule(ir) = inner.symbol {
                let new_count = self.g.rule(site.rule).body[site.pos].count;
                self.inc_ref(ir, new_count);
            }
            // Entries keyed on y at this site become garbage; lazy lookup
            // cleans them. New adjacencies need a re-check.
            self.push_window(site.rule, site.pos.saturating_sub(1), site.pos + 1);
        }
        // Delete y: its body held `inner.count` references to inner.
        if let Symbol::Rule(ir) = inner.symbol {
            self.dec_ref(ir, inner.count);
        }
        self.g.rules[y.index()] = None;
        self.free.push(y);
    }

    /// Rule-utility enforcement (invariant 1): a non-root rule whose
    /// weighted reference count dropped below 2 is inlined at its single use
    /// (refcount 1) or deleted (refcount 0).
    fn enforce_utility(&mut self, x: RuleId) {
        if x == self.g.root || !self.g.is_live(x) {
            return;
        }
        match self.g.rule(x).refcount {
            0 => self.delete_rule(x),
            1 => {
                let sites = self.g.rule_uses(x);
                debug_assert_eq!(sites.len(), 1, "refcount 1 rule with != 1 site");
                if let Some(&site) = sites.first() {
                    self.inline_at(x, site);
                }
            }
            _ => {}
        }
    }

    /// Deletes a rule with no remaining uses, releasing its references.
    fn delete_rule(&mut self, x: RuleId) {
        let body = std::mem::take(&mut self.g.rule_mut(x).body);
        for (i, u) in body.iter().enumerate() {
            if i + 1 < body.len() {
                self.unregister((u.symbol, body[i + 1].symbol), Loc { rule: x, pos: i });
            }
            if let Symbol::Rule(r) = u.symbol {
                self.dec_ref(r, u.count);
            }
        }
        self.g.rules[x.index()] = None;
        self.free.push(x);
    }

    /// Inlines rule `x` (single use, count 1) into its use site.
    fn inline_at(&mut self, x: RuleId, site: Loc) {
        let xbody = std::mem::take(&mut self.g.rule_mut(x).body);
        debug_assert!(!xbody.is_empty());
        let r = site.rule;
        let pos = site.pos;
        debug_assert_eq!(self.g.rule(r).body[pos], SymbolUse::new(Symbol::Rule(x), 1));

        // Boundary digrams involving X disappear.
        if pos > 0 {
            let prev = self.g.rule(r).body[pos - 1].symbol;
            self.unregister(
                (prev, Symbol::Rule(x)),
                Loc {
                    rule: r,
                    pos: pos - 1,
                },
            );
        }
        if pos + 1 < self.g.rule(r).body.len() {
            let next = self.g.rule(r).body[pos + 1].symbol;
            self.unregister((Symbol::Rule(x), next), Loc { rule: r, pos });
        }

        let xlen = xbody.len();
        // Interior digrams of X move with the body: re-point their entries.
        for i in 0..xlen.saturating_sub(1) {
            let key = (xbody[i].symbol, xbody[i + 1].symbol);
            self.digrams.insert(
                key,
                Loc {
                    rule: r,
                    pos: pos + i,
                },
            );
        }
        {
            let body = &mut self.g.rule_mut(r).body;
            body.splice(pos..=pos, xbody);
        }
        self.shift_windows(r, pos + 1, xlen as isize - 1);
        // Boundary pairs are new; the scan also performs boundary merges.
        self.push_window(r, pos.saturating_sub(1), pos + xlen);

        // X's references moved (not released): delete without dec_ref.
        self.g.rules[x.index()] = None;
        self.free.push(x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn e(n: u32) -> EventId {
        EventId(n)
    }

    fn build(seq: &[u32]) -> GrammarBuilder {
        let mut b = GrammarBuilder::new();
        for &s in seq {
            b.push(e(s));
            b.check_invariants().unwrap();
        }
        b
    }

    fn unfolded(b: &GrammarBuilder) -> Vec<u32> {
        b.grammar().unfold().into_iter().map(|x| x.0).collect()
    }

    #[test]
    fn empty_builder() {
        let b = GrammarBuilder::new();
        assert_eq!(b.event_count(), 0);
        assert_eq!(unfolded(&b), Vec::<u32>::new());
    }

    #[test]
    fn single_event() {
        let b = build(&[7]);
        assert_eq!(unfolded(&b), vec![7]);
        assert_eq!(b.grammar().rule_count(), 1);
    }

    #[test]
    fn pure_repetition_collapses_to_one_use() {
        let b = build(&[4; 1000]);
        assert_eq!(b.grammar().rule(b.grammar().root()).body.len(), 1);
        assert_eq!(b.grammar().rule(b.grammar().root()).body[0].count, 1000);
        assert_eq!(unfolded(&b), vec![4; 1000]);
    }

    #[test]
    fn paper_fig1_trace() {
        // "abbcbcab" (paper Fig. 1)
        let b = build(&[0, 1, 1, 2, 1, 2, 0, 1]);
        assert_eq!(unfolded(&b), vec![0, 1, 1, 2, 1, 2, 0, 1]);
    }

    #[test]
    fn simple_loop_creates_rule_with_exponent() {
        // (a b)^50, paper Fig. 2: grammar should be a loop of 50 reps of a
        // rule A -> a b.
        let mut seq = Vec::new();
        for _ in 0..50 {
            seq.push(0);
            seq.push(1);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        let g = b.grammar();
        // Root should be a single use with exponent 50 of a rule "ab".
        let root = g.rule(g.root());
        assert_eq!(root.body.len(), 1, "{}", g.render(&|x| x.to_string()));
        assert_eq!(root.body[0].count, 50);
        let a = root.body[0].symbol.rule().unwrap();
        assert_eq!(g.rule(a).body.len(), 2);
    }

    #[test]
    fn paper_fig3_cascade() {
        // Reconstructs the Fig. 3 scenario: trace so far unfolds with a
        // grammar containing A -> b^3 c^2, B -> b^2 A, root ending "B b^5",
        // then two more `c`s arrive. We don't force the exact same rule ids,
        // but the final state must contain B -> b^2 A, A -> b^3 c^2 and a
        // root ending with B^2, with no C rule left.
        //
        // Build the prefix: x (b^2 b^3 c^2) (b^2 b^3 c^2) b^5  => that is
        // x A' A' b^5 with A' = b^5 c^2... To get the paper's exact shapes we
        // drive the sequence that produces them:
        //   x b b (b b b c c) ... simpler: verify algebraically through
        // unfold-equality and invariants instead of exact shapes, then check
        // the c^2 suffix folds into a repeated non-terminal.
        let mut seq: Vec<u32> = vec![9];
        let block: Vec<u32> = vec![1, 1, 1, 1, 1, 2, 2]; // b^2 (b^3 c^2)
        seq.extend(&block);
        seq.extend(&block);
        // tail: b^5 then c, c  -> completes a third block
        seq.extend([1, 1, 1, 1, 1]);
        seq.push(2);
        let b1 = build(&seq);
        assert_eq!(unfolded(&b1), seq);
        let mut b2 = b1;
        b2.push(e(2));
        b2.check_invariants().unwrap();
        let mut want = seq.clone();
        want.push(2);
        assert_eq!(unfolded(&b2), want);
        // Three identical blocks must now be folded: the root should be
        // short (x + B-ish structure), and some use must carry exponent >= 2.
        let g = b2.grammar();
        let root = g.rule(g.root());
        assert!(
            root.body.len() <= 3,
            "root not folded: {}",
            g.render(&|x| x.to_string())
        );
        let has_rep = root.body.iter().any(|u| u.count >= 2);
        assert!(has_rep, "{}", g.render(&|x| x.to_string()));
    }

    #[test]
    fn nested_repetition() {
        // ((a b)^3 c)^4
        let mut seq = Vec::new();
        for _ in 0..4 {
            for _ in 0..3 {
                seq.push(0);
                seq.push(1);
            }
            seq.push(2);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        // Expect a deeply folded grammar: few rules, root of 1 use.
        let g = b.grammar();
        assert!(g.rule_count() <= 4, "{}", g.render(&|x| x.to_string()));
    }

    #[test]
    fn alternating_long() {
        let mut seq = Vec::new();
        for i in 0..500 {
            seq.push(i % 2);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        assert!(b.grammar().rule_count() <= 6);
    }

    #[test]
    fn all_distinct_events() {
        let seq: Vec<u32> = (0..100).collect();
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        // No repetition: everything stays in the root.
        assert_eq!(b.grammar().rule_count(), 1);
        assert_eq!(b.grammar().rule(b.grammar().root()).body.len(), 100);
    }

    #[test]
    fn runs_with_varying_lengths() {
        // a^3 b a^5 b a^3 b — runs of a with different exponents around a
        // repeated digram.
        let mut seq = Vec::new();
        for run in [3usize, 5, 3] {
            seq.extend(std::iter::repeat_n(0u32, run));
            seq.push(1);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
    }

    #[test]
    fn interleaved_phases() {
        // Mimics an app with a setup phase, a compute loop, and a teardown.
        let mut seq: Vec<u32> = vec![10, 11, 12];
        for _ in 0..30 {
            seq.extend([0, 1, 2, 2, 3]);
        }
        seq.extend([13, 14]);
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
        assert!(
            b.grammar().rule_count() <= 6,
            "{}",
            b.grammar().render(&|x| x.to_string())
        );
    }

    #[test]
    fn fuzz_small_alphabet() {
        // Deterministic pseudo-random stress with alphabet 3; invariants
        // are checked after every push inside `build`.
        let mut state = 0x12345678u64;
        let mut seq = Vec::new();
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(((state >> 33) % 3) as u32);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
    }

    #[test]
    fn fuzz_medium_alphabet() {
        let mut state = 0xdeadbeefu64;
        let mut seq = Vec::new();
        for _ in 0..800 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seq.push(((state >> 33) % 12) as u32);
        }
        let b = build(&seq);
        assert_eq!(unfolded(&b), seq);
    }

    #[test]
    fn event_count_tracked() {
        let b = build(&[0, 1, 0, 1, 0, 1]);
        assert_eq!(b.event_count(), 6);
        assert_eq!(b.grammar().trace_len(), 6);
    }
}
