//! Worlds, communicators, and the full MPI-like call surface.

use std::cell::Cell;
use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::collective::Board;
use crate::datatype::{from_bytes, reduce_vecs, to_bytes, MpiReduce, MpiType, ReduceOp};
use crate::p2p::{Mailbox, Message, Status, Tag};
use crate::request::Request;

/// Key identifying a sub-communicator produced by [`Comm::split`]: every
/// member computes the same `(parent id, split sequence number, color)`
/// triple and attaches to the same shared state.
type CommKey = (u64, u64, i64);

/// Process-wide state shared by all ranks.
#[derive(Debug)]
struct WorldShared {
    mailboxes: Vec<Mailbox>,
    registry: Mutex<CommRegistry>,
}

#[derive(Debug)]
struct CommRegistry {
    next_id: u64,
    comms: HashMap<CommKey, Arc<CommShared>>,
}

/// Shared state of one communicator.
#[derive(Debug)]
struct CommShared {
    id: u64,
    board: Board,
    /// Communicator-local rank → world rank.
    members: Vec<usize>,
}

/// Entry point: launches `n` ranks as threads.
pub struct World;

impl World {
    /// Runs `f` on `size` ranks (one OS thread each) and returns the
    /// per-rank results in rank order. Panics in any rank propagate.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(size >= 1, "world size must be at least 1");
        let shared = Arc::new(WorldShared {
            mailboxes: (0..size).map(|_| Mailbox::new()).collect(),
            registry: Mutex::new(CommRegistry {
                next_id: 1,
                comms: HashMap::new(),
            }),
        });
        let world_comm = Arc::new(CommShared {
            id: 0,
            board: Board::new(size),
            members: (0..size).collect(),
        });
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let comm = Comm {
                        world: Arc::clone(&shared),
                        shared: Arc::clone(&world_comm),
                        local_rank: rank,
                        split_seq: Cell::new(0),
                    };
                    let f = &f;
                    s.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

/// A communicator handle held by one rank (the `MPI_Comm` equivalent plus
/// the calling rank's identity). Cloneable only through [`Comm::split`];
/// each rank drives its own handle.
#[derive(Debug)]
pub struct Comm {
    world: Arc<WorldShared>,
    shared: Arc<CommShared>,
    local_rank: usize,
    split_seq: Cell<u64>,
}

impl Comm {
    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// Stable identifier of the communicator (0 = world).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// World rank of a communicator-local rank.
    pub fn world_rank(&self, local: usize) -> usize {
        self.shared.members[local]
    }

    fn mailbox(&self) -> &Mailbox {
        &self.world.mailboxes[self.shared.members[self.local_rank]]
    }

    // ------------------------------------------------------------------
    // Point-to-point
    // ------------------------------------------------------------------

    /// Blocking standard send (eager: buffers and returns immediately, as
    /// small-message MPI sends do).
    pub fn send<T: MpiType>(&self, buf: &[T], dest: usize, tag: Tag) {
        let world_dest = self.shared.members[dest];
        self.world.mailboxes[world_dest].deposit(Message {
            src: self.local_rank,
            tag,
            comm_id: self.shared.id,
            data: to_bytes(buf),
        });
    }

    /// Blocking receive matching `(src, tag)` (`None` = wildcard).
    pub fn recv<T: MpiType>(&self, src: Option<usize>, tag: Option<Tag>) -> (Vec<T>, Status) {
        let msg = self.mailbox().take_matching(self.shared.id, src, tag);
        let status = Status {
            source: msg.src,
            tag: msg.tag,
            len: msg.data.len(),
        };
        (from_bytes(&msg.data), status)
    }

    /// Nonblocking receive if a matching message is already queued.
    pub fn try_recv<T: MpiType>(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<(Vec<T>, Status)> {
        let msg = self.mailbox().try_take_matching(self.shared.id, src, tag)?;
        let status = Status {
            source: msg.src,
            tag: msg.tag,
            len: msg.data.len(),
        };
        Some((from_bytes(&msg.data), status))
    }

    /// Whether a matching message is queued (`MPI_Iprobe`).
    pub fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> bool {
        self.mailbox().probe(self.shared.id, src, tag)
    }

    /// Sends several messages to `dest` as one modeled wire transfer (an
    /// aggregated send). The messages still match receives individually,
    /// in order.
    pub fn send_batch<T: MpiType>(&self, bufs: &[Vec<T>], dest: usize, tag: Tag) {
        let world_dest = self.shared.members[dest];
        let msgs: Vec<Message> = bufs
            .iter()
            .map(|b| Message {
                src: self.local_rank,
                tag,
                comm_id: self.shared.id,
                data: to_bytes(b),
            })
            .collect();
        self.world.mailboxes[world_dest].deposit_batch(msgs);
    }

    /// [`Comm::send_batch`] for already-encoded payloads (used by the
    /// prediction-driven aggregation layer in `pythia-runtime-mpi`).
    pub fn send_batch_raw(&self, bufs: Vec<bytes::Bytes>, dest: usize, tag: Tag) {
        let world_dest = self.shared.members[dest];
        let msgs: Vec<Message> = bufs
            .into_iter()
            .map(|data| Message {
                src: self.local_rank,
                tag,
                comm_id: self.shared.id,
                data,
            })
            .collect();
        self.world.mailboxes[world_dest].deposit_batch(msgs);
    }

    /// Network counters of this rank's incoming mailbox (transfers vs
    /// logical messages; see [`crate::p2p::NetworkStats`]).
    pub fn network_stats(&self) -> crate::p2p::NetworkStats {
        self.mailbox().network_stats()
    }

    /// Nonblocking send; completes immediately (eager buffering).
    pub fn isend<T: MpiType>(&self, buf: &[T], dest: usize, tag: Tag) -> Request<T> {
        self.send(buf, dest, tag);
        Request::send(dest, tag)
    }

    /// Nonblocking receive; the matching happens at wait time.
    pub fn irecv<T: MpiType>(&self, src: Option<usize>, tag: Option<Tag>) -> Request<T> {
        Request::recv(src, tag)
    }

    /// Completes a request. Send requests yield `None`; receive requests
    /// block until their message arrives and yield the payload.
    pub fn wait<T: MpiType>(&self, request: Request<T>) -> Option<(Vec<T>, Status)> {
        match request {
            Request::Send { .. } => None,
            Request::Recv { src, tag } => Some(self.recv(src, tag)),
        }
    }

    /// Completes a batch of requests in order (`MPI_Waitall`).
    pub fn waitall<T: MpiType>(&self, requests: Vec<Request<T>>) -> Vec<Option<(Vec<T>, Status)>> {
        requests.into_iter().map(|r| self.wait(r)).collect()
    }

    // ------------------------------------------------------------------
    // Collectives
    // ------------------------------------------------------------------

    /// Synchronizes all ranks of the communicator (`MPI_Barrier`).
    pub fn barrier(&self) {
        self.shared.board.barrier(self.local_rank);
    }

    /// Broadcast from `root`: every rank passes its local `data` (only the
    /// root's matters) and receives the root's (`MPI_Bcast`).
    pub fn bcast<T: MpiType>(&self, data: &[T], root: usize) -> Vec<T> {
        let mine = if self.local_rank == root {
            vec![to_bytes(data)]
        } else {
            Vec::new()
        };
        let snap = self.shared.board.exchange(self.local_rank, mine);
        from_bytes(&snap[root][0])
    }

    /// Reduction to `root` (`MPI_Reduce`): returns `Some` on the root.
    pub fn reduce<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp, root: usize) -> Option<Vec<T>> {
        let snap = self
            .shared
            .board
            .exchange(self.local_rank, vec![to_bytes(contrib)]);
        if self.local_rank != root {
            return None;
        }
        Some(Self::fold(&snap, op))
    }

    /// Reduction to all ranks (`MPI_Allreduce`).
    pub fn allreduce<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp) -> Vec<T> {
        let snap = self
            .shared
            .board
            .exchange(self.local_rank, vec![to_bytes(contrib)]);
        Self::fold(&snap, op)
    }

    fn fold<T: MpiReduce>(snap: &[Vec<bytes::Bytes>], op: ReduceOp) -> Vec<T> {
        let mut acc: Option<Vec<T>> = None;
        for slot in snap {
            let vals: Vec<T> = from_bytes(&slot[0]);
            acc = Some(match acc {
                None => vals,
                Some(a) => reduce_vecs(op, a, &vals),
            });
        }
        acc.expect("non-empty communicator")
    }

    /// Personalized all-to-all exchange (`MPI_Alltoall(v)`): `sends[i]`
    /// goes to rank `i`; returns what every rank sent to this one.
    pub fn alltoall<T: MpiType>(&self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        assert_eq!(
            sends.len(),
            self.size(),
            "alltoall needs one send buffer per rank"
        );
        let mine: Vec<bytes::Bytes> = sends.iter().map(|s| to_bytes(s)).collect();
        let snap = self.shared.board.exchange(self.local_rank, mine);
        (0..self.size())
            .map(|src| from_bytes(&snap[src][self.local_rank]))
            .collect()
    }

    /// Gather to `root` (`MPI_Gather`): returns `Some(per-rank data)` on
    /// the root.
    pub fn gather<T: MpiType>(&self, contrib: &[T], root: usize) -> Option<Vec<Vec<T>>> {
        let snap = self
            .shared
            .board
            .exchange(self.local_rank, vec![to_bytes(contrib)]);
        if self.local_rank != root {
            return None;
        }
        Some(snap.iter().map(|slot| from_bytes(&slot[0])).collect())
    }

    /// Gather to all ranks (`MPI_Allgather`).
    pub fn allgather<T: MpiType>(&self, contrib: &[T]) -> Vec<Vec<T>> {
        let snap = self
            .shared
            .board
            .exchange(self.local_rank, vec![to_bytes(contrib)]);
        snap.iter().map(|slot| from_bytes(&slot[0])).collect()
    }

    /// Scatter from `root` (`MPI_Scatter`): the root provides one chunk per
    /// rank; every rank receives its chunk.
    pub fn scatter<T: MpiType>(&self, chunks: Option<&[Vec<T>]>, root: usize) -> Vec<T> {
        let mine = if self.local_rank == root {
            let chunks = chunks.expect("root must provide chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            chunks.iter().map(|c| to_bytes(c)).collect()
        } else {
            Vec::new()
        };
        let snap = self.shared.board.exchange(self.local_rank, mine);
        from_bytes(&snap[root][self.local_rank])
    }

    /// Combined send+receive (`MPI_Sendrecv`): ships `buf` to `dest` and
    /// receives one message from `src`. Deadlock-free because sends are
    /// eager.
    pub fn sendrecv<T: MpiType>(
        &self,
        buf: &[T],
        dest: usize,
        src: Option<usize>,
        tag: Tag,
    ) -> (Vec<T>, Status) {
        self.send(buf, dest, tag);
        self.recv(src, Some(tag))
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `r` receives the
    /// reduction of the contributions of ranks `0..=r`.
    pub fn scan<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp) -> Vec<T> {
        let snap = self
            .shared
            .board
            .exchange(self.local_rank, vec![to_bytes(contrib)]);
        let mut acc: Option<Vec<T>> = None;
        for slot in snap.iter().take(self.local_rank + 1) {
            let vals: Vec<T> = from_bytes(&slot[0]);
            acc = Some(match acc {
                None => vals,
                Some(a) => reduce_vecs(op, a, &vals),
            });
        }
        acc.expect("at least own contribution")
    }

    /// Reduce-scatter (`MPI_Reduce_scatter_block`-style): every rank
    /// contributes one chunk per rank; rank `r` receives the element-wise
    /// reduction of everyone's `r`-th chunk.
    pub fn reduce_scatter<T: MpiReduce>(&self, chunks: &[Vec<T>], op: ReduceOp) -> Vec<T> {
        assert_eq!(chunks.len(), self.size(), "one chunk per rank");
        let mine: Vec<bytes::Bytes> = chunks.iter().map(|c| to_bytes(c)).collect();
        let snap = self.shared.board.exchange(self.local_rank, mine);
        let mut acc: Option<Vec<T>> = None;
        for slot in snap.iter() {
            let vals: Vec<T> = from_bytes(&slot[self.local_rank]);
            acc = Some(match acc {
                None => vals,
                Some(a) => reduce_vecs(op, a, &vals),
            });
        }
        acc.expect("non-empty communicator")
    }

    /// Duplicates the communicator (`MPI_Comm_dup`): same members and
    /// ranks, separate message-matching space.
    pub fn dup(&self) -> Comm {
        self.split(0, self.local_rank as i64)
    }

    // ------------------------------------------------------------------
    // Communicator management
    // ------------------------------------------------------------------

    /// Splits the communicator by `color` (`MPI_Comm_split`): ranks with
    /// the same color form a new communicator, ordered by `(key, rank)`.
    /// Every member must call `split` the same number of times in the same
    /// order.
    pub fn split(&self, color: i64, key: i64) -> Comm {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        // Share (color, key) so each rank can compute the same membership.
        let all: Vec<Vec<i64>> = self.allgather(&[color, key]).into_iter().collect();
        let mut members: Vec<(i64, usize)> = all
            .iter()
            .enumerate()
            .filter(|(_, ck)| ck[0] == color)
            .map(|(r, ck)| (ck[1], r))
            .collect();
        members.sort();
        let local_members: Vec<usize> = members
            .iter()
            .map(|&(_, r)| self.shared.members[r])
            .collect();
        let my_new_rank = members
            .iter()
            .position(|&(_, r)| r == self.local_rank)
            .expect("caller must be a member of its own color group");
        let comm_key: CommKey = (self.shared.id, seq, color);
        let shared = {
            let mut reg = self.world.registry.lock();
            if let Some(existing) = reg.comms.get(&comm_key) {
                Arc::clone(existing)
            } else {
                let id = reg.next_id;
                reg.next_id += 1;
                let created = Arc::new(CommShared {
                    id,
                    board: Board::new(local_members.len()),
                    members: local_members.clone(),
                });
                reg.comms.insert(comm_key, Arc::clone(&created));
                created
            }
        };
        debug_assert_eq!(shared.members, local_members);
        Comm {
            world: Arc::clone(&self.world),
            shared,
            local_rank: my_new_rank,
            split_seq: Cell::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_send_recv() {
        let out = World::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(&[comm.rank() as u64], next, 0);
            let (data, status) = comm.recv::<u64>(Some(prev), Some(0));
            assert_eq!(status.source, prev);
            data[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn wildcard_receive() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[42u64], 1, 7);
                0
            } else {
                let (data, status) = comm.recv::<u64>(None, None);
                assert_eq!(status.tag, 7);
                assert_eq!(status.source, 0);
                data[0]
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn isend_irecv_waitall() {
        let out = World::run(3, |comm| {
            let mut reqs = Vec::new();
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    reqs.push(comm.isend(&[comm.rank() as i64], peer, 1));
                    reqs.push(comm.irecv::<i64>(Some(peer), Some(1)));
                }
            }
            let results = comm.waitall(reqs);
            results
                .into_iter()
                .flatten()
                .map(|(data, _)| data[0])
                .sum::<i64>()
        });
        // Each rank receives the ids of the two other ranks.
        assert_eq!(out[0], 3);
        assert_eq!(out[1], 2);
        assert_eq!(out[2], 1);
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..3 {
            let out = World::run(3, move |comm| {
                let data = if comm.rank() == root {
                    vec![root as u64 * 100]
                } else {
                    vec![0]
                };
                comm.bcast(&data, root)[0]
            });
            assert_eq!(out, vec![root as u64 * 100; 3]);
        }
    }

    #[test]
    fn allreduce_matches_sequential() {
        let out = World::run(5, |comm| {
            let contrib = [comm.rank() as f64, 1.0];
            comm.allreduce(&contrib, ReduceOp::Sum)
        });
        for v in out {
            assert_eq!(v, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let out = World::run(4, |comm| {
            comm.reduce(&[comm.rank() as i64 + 1], ReduceOp::Prod, 2)
        });
        assert!(out[0].is_none());
        assert_eq!(out[2].as_ref().unwrap()[0], 24);
    }

    #[test]
    fn alltoall_transposes() {
        let out = World::run(3, |comm| {
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![(comm.rank() * 10 + d) as u64])
                .collect();
            comm.alltoall(&sends)
        });
        // Rank r receives s*10 + r from each sender s.
        for (r, recvd) in out.iter().enumerate() {
            for (s, v) in recvd.iter().enumerate() {
                assert_eq!(v[0], (s * 10 + r) as u64);
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let out = World::run(4, |comm| {
            let gathered = comm.gather(&[comm.rank() as u64], 0);
            let chunks: Option<Vec<Vec<u64>>> = gathered.map(|g| {
                g.into_iter()
                    .map(|mut v| {
                        v[0] *= 2;
                        v
                    })
                    .collect()
            });
            comm.scatter(chunks.as_deref(), 0)[0]
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn allgather_collects_everything() {
        let out = World::run(3, |comm| comm.allgather(&[comm.rank() as u64 + 7]));
        for v in out {
            assert_eq!(v, vec![vec![7], vec![8], vec![9]]);
        }
    }

    #[test]
    fn split_into_row_communicators() {
        // 2x2 grid: split into rows; sum ranks within each row.
        let out = World::run(4, |comm| {
            let row = (comm.rank() / 2) as i64;
            let row_comm = comm.split(row, comm.rank() as i64);
            assert_eq!(row_comm.size(), 2);
            let total = row_comm.allreduce(&[comm.rank() as u64], ReduceOp::Sum);
            (row_comm.rank(), total[0])
        });
        assert_eq!(out[0], (0, 1));
        assert_eq!(out[1], (1, 1));
        assert_eq!(out[2], (0, 5));
        assert_eq!(out[3], (1, 5));
    }

    #[test]
    fn split_p2p_does_not_cross_communicators() {
        let out = World::run(4, |comm| {
            let color = (comm.rank() % 2) as i64;
            let sub = comm.split(color, comm.rank() as i64);
            // Ping within the sub-communicator (local ranks 0 <-> 1).
            if sub.rank() == 0 {
                sub.send(&[comm.rank() as u64], 1, 5);
                0
            } else {
                let (data, _) = sub.recv::<u64>(Some(0), Some(5));
                data[0]
            }
        });
        // Color 0 = world {0, 2}, color 1 = world {1, 3}: local rank 1 of
        // each sub-comm (world 2 and 3) receives its local rank 0's world
        // rank (0 and 1 respectively).
        assert_eq!(out[2], 0);
        assert_eq!(out[3], 1);
    }

    #[test]
    fn repeated_splits_get_distinct_comms() {
        let out = World::run(2, |comm| {
            let a = comm.split(0, 0);
            let b = comm.split(0, 0);
            assert_ne!(a.id(), b.id());
            a.barrier();
            b.barrier();
            comm.id()
        });
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            comm.barrier();
            let r = comm.allreduce(&[41u64], ReduceOp::Sum);
            comm.send(&[7u64], 0, 0); // self-send
            let (d, _) = comm.recv::<u64>(Some(0), Some(0));
            r[0] + d[0]
        });
        assert_eq!(out, vec![48]);
    }

    #[test]
    fn try_recv_and_probe() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(&[9u64], 1, 3);
                comm.barrier();
                0
            } else {
                assert!(comm.try_recv::<u64>(Some(0), Some(3)).is_none());
                assert!(!comm.probe(Some(0), Some(3)));
                comm.barrier();
                comm.barrier();
                assert!(comm.probe(Some(0), Some(3)));
                comm.try_recv::<u64>(Some(0), Some(3)).unwrap().0[0]
            }
        });
        assert_eq!(out[1], 9);
    }
}

#[cfg(test)]
mod extended_api_tests {
    use super::*;

    #[test]
    fn sendrecv_ring_shift() {
        let out = World::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let (data, status) = comm.sendrecv(&[comm.rank() as u64], next, Some(prev), 9);
            assert_eq!(status.source, prev);
            data[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn scan_prefix_sums() {
        let out = World::run(5, |comm| {
            comm.scan(&[comm.rank() as u64 + 1], ReduceOp::Sum)[0]
        });
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn scan_with_min_op() {
        let out = World::run(4, |comm| {
            let v = [10i64 - comm.rank() as i64];
            comm.scan(&v, ReduceOp::Min)[0]
        });
        // Contributions 10, 9, 8, 7 -> prefix minima.
        assert_eq!(out, vec![10, 9, 8, 7]);
    }

    #[test]
    fn reduce_scatter_distributes_reductions() {
        let out = World::run(3, |comm| {
            // Rank r contributes chunk[d] = [r*10 + d].
            let chunks: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![(comm.rank() * 10 + d) as u64])
                .collect();
            comm.reduce_scatter(&chunks, ReduceOp::Sum)[0]
        });
        // Rank d receives sum over r of (r*10 + d) = 30 + 3d.
        assert_eq!(out, vec![30, 33, 36]);
    }

    #[test]
    fn dup_preserves_ranks_but_isolates_messages() {
        let out = World::run(3, |comm| {
            let dup = comm.dup();
            assert_eq!(dup.rank(), comm.rank());
            assert_eq!(dup.size(), comm.size());
            assert_ne!(dup.id(), comm.id());
            // A message on the dup is invisible to the original.
            if comm.rank() == 0 {
                dup.send(&[7u64], 1, 1);
                comm.send(&[8u64], 1, 1);
            }
            if comm.rank() == 1 {
                let (a, _) = comm.recv::<u64>(Some(0), Some(1));
                let (b, _) = dup.recv::<u64>(Some(0), Some(1));
                assert_eq!((a[0], b[0]), (8, 7));
            }
            comm.barrier();
            1
        });
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn scan_matches_allreduce_on_last_rank() {
        let out = World::run(4, |comm| {
            let contrib = [comm.rank() as f64 + 0.5];
            let scan = comm.scan(&contrib, ReduceOp::Sum)[0];
            let all = comm.allreduce(&contrib, ReduceOp::Sum)[0];
            (scan, all)
        });
        let (scan_last, all_last) = out[3];
        assert_eq!(scan_last, all_last);
    }
}
