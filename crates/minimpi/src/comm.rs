//! Worlds, communicators, and the full MPI-like call surface.

use std::cell::Cell;
use std::collections::HashMap;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::collective::Board;
use crate::communicator::Communicator;
use crate::datatype::{MpiReduce, MpiType, ReduceOp};
use crate::failure::{CommError, FailureState, PoisonedWorld, RankFault};
use crate::p2p::{Mailbox, Message, Status, Tag};
use crate::request::Request;

/// Key identifying a sub-communicator produced by [`Comm::split`]: every
/// member computes the same `(parent id, split sequence number, color)`
/// triple and attaches to the same shared state.
type CommKey = (u64, u64, i64);

/// Process-wide state shared by all ranks.
#[derive(Debug)]
struct WorldShared {
    mailboxes: Vec<Mailbox>,
    registry: Mutex<CommRegistry>,
    failure: Arc<FailureState>,
    /// The world communicator's shared state (board + identity mapping),
    /// kept here so failure paths can wake its board too.
    world_comm: Arc<CommShared>,
}

impl WorldShared {
    fn new(size: usize) -> Arc<Self> {
        let failure = Arc::new(FailureState::new(size));
        let world_comm = Arc::new(CommShared {
            id: 0,
            board: Board::with_failure(size, Arc::clone(&failure)),
            members: (0..size).collect(),
        });
        Arc::new(WorldShared {
            mailboxes: (0..size)
                .map(|r| Mailbox::for_rank(r, Arc::clone(&failure)))
                .collect(),
            registry: Mutex::new(CommRegistry {
                next_id: 1,
                comms: HashMap::new(),
            }),
            failure,
            world_comm,
        })
    }

    /// Wakes every blocking primitive in the world so it re-checks the
    /// poison flag.
    fn wake_world(&self) {
        for mb in &self.mailboxes {
            mb.wake_all();
        }
        self.world_comm.board.wake_all();
        for c in self.registry.lock().comms.values() {
            c.board.wake_all();
        }
    }

    /// Marks `rank` failed and, unless the world is elastic, poisons it
    /// and wakes all blocked survivors.
    fn fail_rank(&self, rank: usize) {
        self.failure.mark_failed(rank);
        if !self.failure.is_elastic() {
            self.failure.poison(rank);
            self.wake_world();
        }
    }
}

#[derive(Debug)]
struct CommRegistry {
    next_id: u64,
    comms: HashMap<CommKey, Arc<CommShared>>,
}

/// Shared state of one communicator.
#[derive(Debug)]
struct CommShared {
    id: u64,
    board: Board,
    /// Communicator-local rank → world rank.
    members: Vec<usize>,
}

/// Counters returned by [`World::run_elastic`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ElasticWorldStats {
    /// Rank failures the supervisor (or a heartbeat scan) detected.
    pub failures_detected: u64,
    /// Replacement ranks admitted after a failure.
    pub ranks_replaced: u64,
}

/// Entry point: launches `n` ranks as threads.
pub struct World;

impl World {
    /// Runs `f` on `size` ranks (one OS thread each) and returns the
    /// per-rank results in rank order. Panics in any rank propagate —
    /// and, since the world poisons on the first failure, blocked
    /// survivors abort instead of hanging forever.
    pub fn run<R, F>(size: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let (results, primary, _, _) = Self::run_supervised(size, false, 0, f);
        if let Some((_, payload)) = primary {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|r| r.expect("rank finished without result or failure"))
            .collect()
    }

    /// Fault-aware variant of [`World::run`]: a rank failure yields
    /// `Err(CommError::RankFailed)` (naming the first failed rank)
    /// instead of propagating the panic. No survivor is left hanging.
    pub fn run_result<R, F>(size: usize, f: F) -> Result<Vec<R>, CommError>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let (results, primary, failure, _) = Self::run_supervised(size, false, 0, f);
        match primary {
            None => Ok(results
                .into_iter()
                .map(|r| r.expect("rank finished without result or failure"))
                .collect()),
            Some((rank, _)) => Err(CommError::RankFailed {
                rank: failure.first_failed().unwrap_or(rank),
            }),
        }
    }

    /// Elastic variant: a failed rank is *replaced* — the supervisor
    /// respawns it with the next incarnation number (up to `size * 4`
    /// respawns) while survivors keep blocking at the rendezvous until
    /// the replacement catches up. The closure observes replacement via
    /// [`Comm::incarnation`] (0 = first spawn) and is expected to resume
    /// from its durable journal rather than re-issuing completed
    /// communication. Exceeding the respawn budget fails the world.
    pub fn run_elastic<R, F>(size: usize, f: F) -> Result<(Vec<R>, ElasticWorldStats), CommError>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        let budget = size * 4;
        let (results, primary, failure, respawned) = Self::run_supervised(size, true, budget, f);
        let stats = ElasticWorldStats {
            failures_detected: failure.detected(),
            ranks_replaced: respawned as u64,
        };
        match primary {
            None => Ok((
                results
                    .into_iter()
                    .map(|r| r.expect("rank finished without result or failure"))
                    .collect(),
                stats,
            )),
            Some((rank, _)) => Err(CommError::RankFailed { rank }),
        }
    }

    /// Shared supervisor: spawns one thread per rank, each reporting
    /// `(rank, result)` over a channel. On a failure it either poisons
    /// the world and wakes survivors (non-elastic) or respawns the rank
    /// with a bumped incarnation (elastic, within `respawn_budget`).
    #[allow(clippy::type_complexity)]
    fn run_supervised<R, F>(
        size: usize,
        elastic: bool,
        respawn_budget: usize,
        f: F,
    ) -> (
        Vec<Option<R>>,
        Option<(usize, Box<dyn std::any::Any + Send>)>,
        Arc<FailureState>,
        usize,
    )
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(size >= 1, "world size must be at least 1");
        let shared = WorldShared::new(size);
        shared.failure.set_elastic(elastic);
        let failure = Arc::clone(&shared.failure);
        let mut results: Vec<Option<R>> = (0..size).map(|_| None).collect();
        let mut primary: Option<(usize, Box<dyn std::any::Any + Send>)> = None;
        let mut respawned = 0usize;

        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel::<(usize, std::thread::Result<R>)>();
            let spawn_rank = |rank: usize, incarnation: u64| {
                let comm = Comm {
                    world: Arc::clone(&shared),
                    shared: Arc::clone(&shared.world_comm),
                    local_rank: rank,
                    split_seq: Cell::new(0),
                    incarnation,
                };
                let tx = tx.clone();
                let f = &f;
                s.spawn(move || {
                    let result = catch_unwind(AssertUnwindSafe(|| f(comm)));
                    let _ = tx.send((rank, result));
                });
            };
            for rank in 0..size {
                spawn_rank(rank, 0);
            }
            let mut incarnations = vec![0u64; size];
            let mut done = 0usize;
            while done < size {
                let (rank, result) = rx.recv().expect("rank thread vanished");
                match result {
                    Ok(r) => {
                        results[rank] = Some(r);
                        done += 1;
                    }
                    Err(payload) => {
                        let induced_abort = payload
                            .downcast_ref::<PoisonedWorld>()
                            .is_some_and(|p| p.rank != rank);
                        if elastic && !induced_abort {
                            failure.mark_failed(rank);
                            if respawned < respawn_budget {
                                respawned += 1;
                                failure.clear_failed(rank);
                                incarnations[rank] += 1;
                                spawn_rank(rank, incarnations[rank]);
                                continue;
                            }
                        }
                        if !induced_abort {
                            shared.fail_rank(rank);
                            if primary.is_none() {
                                primary = Some((rank, payload));
                            }
                        }
                        done += 1;
                    }
                }
            }
        });
        (results, primary, failure, respawned)
    }
}

/// A communicator handle held by one rank (the `MPI_Comm` equivalent plus
/// the calling rank's identity). Cloneable only through [`Comm::split`];
/// each rank drives its own handle.
///
/// The full call surface (p2p, collectives, splitting) is provided by the
/// backend-independent [`Communicator`] trait; the inherent methods below
/// are thin delegators kept so existing call sites need no trait import.
#[derive(Debug)]
pub struct Comm {
    world: Arc<WorldShared>,
    shared: Arc<CommShared>,
    local_rank: usize,
    split_seq: Cell<u64>,
    /// 0 on first spawn; bumped per elastic replacement of this rank.
    incarnation: u64,
}

impl Comm {
    /// This rank's index within the communicator.
    pub fn rank(&self) -> usize {
        self.local_rank
    }

    /// Number of ranks in the communicator.
    pub fn size(&self) -> usize {
        self.shared.members.len()
    }

    /// Stable identifier of the communicator (0 = world).
    pub fn id(&self) -> u64 {
        self.shared.id
    }

    /// World rank of a communicator-local rank.
    pub fn world_rank(&self, local: usize) -> usize {
        self.shared.members[local]
    }

    /// How many times this rank has been replaced (0 = first spawn); see
    /// [`World::run_elastic`].
    pub fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn mailbox(&self) -> &Mailbox {
        &self.world.mailboxes[self.shared.members[self.local_rank]]
    }

    /// Stamps this rank's heartbeat (no-op unless detection is armed).
    fn beat(&self) {
        self.world
            .failure
            .beat(self.shared.members[self.local_rank]);
    }

    // ------------------------------------------------------------------
    // Point-to-point (delegators into the Communicator trait)
    // ------------------------------------------------------------------

    /// Blocking standard send (eager: buffers and returns immediately, as
    /// small-message MPI sends do).
    pub fn send<T: MpiType>(&self, buf: &[T], dest: usize, tag: Tag) {
        Communicator::send(self, buf, dest, tag)
    }

    /// Blocking receive matching `(src, tag)` (`None` = wildcard).
    pub fn recv<T: MpiType>(&self, src: Option<usize>, tag: Option<Tag>) -> (Vec<T>, Status) {
        Communicator::recv(self, src, tag)
    }

    /// Nonblocking receive if a matching message is already queued.
    pub fn try_recv<T: MpiType>(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<(Vec<T>, Status)> {
        Communicator::try_recv(self, src, tag)
    }

    /// Whether a matching message is queued (`MPI_Iprobe`).
    pub fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> bool {
        Communicator::probe(self, src, tag)
    }

    /// Sends several messages to `dest` as one modeled wire transfer (an
    /// aggregated send). The messages still match receives individually,
    /// in order.
    pub fn send_batch<T: MpiType>(&self, bufs: &[Vec<T>], dest: usize, tag: Tag) {
        Communicator::send_batch(self, bufs, dest, tag)
    }

    /// [`Comm::send_batch`] for already-encoded payloads (used by the
    /// prediction-driven aggregation layer in `pythia-runtime-mpi`).
    pub fn send_batch_raw(&self, bufs: Vec<bytes::Bytes>, dest: usize, tag: Tag) {
        Communicator::send_batch_raw(self, bufs, dest, tag)
    }

    /// Network counters of this rank's incoming mailbox (transfers vs
    /// logical messages; see [`crate::p2p::NetworkStats`]).
    pub fn network_stats(&self) -> crate::p2p::NetworkStats {
        Communicator::network_stats(self)
    }

    /// Nonblocking send; completes immediately (eager buffering).
    pub fn isend<T: MpiType>(&self, buf: &[T], dest: usize, tag: Tag) -> Request<T> {
        Communicator::isend(self, buf, dest, tag)
    }

    /// Nonblocking receive; the matching happens at wait time.
    pub fn irecv<T: MpiType>(&self, src: Option<usize>, tag: Option<Tag>) -> Request<T> {
        Communicator::irecv(self, src, tag)
    }

    /// Completes a request. Send requests yield `None`; receive requests
    /// block until their message arrives and yield the payload.
    pub fn wait<T: MpiType>(&self, request: Request<T>) -> Option<(Vec<T>, Status)> {
        Communicator::wait(self, request)
    }

    /// Completes a batch of requests in order (`MPI_Waitall`).
    pub fn waitall<T: MpiType>(&self, requests: Vec<Request<T>>) -> Vec<Option<(Vec<T>, Status)>> {
        Communicator::waitall(self, requests)
    }

    // ------------------------------------------------------------------
    // Collectives (delegators into the Communicator trait)
    // ------------------------------------------------------------------

    /// Synchronizes all ranks of the communicator (`MPI_Barrier`).
    pub fn barrier(&self) {
        Communicator::barrier(self)
    }

    /// Broadcast from `root`: every rank passes its local `data` (only the
    /// root's matters) and receives the root's (`MPI_Bcast`).
    pub fn bcast<T: MpiType>(&self, data: &[T], root: usize) -> Vec<T> {
        Communicator::bcast(self, data, root)
    }

    /// Reduction to `root` (`MPI_Reduce`): returns `Some` on the root.
    pub fn reduce<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp, root: usize) -> Option<Vec<T>> {
        Communicator::reduce(self, contrib, op, root)
    }

    /// Reduction to all ranks (`MPI_Allreduce`).
    pub fn allreduce<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp) -> Vec<T> {
        Communicator::allreduce(self, contrib, op)
    }

    /// Personalized all-to-all exchange (`MPI_Alltoall(v)`): `sends[i]`
    /// goes to rank `i`; returns what every rank sent to this one.
    pub fn alltoall<T: MpiType>(&self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        Communicator::alltoall(self, sends)
    }

    /// Gather to `root` (`MPI_Gather`): returns `Some(per-rank data)` on
    /// the root.
    pub fn gather<T: MpiType>(&self, contrib: &[T], root: usize) -> Option<Vec<Vec<T>>> {
        Communicator::gather(self, contrib, root)
    }

    /// Gather to all ranks (`MPI_Allgather`).
    pub fn allgather<T: MpiType>(&self, contrib: &[T]) -> Vec<Vec<T>> {
        Communicator::allgather(self, contrib)
    }

    /// Scatter from `root` (`MPI_Scatter`): the root provides one chunk per
    /// rank; every rank receives its chunk.
    pub fn scatter<T: MpiType>(&self, chunks: Option<&[Vec<T>]>, root: usize) -> Vec<T> {
        Communicator::scatter(self, chunks, root)
    }

    /// Combined send+receive (`MPI_Sendrecv`): ships `buf` to `dest` and
    /// receives one message from `src`. Deadlock-free because sends are
    /// eager.
    pub fn sendrecv<T: MpiType>(
        &self,
        buf: &[T],
        dest: usize,
        src: Option<usize>,
        tag: Tag,
    ) -> (Vec<T>, Status) {
        Communicator::sendrecv(self, buf, dest, src, tag)
    }

    /// Inclusive prefix reduction (`MPI_Scan`): rank `r` receives the
    /// reduction of the contributions of ranks `0..=r`.
    pub fn scan<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp) -> Vec<T> {
        Communicator::scan(self, contrib, op)
    }

    /// Reduce-scatter (`MPI_Reduce_scatter_block`-style): every rank
    /// contributes one chunk per rank; rank `r` receives the element-wise
    /// reduction of everyone's `r`-th chunk.
    pub fn reduce_scatter<T: MpiReduce>(&self, chunks: &[Vec<T>], op: ReduceOp) -> Vec<T> {
        Communicator::reduce_scatter(self, chunks, op)
    }

    /// Duplicates the communicator (`MPI_Comm_dup`): same members and
    /// ranks, separate message-matching space.
    pub fn dup(&self) -> Comm {
        Communicator::dup(self)
    }

    /// Splits the communicator by `color` (`MPI_Comm_split`): ranks with
    /// the same color form a new communicator, ordered by `(key, rank)`.
    /// Every member must call `split` the same number of times in the same
    /// order.
    pub fn split(&self, color: i64, key: i64) -> Comm {
        Communicator::split(self, color, key)
    }

    /// The rank whose failure poisoned the world, if any.
    pub fn poisoned(&self) -> Option<usize> {
        Communicator::poisoned(self)
    }

    /// Rank failures detected in this world so far.
    pub fn failures_detected(&self) -> u64 {
        Communicator::failures_detected(self)
    }
}

impl Communicator for Comm {
    fn rank(&self) -> usize {
        self.local_rank
    }

    fn size(&self) -> usize {
        self.shared.members.len()
    }

    fn id(&self) -> u64 {
        self.shared.id
    }

    fn world_rank(&self, local: usize) -> usize {
        self.shared.members[local]
    }

    fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn deposit(&self, dest: usize, msgs: Vec<Message>) {
        self.beat();
        let world_dest = self.shared.members[dest];
        self.world.mailboxes[world_dest].deposit_batch(msgs);
    }

    fn take(&self, src: Option<usize>, tag: Option<Tag>) -> Message {
        self.beat();
        self.mailbox().take_matching(self.shared.id, src, tag)
    }

    fn try_take(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Message> {
        self.beat();
        self.mailbox().try_take_matching(self.shared.id, src, tag)
    }

    fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> bool {
        self.beat();
        self.mailbox().probe(self.shared.id, src, tag)
    }

    fn exchange(&self, mine: Vec<bytes::Bytes>) -> Arc<Vec<Vec<bytes::Bytes>>> {
        self.beat();
        self.shared.board.exchange(self.local_rank, mine)
    }

    fn next_split_seq(&self) -> u64 {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        seq
    }

    fn register_split(&self, seq: u64, color: i64, members: Vec<usize>, my_rank: usize) -> Comm {
        let comm_key: CommKey = (self.shared.id, seq, color);
        let shared = {
            let mut reg = self.world.registry.lock();
            if let Some(existing) = reg.comms.get(&comm_key) {
                Arc::clone(existing)
            } else {
                let id = reg.next_id;
                reg.next_id += 1;
                let created = Arc::new(CommShared {
                    id,
                    board: Board::with_members(
                        members.len(),
                        members.clone(),
                        Arc::clone(&self.world.failure),
                    ),
                    members: members.clone(),
                });
                reg.comms.insert(comm_key, Arc::clone(&created));
                created
            }
        };
        debug_assert_eq!(shared.members, members);
        Comm {
            world: Arc::clone(&self.world),
            shared,
            local_rank: my_rank,
            split_seq: Cell::new(0),
            incarnation: self.incarnation,
        }
    }

    fn network_stats(&self) -> crate::p2p::NetworkStats {
        self.mailbox().network_stats()
    }

    fn poisoned(&self) -> Option<usize> {
        self.world.failure.poisoned()
    }

    fn failures_detected(&self) -> u64 {
        self.world.failure.detected()
    }

    fn heartbeat(&self) {
        self.beat();
    }

    fn fail_self(&self, fault: RankFault) -> ! {
        let me = self.shared.members[self.local_rank];
        match fault {
            RankFault::Panic => panic!("injected rank fault: panic at rank {me}"),
            RankFault::Hang => self.world.failure.park_hung(me),
            RankFault::Disconnect => {
                self.world.fail_rank(me);
                std::panic::panic_any(PoisonedWorld { rank: me });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_send_recv() {
        let out = World::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(&[comm.rank() as u64], next, 0);
            let (data, status) = comm.recv::<u64>(Some(prev), Some(0));
            assert_eq!(status.source, prev);
            data[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn wildcard_receive() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.send(&[42u64], 1, 7);
                0
            } else {
                let (data, status) = comm.recv::<u64>(None, None);
                assert_eq!(status.tag, 7);
                assert_eq!(status.source, 0);
                data[0]
            }
        });
        assert_eq!(out[1], 42);
    }

    #[test]
    fn isend_irecv_waitall() {
        let out = World::run(3, |comm| {
            let mut reqs = Vec::new();
            for peer in 0..comm.size() {
                if peer != comm.rank() {
                    reqs.push(comm.isend(&[comm.rank() as i64], peer, 1));
                    reqs.push(comm.irecv::<i64>(Some(peer), Some(1)));
                }
            }
            let results = comm.waitall(reqs);
            results
                .into_iter()
                .flatten()
                .map(|(data, _)| data[0])
                .sum::<i64>()
        });
        // Each rank receives the ids of the two other ranks.
        assert_eq!(out[0], 3);
        assert_eq!(out[1], 2);
        assert_eq!(out[2], 1);
    }

    #[test]
    fn bcast_from_each_root() {
        for root in 0..3 {
            let out = World::run(3, move |comm| {
                let data = if comm.rank() == root {
                    vec![root as u64 * 100]
                } else {
                    vec![0]
                };
                comm.bcast(&data, root)[0]
            });
            assert_eq!(out, vec![root as u64 * 100; 3]);
        }
    }

    #[test]
    fn allreduce_matches_sequential() {
        let out = World::run(5, |comm| {
            let contrib = [comm.rank() as f64, 1.0];
            comm.allreduce(&contrib, ReduceOp::Sum)
        });
        for v in out {
            assert_eq!(v, vec![0.0 + 1.0 + 2.0 + 3.0 + 4.0, 5.0]);
        }
    }

    #[test]
    fn reduce_only_root_gets_result() {
        let out = World::run(4, |comm| {
            comm.reduce(&[comm.rank() as i64 + 1], ReduceOp::Prod, 2)
        });
        assert!(out[0].is_none());
        assert_eq!(out[2].as_ref().unwrap()[0], 24);
    }

    #[test]
    fn alltoall_transposes() {
        let out = World::run(3, |comm| {
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![(comm.rank() * 10 + d) as u64])
                .collect();
            comm.alltoall(&sends)
        });
        // Rank r receives s*10 + r from each sender s.
        for (r, recvd) in out.iter().enumerate() {
            for (s, v) in recvd.iter().enumerate() {
                assert_eq!(v[0], (s * 10 + r) as u64);
            }
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let out = World::run(4, |comm| {
            let gathered = comm.gather(&[comm.rank() as u64], 0);
            let chunks: Option<Vec<Vec<u64>>> = gathered.map(|g| {
                g.into_iter()
                    .map(|mut v| {
                        v[0] *= 2;
                        v
                    })
                    .collect()
            });
            comm.scatter(chunks.as_deref(), 0)[0]
        });
        assert_eq!(out, vec![0, 2, 4, 6]);
    }

    #[test]
    fn allgather_collects_everything() {
        let out = World::run(3, |comm| comm.allgather(&[comm.rank() as u64 + 7]));
        for v in out {
            assert_eq!(v, vec![vec![7], vec![8], vec![9]]);
        }
    }

    #[test]
    fn split_into_row_communicators() {
        // 2x2 grid: split into rows; sum ranks within each row.
        let out = World::run(4, |comm| {
            let row = (comm.rank() / 2) as i64;
            let row_comm = comm.split(row, comm.rank() as i64);
            assert_eq!(row_comm.size(), 2);
            let total = row_comm.allreduce(&[comm.rank() as u64], ReduceOp::Sum);
            (row_comm.rank(), total[0])
        });
        assert_eq!(out[0], (0, 1));
        assert_eq!(out[1], (1, 1));
        assert_eq!(out[2], (0, 5));
        assert_eq!(out[3], (1, 5));
    }

    #[test]
    fn split_p2p_does_not_cross_communicators() {
        let out = World::run(4, |comm| {
            let color = (comm.rank() % 2) as i64;
            let sub = comm.split(color, comm.rank() as i64);
            // Ping within the sub-communicator (local ranks 0 <-> 1).
            if sub.rank() == 0 {
                sub.send(&[comm.rank() as u64], 1, 5);
                0
            } else {
                let (data, _) = sub.recv::<u64>(Some(0), Some(5));
                data[0]
            }
        });
        // Color 0 = world {0, 2}, color 1 = world {1, 3}: local rank 1 of
        // each sub-comm (world 2 and 3) receives its local rank 0's world
        // rank (0 and 1 respectively).
        assert_eq!(out[2], 0);
        assert_eq!(out[3], 1);
    }

    #[test]
    fn repeated_splits_get_distinct_comms() {
        let out = World::run(2, |comm| {
            let a = comm.split(0, 0);
            let b = comm.split(0, 0);
            assert_ne!(a.id(), b.id());
            a.barrier();
            b.barrier();
            comm.id()
        });
        assert_eq!(out, vec![0, 0]);
    }

    #[test]
    fn single_rank_world() {
        let out = World::run(1, |comm| {
            comm.barrier();
            let r = comm.allreduce(&[41u64], ReduceOp::Sum);
            comm.send(&[7u64], 0, 0); // self-send
            let (d, _) = comm.recv::<u64>(Some(0), Some(0));
            r[0] + d[0]
        });
        assert_eq!(out, vec![48]);
    }

    #[test]
    fn try_recv_and_probe() {
        let out = World::run(2, |comm| {
            if comm.rank() == 0 {
                comm.barrier();
                comm.send(&[9u64], 1, 3);
                comm.barrier();
                0
            } else {
                assert!(comm.try_recv::<u64>(Some(0), Some(3)).is_none());
                assert!(!comm.probe(Some(0), Some(3)));
                comm.barrier();
                comm.barrier();
                assert!(comm.probe(Some(0), Some(3)));
                comm.try_recv::<u64>(Some(0), Some(3)).unwrap().0[0]
            }
        });
        assert_eq!(out[1], 9);
    }
}

#[cfg(test)]
mod extended_api_tests {
    use super::*;

    #[test]
    fn sendrecv_ring_shift() {
        let out = World::run(4, |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            let (data, status) = comm.sendrecv(&[comm.rank() as u64], next, Some(prev), 9);
            assert_eq!(status.source, prev);
            data[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn scan_prefix_sums() {
        let out = World::run(5, |comm| {
            comm.scan(&[comm.rank() as u64 + 1], ReduceOp::Sum)[0]
        });
        assert_eq!(out, vec![1, 3, 6, 10, 15]);
    }

    #[test]
    fn scan_with_min_op() {
        let out = World::run(4, |comm| {
            let v = [10i64 - comm.rank() as i64];
            comm.scan(&v, ReduceOp::Min)[0]
        });
        // Contributions 10, 9, 8, 7 -> prefix minima.
        assert_eq!(out, vec![10, 9, 8, 7]);
    }

    #[test]
    fn reduce_scatter_distributes_reductions() {
        let out = World::run(3, |comm| {
            // Rank r contributes chunk[d] = [r*10 + d].
            let chunks: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![(comm.rank() * 10 + d) as u64])
                .collect();
            comm.reduce_scatter(&chunks, ReduceOp::Sum)[0]
        });
        // Rank d receives sum over r of (r*10 + d) = 30 + 3d.
        assert_eq!(out, vec![30, 33, 36]);
    }

    #[test]
    fn dup_preserves_ranks_but_isolates_messages() {
        let out = World::run(3, |comm| {
            let dup = comm.dup();
            assert_eq!(dup.rank(), comm.rank());
            assert_eq!(dup.size(), comm.size());
            assert_ne!(dup.id(), comm.id());
            // A message on the dup is invisible to the original.
            if comm.rank() == 0 {
                dup.send(&[7u64], 1, 1);
                comm.send(&[8u64], 1, 1);
            }
            if comm.rank() == 1 {
                let (a, _) = comm.recv::<u64>(Some(0), Some(1));
                let (b, _) = dup.recv::<u64>(Some(0), Some(1));
                assert_eq!((a[0], b[0]), (8, 7));
            }
            comm.barrier();
            1
        });
        assert_eq!(out, vec![1, 1, 1]);
    }

    #[test]
    fn scan_matches_allreduce_on_last_rank() {
        let out = World::run(4, |comm| {
            let contrib = [comm.rank() as f64 + 0.5];
            let scan = comm.scan(&contrib, ReduceOp::Sum)[0];
            let all = comm.allreduce(&contrib, ReduceOp::Sum)[0];
            (scan, all)
        });
        let (scan_last, all_last) = out[3];
        assert_eq!(scan_last, all_last);
    }

    // ------------------------------------------------------------------
    // Failure model
    // ------------------------------------------------------------------

    /// Regression: a rank panicking used to leave peers blocked in
    /// `recv` forever. The poisoned world must wake and abort them.
    #[test]
    fn panicked_peer_aborts_blocked_recv() {
        let err = World::run_result(2, |comm| {
            if comm.rank() == 1 {
                panic!("rank 1 dies before sending");
            }
            // Would deadlock without poison propagation.
            let (data, _) = comm.recv::<u64>(Some(1), Some(0));
            data[0]
        });
        assert_eq!(err, Err(CommError::RankFailed { rank: 1 }));
    }

    /// Same regression for collectives: survivors parked at a barrier
    /// must abort when a peer dies before arriving.
    #[test]
    fn panicked_peer_aborts_blocked_barrier() {
        let err = World::run_result(4, |comm| {
            if comm.rank() == 2 {
                panic!("rank 2 dies before the barrier");
            }
            comm.barrier();
            comm.rank()
        });
        assert_eq!(err, Err(CommError::RankFailed { rank: 2 }));
    }

    /// `World::run` still propagates the original panic payload (and
    /// does not hang doing so).
    #[test]
    fn run_propagates_primary_panic() {
        let result = std::panic::catch_unwind(|| {
            World::run(2, |comm| {
                if comm.rank() == 0 {
                    panic!("boom");
                }
                comm.recv::<u64>(Some(0), Some(0)).0[0]
            })
        });
        let payload = result.expect_err("world must fail");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom");
    }

    #[test]
    fn fault_free_world_reports_zero_failures() {
        let (out, stats) = World::run_elastic(3, |comm| {
            comm.barrier();
            comm.allreduce(&[1u64], ReduceOp::Sum)[0]
        })
        .expect("fault-free world");
        assert_eq!(out, vec![3, 3, 3]);
        assert_eq!(stats, ElasticWorldStats::default());
    }

    /// An elastic world replaces a failed rank: the respawned
    /// incarnation reruns the closure, observes `incarnation() > 0`,
    /// and completes the rendezvous the first incarnation abandoned.
    #[test]
    fn elastic_world_replaces_failed_rank() {
        let (out, stats) = World::run_elastic(3, |comm| {
            if comm.rank() == 1 && comm.incarnation() == 0 {
                panic!("first incarnation of rank 1 dies");
            }
            comm.barrier();
            let total = comm.allreduce(&[comm.rank() as u64], ReduceOp::Sum);
            (comm.incarnation(), total[0])
        })
        .expect("elastic world recovers");
        assert_eq!(out[0], (0, 3));
        assert_eq!(out[1], (1, 3));
        assert_eq!(out[2], (0, 3));
        assert_eq!(stats.failures_detected, 1);
        assert_eq!(stats.ranks_replaced, 1);
    }

    /// Exceeding the respawn budget fails the world instead of
    /// respawning forever.
    #[test]
    fn elastic_budget_exhaustion_fails_world() {
        let err = World::run_elastic(1, |comm: Comm| -> u64 {
            let _ = comm.incarnation();
            panic!("every incarnation dies");
        });
        assert_eq!(err, Err(CommError::RankFailed { rank: 0 }));
    }
}
