//! Nonblocking-operation requests (`MPI_Request` equivalents).

use crate::datatype::MpiType;
use crate::p2p::Tag;

/// Handle for a pending nonblocking operation, completed by
/// [`crate::Comm::wait`] or [`crate::Comm::waitall`].
///
/// Send requests are already complete when created (sends are eager and
/// buffered); receive requests perform their matching at wait time.
#[derive(Debug)]
pub enum Request<T: MpiType> {
    /// A completed nonblocking send.
    Send {
        /// Destination (communicator-local), kept for diagnostics.
        dest: usize,
        /// Message tag.
        tag: Tag,
        /// Marker for the element type.
        _marker: std::marker::PhantomData<T>,
    },
    /// A pending nonblocking receive.
    Recv {
        /// Source filter (`None` = any source).
        src: Option<usize>,
        /// Tag filter (`None` = any tag).
        tag: Option<Tag>,
    },
}

impl<T: MpiType> Request<T> {
    /// Creates a (completed) send request.
    pub fn send(dest: usize, tag: Tag) -> Self {
        Request::Send {
            dest,
            tag,
            _marker: std::marker::PhantomData,
        }
    }

    /// Creates a pending receive request.
    pub fn recv(src: Option<usize>, tag: Option<Tag>) -> Self {
        Request::Recv { src, tag }
    }

    /// Whether this is a receive request.
    pub fn is_recv(&self) -> bool {
        matches!(self, Request::Recv { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let s: Request<f64> = Request::send(3, 7);
        assert!(!s.is_recv());
        let r: Request<f64> = Request::recv(Some(1), None);
        assert!(r.is_recv());
    }
}
