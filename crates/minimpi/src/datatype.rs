//! Typed message payloads and reduction operations.
//!
//! Messages travel as raw little-endian byte buffers ([`bytes::Bytes`]);
//! the [`MpiType`] trait converts element slices to and from that wire
//! representation, and [`MpiReduce`] supplies the element-wise combiners
//! used by `MPI_Reduce`-style collectives.

use bytes::Bytes;

/// Reduction operations supported by the reduce-style collectives
/// (`MPI_SUM`, `MPI_PROD`, `MPI_MIN`, `MPI_MAX` equivalents).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ReduceOp {
    /// Element-wise sum.
    Sum,
    /// Element-wise product.
    Prod,
    /// Element-wise minimum.
    Min,
    /// Element-wise maximum.
    Max,
}

impl ReduceOp {
    /// Stable small integer used as an event payload by the PYTHIA MPI
    /// runtime (the paper records the reduction operation with the event).
    pub fn code(self) -> i64 {
        match self {
            ReduceOp::Sum => 0,
            ReduceOp::Prod => 1,
            ReduceOp::Min => 2,
            ReduceOp::Max => 3,
        }
    }
}

/// Element types that can be shipped through the runtime.
pub trait MpiType: Copy + Send + Sync + 'static {
    /// Number of bytes per element on the wire.
    const WIDTH: usize;

    /// Appends the little-endian encoding of `vals` to `out`.
    fn encode(vals: &[Self], out: &mut Vec<u8>);

    /// Decodes a whole buffer (must be a multiple of [`Self::WIDTH`]).
    fn decode(bytes: &[u8]) -> Vec<Self>;
}

/// Element types usable with [`ReduceOp`].
pub trait MpiReduce: MpiType + PartialOrd {
    /// Combines two elements under `op`.
    fn combine(op: ReduceOp, a: Self, b: Self) -> Self;
}

macro_rules! impl_mpi_numeric {
    ($($t:ty),*) => {$(
        impl MpiType for $t {
            const WIDTH: usize = std::mem::size_of::<$t>();

            fn encode(vals: &[Self], out: &mut Vec<u8>) {
                out.reserve(vals.len() * Self::WIDTH);
                for v in vals {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }

            fn decode(bytes: &[u8]) -> Vec<Self> {
                #[allow(clippy::modulo_one)] // WIDTH is 1 for u8
                {
                    assert!(
                        bytes.len() % Self::WIDTH == 0,
                    "payload length {} not a multiple of element width {}",
                        bytes.len(),
                        Self::WIDTH
                    );
                }
                bytes
                    .chunks_exact(Self::WIDTH)
                    .map(|c| <$t>::from_le_bytes(c.try_into().unwrap()))
                    .collect()
            }
        }

        impl MpiReduce for $t {
            fn combine(op: ReduceOp, a: Self, b: Self) -> Self {
                match op {
                    ReduceOp::Sum => a + b,
                    ReduceOp::Prod => a * b,
                    ReduceOp::Min => if b < a { b } else { a },
                    ReduceOp::Max => if b > a { b } else { a },
                }
            }
        }
    )*};
}

impl_mpi_numeric!(u8, i32, u32, i64, u64, f32, f64);

/// Encodes a slice into a frozen byte buffer.
pub fn to_bytes<T: MpiType>(vals: &[T]) -> Bytes {
    let mut out = Vec::new();
    T::encode(vals, &mut out);
    Bytes::from(out)
}

/// Decodes a byte buffer produced by [`to_bytes`].
pub fn from_bytes<T: MpiType>(bytes: &Bytes) -> Vec<T> {
    T::decode(bytes)
}

/// Element-wise reduction of two equal-length decoded vectors.
pub fn reduce_vecs<T: MpiReduce>(op: ReduceOp, mut acc: Vec<T>, other: &[T]) -> Vec<T> {
    assert_eq!(
        acc.len(),
        other.len(),
        "reduction buffers must have equal lengths"
    );
    for (a, b) in acc.iter_mut().zip(other) {
        *a = T::combine(op, *a, *b);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_f64() {
        let vals = [1.5f64, -2.25, 0.0, f64::MAX];
        let b = to_bytes(&vals);
        assert_eq!(from_bytes::<f64>(&b), vals);
    }

    #[test]
    fn roundtrip_i32_and_u8() {
        let vals = [-1i32, 0, 7, i32::MIN];
        assert_eq!(from_bytes::<i32>(&to_bytes(&vals)), vals);
        let bytes_vals = [0u8, 255, 13];
        assert_eq!(from_bytes::<u8>(&to_bytes(&bytes_vals)), bytes_vals);
    }

    #[test]
    fn empty_roundtrip() {
        let vals: [f32; 0] = [];
        let b = to_bytes(&vals);
        assert!(b.is_empty());
        assert!(from_bytes::<f32>(&b).is_empty());
    }

    #[test]
    #[should_panic(expected = "not a multiple")]
    fn misaligned_payload_panics() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let _ = from_bytes::<i32>(&b);
    }

    #[test]
    fn reduce_ops() {
        assert_eq!(f64::combine(ReduceOp::Sum, 2.0, 3.0), 5.0);
        assert_eq!(f64::combine(ReduceOp::Prod, 2.0, 3.0), 6.0);
        assert_eq!(i64::combine(ReduceOp::Min, -2, 3), -2);
        assert_eq!(i64::combine(ReduceOp::Max, -2, 3), 3);
    }

    #[test]
    fn reduce_vecs_elementwise() {
        let acc = vec![1u64, 10, 100];
        let out = reduce_vecs(ReduceOp::Sum, acc, &[2, 20, 200]);
        assert_eq!(out, vec![3, 30, 300]);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn reduce_vecs_length_mismatch_panics() {
        let _ = reduce_vecs(ReduceOp::Sum, vec![1u64], &[1, 2]);
    }

    #[test]
    fn op_codes_distinct() {
        let codes: std::collections::HashSet<i64> =
            [ReduceOp::Sum, ReduceOp::Prod, ReduceOp::Min, ReduceOp::Max]
                .iter()
                .map(|o| o.code())
                .collect();
        assert_eq!(codes.len(), 4);
    }
}
