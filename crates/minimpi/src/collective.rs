//! Collective rendezvous board.
//!
//! All collectives are built on one primitive: a generation-counted
//! *exchange* where every member of a communicator deposits a list of byte
//! buffers and receives a snapshot of everyone's deposits once all have
//! arrived. A second (departure) phase keeps generations from overlapping,
//! so the board can be reused for the next collective immediately.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::failure::FailureState;

/// Shared rendezvous state for one communicator.
#[derive(Debug)]
pub struct Board {
    size: usize,
    state: Mutex<State>,
    cv: Condvar,
    /// The owning world's failure state (detached when standalone).
    failure: Arc<FailureState>,
    /// Participant-local rank → world rank (empty = identity), so the
    /// failure bookkeeping always speaks world ranks.
    members: Vec<usize>,
}

#[derive(Debug)]
struct State {
    generation: u64,
    arrived: usize,
    departed: usize,
    slots: Vec<Vec<Bytes>>,
    snapshot: Option<Arc<Vec<Vec<Bytes>>>>,
}

impl Board {
    /// Creates a standalone board for `size` participants (no failure
    /// detection).
    pub fn new(size: usize) -> Self {
        Self::with_failure(size, Arc::new(FailureState::detached()))
    }

    /// Creates a board wired to a world's failure state so blocked
    /// participants abort (instead of hanging) once the world poisons.
    pub fn with_failure(size: usize, failure: Arc<FailureState>) -> Self {
        Self::with_members(size, Vec::new(), failure)
    }

    /// [`Board::with_failure`] for a sub-communicator whose local ranks
    /// map to world ranks through `members`.
    pub fn with_members(size: usize, members: Vec<usize>, failure: Arc<FailureState>) -> Self {
        assert!(size >= 1, "a communicator needs at least one member");
        Board {
            size,
            state: Mutex::new(State {
                generation: 0,
                arrived: 0,
                departed: 0,
                slots: vec![Vec::new(); size],
                snapshot: None,
            }),
            cv: Condvar::new(),
            failure,
            members,
        }
    }

    /// Number of participants.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Wakes every blocked participant so it can re-check the world's
    /// poison flag (called by the world supervisor after a rank failure).
    pub fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// One iteration of a poison-aware blocking wait: aborts on poison,
    /// waits (timed when heartbeat detection is armed), and runs the
    /// stall scan on expiry. `rank` is participant-local; the failure
    /// bookkeeping uses its world rank.
    fn wait_step(&self, rank: usize, st: &mut parking_lot::MutexGuard<'_, State>) {
        self.failure.abort_if_poisoned();
        let world = self.members.get(rank).copied().unwrap_or(rank);
        match self.failure.wait_budget() {
            None => self.cv.wait(st),
            Some(budget) => {
                self.failure.begin_wait(world);
                let timed_out = self.cv.wait_for(st, budget).timed_out();
                self.failure.end_wait(world);
                if timed_out {
                    self.failure.suspect_stall(world);
                }
            }
        }
    }

    /// Deposits `mine` as participant `rank`, blocks until every
    /// participant of this generation has deposited, and returns the
    /// snapshot of all deposits (indexed by rank).
    ///
    /// All participants must call `exchange` the same number of times in
    /// the same order — the standard MPI requirement for collectives.
    pub fn exchange(&self, rank: usize, mine: Vec<Bytes>) -> Arc<Vec<Vec<Bytes>>> {
        assert!(rank < self.size, "rank {rank} out of range");
        self.failure.abort_if_poisoned();
        let mut st = self.state.lock();
        let my_gen = st.generation;
        st.slots[rank] = mine;
        st.arrived += 1;
        if st.arrived == self.size {
            let vals: Vec<Vec<Bytes>> = st.slots.iter_mut().map(std::mem::take).collect();
            st.snapshot = Some(Arc::new(vals));
            self.cv.notify_all();
        } else {
            while !(st.generation == my_gen && st.snapshot.is_some()) {
                self.wait_step(rank, &mut st);
            }
        }
        let snap = st.snapshot.clone().expect("snapshot published");
        // Departure phase: the last participant to leave resets the board
        // for the next generation.
        st.departed += 1;
        if st.departed == self.size {
            st.snapshot = None;
            st.arrived = 0;
            st.departed = 0;
            st.generation += 1;
            self.cv.notify_all();
        } else {
            while st.generation == my_gen {
                self.wait_step(rank, &mut st);
            }
        }
        snap
    }

    /// Barrier: an exchange with empty payloads.
    pub fn barrier(&self, rank: usize) {
        let _ = self.exchange(rank, Vec::new());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn payload(rank: usize) -> Vec<Bytes> {
        vec![Bytes::from(vec![rank as u8])]
    }

    #[test]
    fn exchange_collects_all_deposits() {
        let board = Arc::new(Board::new(4));
        std::thread::scope(|s| {
            for rank in 0..4 {
                let board = Arc::clone(&board);
                s.spawn(move || {
                    let snap = board.exchange(rank, payload(rank));
                    for (i, slot) in snap.iter().enumerate() {
                        assert_eq!(slot[0][0] as usize, i);
                    }
                });
            }
        });
    }

    #[test]
    fn generations_do_not_mix() {
        let board = Arc::new(Board::new(3));
        const ROUNDS: usize = 50;
        std::thread::scope(|s| {
            for rank in 0..3 {
                let board = Arc::clone(&board);
                s.spawn(move || {
                    for round in 0..ROUNDS {
                        let mine = vec![Bytes::from(vec![rank as u8, round as u8])];
                        let snap = board.exchange(rank, mine);
                        for (i, slot) in snap.iter().enumerate() {
                            assert_eq!(slot[0][0] as usize, i);
                            assert_eq!(slot[0][1] as usize, round, "generation mixed");
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn barrier_synchronizes() {
        let board = Arc::new(Board::new(4));
        let counter = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for rank in 0..4 {
                let board = Arc::clone(&board);
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    counter.fetch_add(1, Ordering::SeqCst);
                    board.barrier(rank);
                    // After the barrier, everyone must have incremented.
                    assert_eq!(counter.load(Ordering::SeqCst), 4);
                });
            }
        });
    }

    #[test]
    fn single_member_board_never_blocks() {
        let board = Board::new(1);
        for _ in 0..10 {
            let snap = board.exchange(0, payload(0));
            assert_eq!(snap.len(), 1);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rank_panics() {
        let board = Board::new(2);
        board.barrier(5);
    }
}
