//! The backend-independent communicator abstraction.
//!
//! A backend supplies a small set of *primitives* — identity, mailbox
//! deposit/take, the collective rendezvous exchange, split registration,
//! and a membership/failure surface — and the trait provides the whole
//! MPI-like call surface (send/recv, nonblocking requests, every
//! collective, `dup`/`split`) generically on top. The in-process threads
//! backend ([`crate::Comm`]) and the multi-process socket backend
//! ([`crate::socket::SocketComm`]) share all op semantics this way: one
//! implementation of `allreduce`, two transports under it.

use std::sync::Arc;

use bytes::Bytes;

use crate::datatype::{from_bytes, reduce_vecs, to_bytes, MpiReduce, MpiType, ReduceOp};
use crate::failure::RankFault;
use crate::p2p::{Message, NetworkStats, Status, Tag};
use crate::request::Request;

/// An MPI-like communicator: p2p messaging, collectives, communicator
/// management, and a rank-membership/failure surface.
///
/// Blocking operations on a *poisoned* world (a rank failed, world not
/// elastic) panic with a [`crate::failure::PoisonedWorld`] payload rather
/// than waiting forever; the world supervisor converts that into
/// [`crate::failure::CommError::RankFailed`].
pub trait Communicator: Sized {
    // ------------------------------------------------------------------
    // Identity
    // ------------------------------------------------------------------

    /// This rank's index within the communicator.
    fn rank(&self) -> usize;

    /// Number of ranks in the communicator.
    fn size(&self) -> usize;

    /// Stable identifier of the communicator (0 = world).
    fn id(&self) -> u64;

    /// World rank of a communicator-local rank.
    fn world_rank(&self, local: usize) -> usize;

    /// How many times this rank has been replaced after a failure
    /// (0 = first spawn).
    fn incarnation(&self) -> u64 {
        0
    }

    // ------------------------------------------------------------------
    // Transport primitives (backend-supplied)
    // ------------------------------------------------------------------

    /// Routes pre-built messages to communicator-local rank `dest` as one
    /// modeled wire transfer.
    fn deposit(&self, dest: usize, msgs: Vec<Message>);

    /// Blocks until a message matching `(src, tag)` on this communicator
    /// arrives at this rank, and removes it.
    fn take(&self, src: Option<usize>, tag: Option<Tag>) -> Message;

    /// Nonblocking [`Communicator::take`].
    fn try_take(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Message>;

    /// Whether a matching message is queued (`MPI_Iprobe`).
    fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> bool;

    /// The collective rendezvous: deposits `mine`, blocks until every
    /// rank of the communicator has deposited, returns everyone's
    /// deposits indexed by rank.
    fn exchange(&self, mine: Vec<Bytes>) -> Arc<Vec<Vec<Bytes>>>;

    /// Next split sequence number on this handle (each rank counts its
    /// own split calls; equal sequences rendezvous).
    fn next_split_seq(&self) -> u64;

    /// Registers (or joins) the sub-communicator `(parent, seq, color)`
    /// whose members (world ranks, in new-rank order) are `members`, and
    /// returns a handle positioned at `my_rank` within it.
    fn register_split(&self, seq: u64, color: i64, members: Vec<usize>, my_rank: usize) -> Self;

    /// Network counters of this rank's incoming mailbox.
    fn network_stats(&self) -> NetworkStats;

    // ------------------------------------------------------------------
    // Membership / failure surface (backend-supplied)
    // ------------------------------------------------------------------

    /// The rank whose failure poisoned the world, if any.
    fn poisoned(&self) -> Option<usize>;

    /// Rank failures detected in this world so far.
    fn failures_detected(&self) -> u64;

    /// Records liveness of this rank for heartbeat-based hang detection.
    /// Hosts with long communication-free stretches (e.g. a recording
    /// runtime processing local events) should call this periodically.
    fn heartbeat(&self) {}

    /// Executes an injected rank fault and never returns: `Panic` unwinds,
    /// `Hang` parks silently until detected, `Disconnect` marks this rank
    /// failed and vanishes.
    fn fail_self(&self, fault: RankFault) -> !;

    // ------------------------------------------------------------------
    // Point-to-point (provided)
    // ------------------------------------------------------------------

    /// Blocking standard send (eager: buffers and returns immediately).
    fn send<T: MpiType>(&self, buf: &[T], dest: usize, tag: Tag) {
        self.deposit(
            dest,
            vec![Message {
                src: self.rank(),
                tag,
                comm_id: self.id(),
                data: to_bytes(buf),
            }],
        );
    }

    /// Blocking receive matching `(src, tag)` (`None` = wildcard).
    fn recv<T: MpiType>(&self, src: Option<usize>, tag: Option<Tag>) -> (Vec<T>, Status) {
        let msg = self.take(src, tag);
        let status = Status {
            source: msg.src,
            tag: msg.tag,
            len: msg.data.len(),
        };
        (from_bytes(&msg.data), status)
    }

    /// Nonblocking receive if a matching message is already queued.
    fn try_recv<T: MpiType>(
        &self,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<(Vec<T>, Status)> {
        let msg = self.try_take(src, tag)?;
        let status = Status {
            source: msg.src,
            tag: msg.tag,
            len: msg.data.len(),
        };
        Some((from_bytes(&msg.data), status))
    }

    /// Sends several messages to `dest` as one modeled wire transfer.
    fn send_batch<T: MpiType>(&self, bufs: &[Vec<T>], dest: usize, tag: Tag) {
        let msgs: Vec<Message> = bufs
            .iter()
            .map(|b| Message {
                src: self.rank(),
                tag,
                comm_id: self.id(),
                data: to_bytes(b),
            })
            .collect();
        self.deposit(dest, msgs);
    }

    /// [`Communicator::send_batch`] for already-encoded payloads.
    fn send_batch_raw(&self, bufs: Vec<Bytes>, dest: usize, tag: Tag) {
        let msgs: Vec<Message> = bufs
            .into_iter()
            .map(|data| Message {
                src: self.rank(),
                tag,
                comm_id: self.id(),
                data,
            })
            .collect();
        self.deposit(dest, msgs);
    }

    /// Nonblocking send; completes immediately (eager buffering).
    fn isend<T: MpiType>(&self, buf: &[T], dest: usize, tag: Tag) -> Request<T> {
        self.send(buf, dest, tag);
        Request::send(dest, tag)
    }

    /// Nonblocking receive; the matching happens at wait time.
    fn irecv<T: MpiType>(&self, src: Option<usize>, tag: Option<Tag>) -> Request<T> {
        Request::recv(src, tag)
    }

    /// Completes a request. Send requests yield `None`; receive requests
    /// block until their message arrives and yield the payload.
    fn wait<T: MpiType>(&self, request: Request<T>) -> Option<(Vec<T>, Status)> {
        match request {
            Request::Send { .. } => None,
            Request::Recv { src, tag } => Some(self.recv(src, tag)),
        }
    }

    /// Completes a batch of requests in order (`MPI_Waitall`).
    fn waitall<T: MpiType>(&self, requests: Vec<Request<T>>) -> Vec<Option<(Vec<T>, Status)>> {
        requests.into_iter().map(|r| self.wait(r)).collect()
    }

    // ------------------------------------------------------------------
    // Collectives (provided)
    // ------------------------------------------------------------------

    /// Synchronizes all ranks of the communicator (`MPI_Barrier`).
    fn barrier(&self) {
        let _ = self.exchange(Vec::new());
    }

    /// Broadcast from `root` (`MPI_Bcast`).
    fn bcast<T: MpiType>(&self, data: &[T], root: usize) -> Vec<T> {
        let mine = if self.rank() == root {
            vec![to_bytes(data)]
        } else {
            Vec::new()
        };
        let snap = self.exchange(mine);
        from_bytes(&snap[root][0])
    }

    /// Reduction to `root` (`MPI_Reduce`): returns `Some` on the root.
    fn reduce<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp, root: usize) -> Option<Vec<T>> {
        let snap = self.exchange(vec![to_bytes(contrib)]);
        if self.rank() != root {
            return None;
        }
        Some(fold(&snap, op))
    }

    /// Reduction to all ranks (`MPI_Allreduce`).
    fn allreduce<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp) -> Vec<T> {
        let snap = self.exchange(vec![to_bytes(contrib)]);
        fold(&snap, op)
    }

    /// Personalized all-to-all exchange (`MPI_Alltoall(v)`).
    fn alltoall<T: MpiType>(&self, sends: &[Vec<T>]) -> Vec<Vec<T>> {
        assert_eq!(
            sends.len(),
            self.size(),
            "alltoall needs one send buffer per rank"
        );
        let mine: Vec<Bytes> = sends.iter().map(|s| to_bytes(s)).collect();
        let snap = self.exchange(mine);
        (0..self.size())
            .map(|src| from_bytes(&snap[src][self.rank()]))
            .collect()
    }

    /// Gather to `root` (`MPI_Gather`): `Some(per-rank data)` on the root.
    fn gather<T: MpiType>(&self, contrib: &[T], root: usize) -> Option<Vec<Vec<T>>> {
        let snap = self.exchange(vec![to_bytes(contrib)]);
        if self.rank() != root {
            return None;
        }
        Some(snap.iter().map(|slot| from_bytes(&slot[0])).collect())
    }

    /// Gather to all ranks (`MPI_Allgather`).
    fn allgather<T: MpiType>(&self, contrib: &[T]) -> Vec<Vec<T>> {
        let snap = self.exchange(vec![to_bytes(contrib)]);
        snap.iter().map(|slot| from_bytes(&slot[0])).collect()
    }

    /// Scatter from `root` (`MPI_Scatter`).
    fn scatter<T: MpiType>(&self, chunks: Option<&[Vec<T>]>, root: usize) -> Vec<T> {
        let mine = if self.rank() == root {
            let chunks = chunks.expect("root must provide chunks");
            assert_eq!(chunks.len(), self.size(), "one chunk per rank");
            chunks.iter().map(|c| to_bytes(c)).collect()
        } else {
            Vec::new()
        };
        let snap = self.exchange(mine);
        from_bytes(&snap[root][self.rank()])
    }

    /// Combined send+receive (`MPI_Sendrecv`). Deadlock-free because
    /// sends are eager.
    fn sendrecv<T: MpiType>(
        &self,
        buf: &[T],
        dest: usize,
        src: Option<usize>,
        tag: Tag,
    ) -> (Vec<T>, Status) {
        self.send(buf, dest, tag);
        self.recv(src, Some(tag))
    }

    /// Inclusive prefix reduction (`MPI_Scan`).
    fn scan<T: MpiReduce>(&self, contrib: &[T], op: ReduceOp) -> Vec<T> {
        let snap = self.exchange(vec![to_bytes(contrib)]);
        let mut acc: Option<Vec<T>> = None;
        for slot in snap.iter().take(self.rank() + 1) {
            let vals: Vec<T> = from_bytes(&slot[0]);
            acc = Some(match acc {
                None => vals,
                Some(a) => reduce_vecs(op, a, &vals),
            });
        }
        acc.expect("at least own contribution")
    }

    /// Reduce-scatter (`MPI_Reduce_scatter_block`-style).
    fn reduce_scatter<T: MpiReduce>(&self, chunks: &[Vec<T>], op: ReduceOp) -> Vec<T> {
        assert_eq!(chunks.len(), self.size(), "one chunk per rank");
        let mine: Vec<Bytes> = chunks.iter().map(|c| to_bytes(c)).collect();
        let snap = self.exchange(mine);
        let mut acc: Option<Vec<T>> = None;
        for slot in snap.iter() {
            let vals: Vec<T> = from_bytes(&slot[self.rank()]);
            acc = Some(match acc {
                None => vals,
                Some(a) => reduce_vecs(op, a, &vals),
            });
        }
        acc.expect("non-empty communicator")
    }

    // ------------------------------------------------------------------
    // Communicator management (provided)
    // ------------------------------------------------------------------

    /// Duplicates the communicator (`MPI_Comm_dup`): same members and
    /// ranks, separate message-matching space.
    fn dup(&self) -> Self {
        self.split(0, self.rank() as i64)
    }

    /// Splits the communicator by `color` (`MPI_Comm_split`): ranks with
    /// the same color form a new communicator, ordered by `(key, rank)`.
    /// Every member must call `split` the same number of times in the
    /// same order.
    fn split(&self, color: i64, key: i64) -> Self {
        let seq = self.next_split_seq();
        // Share (color, key) so each rank can compute the same membership.
        let all: Vec<Vec<i64>> = self.allgather(&[color, key]);
        let mut members: Vec<(i64, usize)> = all
            .iter()
            .enumerate()
            .filter(|(_, ck)| ck[0] == color)
            .map(|(r, ck)| (ck[1], r))
            .collect();
        members.sort();
        let world_members: Vec<usize> = members.iter().map(|&(_, r)| self.world_rank(r)).collect();
        let my_new_rank = members
            .iter()
            .position(|&(_, r)| r == self.rank())
            .expect("caller must be a member of its own color group");
        self.register_split(seq, color, world_members, my_new_rank)
    }
}

/// Element-wise reduction over every rank's first slot.
fn fold<T: MpiReduce>(snap: &[Vec<Bytes>], op: ReduceOp) -> Vec<T> {
    let mut acc: Option<Vec<T>> = None;
    for slot in snap {
        let vals: Vec<T> = from_bytes(&slot[0]);
        acc = Some(match acc {
            None => vals,
            Some(a) => reduce_vecs(op, a, &vals),
        });
    }
    acc.expect("non-empty communicator")
}
