//! Rank-failure bookkeeping shared by every backend.
//!
//! A world owns one [`FailureState`]. Blocking primitives consult it on
//! every wakeup: once the world is *poisoned* (some rank failed and the
//! world is not elastic), a blocked survivor aborts its call by panicking
//! with a [`PoisonedWorld`] payload instead of waiting forever. Elastic
//! worlds never poison — survivors keep waiting for a replacement rank to
//! rejoin and satisfy the rendezvous.
//!
//! Detection has two paths:
//!
//! * **Supervised** — the world supervisor (thread join in the threads
//!   backend, connection EOF in the socket hub) observes the death
//!   directly and calls [`FailureState::mark_failed`].
//! * **Heartbeat** — when `PYTHIA_RANK_TIMEOUT_MS` is set, blocking waits
//!   become timed polls; on each timeout the waiter scans peer heartbeats
//!   and declares any rank dead that is neither parked in a blocking call
//!   nor has shown activity within the timeout. This is what catches a
//!   *hung* rank, which never panics and never closes a connection.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

/// Environment variable arming heartbeat-based hang detection: blocking
/// waits poll at this period (milliseconds) and declare a silent,
/// non-waiting peer dead after it. Unset (the default) means blocking
/// waits are untimed and only supervised detection applies — no false
/// positives from compute-heavy ranks that go quiet legitimately.
pub const RANK_TIMEOUT_ENV: &str = "PYTHIA_RANK_TIMEOUT_MS";

/// The kind of rank fault being injected or reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankFault {
    /// The rank panics (models an application crash with unwinding).
    Panic,
    /// The rank stops making progress without dying (models a livelock or
    /// a peer stuck in a non-communication syscall).
    Hang,
    /// The rank vanishes without unwinding (models a severed connection
    /// or an external `kill -9`).
    Disconnect,
}

impl fmt::Display for RankFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RankFault::Panic => write!(f, "panic"),
            RankFault::Hang => write!(f, "hang"),
            RankFault::Disconnect => write!(f, "disconnect"),
        }
    }
}

/// Panic payload used by blocking primitives to abort out of a poisoned
/// world: carries the rank whose failure poisoned it. The world
/// supervisor downcasts for this type to tell induced aborts apart from
/// the original failure.
#[derive(Debug, Clone, Copy)]
pub struct PoisonedWorld {
    /// The rank whose failure poisoned the world.
    pub rank: usize,
}

impl fmt::Display for PoisonedWorld {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "world poisoned by failure of rank {}", self.rank)
    }
}

/// Error returned by the fault-aware world entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommError {
    /// A rank failed and the world aborted instead of hanging.
    RankFailed {
        /// The first rank observed to fail.
        rank: usize,
    },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::RankFailed { rank } => write!(f, "rank {rank} failed"),
        }
    }
}

impl std::error::Error for CommError {}

/// Failure bookkeeping for one world. Shared (via `Arc`) by every
/// mailbox, rendezvous board, and communicator handle of the world.
#[derive(Debug)]
pub struct FailureState {
    /// World size (0 for a detached state that never detects anything).
    size: usize,
    /// Heartbeat poll period; `None` disables timed waits entirely.
    timeout: Option<Duration>,
    start: Instant,
    /// Per-rank last-activity stamp, ms since `start`.
    beats: Vec<AtomicU64>,
    /// Per-rank "currently parked in a blocking call" flag — a waiting
    /// rank is quiet but alive, so the stall scan must skip it.
    waiting: Vec<AtomicBool>,
    /// Rank that poisoned the world (-1 = not poisoned).
    poisoned_by: AtomicI64,
    /// Ranks declared failed (supervised or heartbeat-detected).
    failed: Mutex<BTreeSet<usize>>,
    /// Newly-declared failures (monotone; survives elastic replacement).
    detected: AtomicU64,
    /// Elastic worlds mark failures but never poison: survivors keep
    /// blocking until a replacement rank satisfies the rendezvous.
    elastic: AtomicBool,
    /// Parking lot for ranks executing an injected hang.
    park: Mutex<()>,
    park_cv: Condvar,
}

impl FailureState {
    /// State for a world of `size` ranks; heartbeat detection is armed
    /// from [`RANK_TIMEOUT_ENV`].
    pub fn new(size: usize) -> Self {
        let timeout = std::env::var(RANK_TIMEOUT_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .filter(|&ms| ms > 0)
            .map(Duration::from_millis);
        Self::with_timeout(size, timeout)
    }

    /// State with an explicit poll period (tests).
    pub fn with_timeout(size: usize, timeout: Option<Duration>) -> Self {
        FailureState {
            size,
            timeout,
            start: Instant::now(),
            beats: (0..size).map(|_| AtomicU64::new(0)).collect(),
            waiting: (0..size).map(|_| AtomicBool::new(false)).collect(),
            poisoned_by: AtomicI64::new(-1),
            failed: Mutex::new(BTreeSet::new()),
            detected: AtomicU64::new(0),
            elastic: AtomicBool::new(false),
            park: Mutex::new(()),
            park_cv: Condvar::new(),
        }
    }

    /// A state that never detects or poisons — the default for standalone
    /// mailboxes and boards constructed outside a world.
    pub fn detached() -> Self {
        Self::with_timeout(0, None)
    }

    /// Marks the world elastic: failures are recorded but the world is
    /// never poisoned, so survivors wait for a replacement instead of
    /// aborting.
    pub fn set_elastic(&self, elastic: bool) {
        self.elastic.store(elastic, Ordering::SeqCst);
    }

    /// Whether the world is elastic.
    pub fn is_elastic(&self) -> bool {
        self.elastic.load(Ordering::SeqCst)
    }

    /// The poll period for blocking waits (`None` = wait untimed).
    pub fn wait_budget(&self) -> Option<Duration> {
        self.timeout
    }

    /// Records activity of `rank`. No-op when heartbeat detection is
    /// disarmed (keeps the hot path to a single branch) or `rank` is out
    /// of range (detached primitives).
    pub fn beat(&self, rank: usize) {
        if self.timeout.is_none() {
            return;
        }
        if let Some(b) = self.beats.get(rank) {
            b.store(self.start.elapsed().as_millis() as u64, Ordering::Relaxed);
        }
    }

    /// Flags `rank` as parked in a blocking call (alive but quiet).
    pub fn begin_wait(&self, rank: usize) {
        if let Some(w) = self.waiting.get(rank) {
            w.store(true, Ordering::SeqCst);
        }
    }

    /// Clears the parked flag and restamps the heartbeat.
    pub fn end_wait(&self, rank: usize) {
        if let Some(w) = self.waiting.get(rank) {
            w.store(false, Ordering::SeqCst);
        }
        self.beat(rank);
    }

    /// The rank whose failure poisoned the world, if any.
    pub fn poisoned(&self) -> Option<usize> {
        let v = self.poisoned_by.load(Ordering::SeqCst);
        (v >= 0).then_some(v as usize)
    }

    /// Poisons the world on behalf of failed rank `by` and wakes parked
    /// hang victims. Callers owning blocking primitives must additionally
    /// wake those (the world supervisor does; heartbeat waiters discover
    /// the flag on their next poll).
    pub fn poison(&self, by: usize) {
        let _ =
            self.poisoned_by
                .compare_exchange(-1, by as i64, Ordering::SeqCst, Ordering::SeqCst);
        self.park_cv.notify_all();
    }

    /// Declares `rank` failed; returns true (and bumps the detection
    /// counter) when this is news.
    pub fn mark_failed(&self, rank: usize) -> bool {
        let newly = self.failed.lock().insert(rank);
        if newly {
            self.detected.fetch_add(1, Ordering::SeqCst);
        }
        newly
    }

    /// Forgets a failure record (an elastic replacement rejoined).
    pub fn clear_failed(&self, rank: usize) {
        self.failed.lock().remove(&rank);
    }

    /// Whether `rank` is currently marked failed.
    pub fn is_failed(&self, rank: usize) -> bool {
        self.failed.lock().contains(&rank)
    }

    /// The first rank marked failed, if any.
    pub fn first_failed(&self) -> Option<usize> {
        self.failed.lock().iter().next().copied()
    }

    /// Rank failures detected so far (monotone).
    pub fn detected(&self) -> u64 {
        self.detected.load(Ordering::SeqCst)
    }

    /// Heartbeat stall scan, run by a waiter whose timed wait expired:
    /// declares dead any peer that is neither parked in a blocking call
    /// nor has beaten within the poll period, and poisons the world
    /// (unless elastic). Returns the suspect, if one was found.
    pub fn suspect_stall(&self, me: usize) -> Option<usize> {
        let timeout = self.timeout?;
        let now = self.start.elapsed().as_millis() as u64;
        let budget = timeout.as_millis() as u64;
        for rank in 0..self.size {
            if rank == me || self.waiting[rank].load(Ordering::SeqCst) || self.is_failed(rank) {
                continue;
            }
            let last = self.beats[rank].load(Ordering::Relaxed);
            if now.saturating_sub(last) > budget {
                self.mark_failed(rank);
                if !self.is_elastic() {
                    self.poison(rank);
                }
                return Some(rank);
            }
        }
        None
    }

    /// Parks the calling rank as an injected hang: it stops beating and
    /// never returns normally. Once a peer's stall scan poisons the world
    /// the parked rank panics with [`PoisonedWorld`], letting its thread
    /// unwind (models the supervisor of a real deployment killing the
    /// hung process).
    pub fn park_hung(&self, rank: usize) -> ! {
        let mut guard = self.park.lock();
        loop {
            if let Some(by) = self.poisoned() {
                drop(guard);
                std::panic::panic_any(PoisonedWorld { rank: by });
            }
            if self.is_failed(rank) && self.is_elastic() {
                // An elastic supervisor replaced us; unwind quietly.
                drop(guard);
                std::panic::panic_any(PoisonedWorld { rank });
            }
            self.park_cv.wait_for(&mut guard, Duration::from_millis(50));
        }
    }

    /// Panics with [`PoisonedWorld`] when the world is poisoned — the
    /// fast-path check blocking primitives run before and after waiting.
    pub fn abort_if_poisoned(&self) {
        if let Some(by) = self.poisoned() {
            std::panic::panic_any(PoisonedWorld { rank: by });
        }
    }
}

impl Default for FailureState {
    fn default() -> Self {
        Self::detached()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn detached_state_is_inert() {
        let fs = FailureState::detached();
        fs.beat(3);
        fs.begin_wait(7);
        fs.end_wait(7);
        assert_eq!(fs.poisoned(), None);
        assert_eq!(fs.suspect_stall(0), None);
        assert_eq!(fs.detected(), 0);
    }

    #[test]
    fn mark_failed_counts_once() {
        let fs = FailureState::with_timeout(4, None);
        assert!(fs.mark_failed(2));
        assert!(!fs.mark_failed(2));
        assert_eq!(fs.detected(), 1);
        assert!(fs.is_failed(2));
        assert_eq!(fs.first_failed(), Some(2));
        fs.clear_failed(2);
        assert!(!fs.is_failed(2));
        // Detection stays monotone across replacement.
        assert_eq!(fs.detected(), 1);
    }

    #[test]
    fn poison_is_sticky_and_first_wins() {
        let fs = FailureState::with_timeout(2, None);
        fs.poison(1);
        fs.poison(0);
        assert_eq!(fs.poisoned(), Some(1));
    }

    #[test]
    fn stall_scan_skips_waiting_and_self() {
        let fs = FailureState::with_timeout(3, Some(Duration::from_millis(5)));
        // All beats are at t=0; after the budget passes, rank 1 (quiet,
        // not waiting) is the suspect while rank 2 (parked) is spared.
        fs.begin_wait(2);
        std::thread::sleep(Duration::from_millis(20));
        let suspect = fs.suspect_stall(0);
        assert_eq!(suspect, Some(1));
        assert_eq!(fs.poisoned(), Some(1));
        assert_eq!(fs.detected(), 1);
    }

    #[test]
    fn elastic_stall_marks_without_poisoning() {
        let fs = FailureState::with_timeout(2, Some(Duration::from_millis(5)));
        fs.set_elastic(true);
        std::thread::sleep(Duration::from_millis(20));
        assert_eq!(fs.suspect_stall(0), Some(1));
        assert_eq!(fs.poisoned(), None);
        assert!(fs.is_failed(1));
    }

    #[test]
    fn beats_keep_a_rank_alive() {
        let fs = FailureState::with_timeout(2, Some(Duration::from_millis(40)));
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(10));
            fs.beat(1);
        }
        assert_eq!(fs.suspect_stall(0), None);
    }

    #[test]
    fn parked_hang_unwinds_on_poison() {
        let fs = Arc::new(FailureState::with_timeout(
            2,
            Some(Duration::from_millis(5)),
        ));
        let fs2 = Arc::clone(&fs);
        let h = std::thread::spawn(move || {
            let result =
                std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| fs2.park_hung(1)));
            let payload = result.expect_err("park must not return");
            payload
                .downcast_ref::<PoisonedWorld>()
                .expect("poisoned-world payload")
                .rank
        });
        std::thread::sleep(Duration::from_millis(20));
        fs.mark_failed(1);
        fs.poison(1);
        assert_eq!(h.join().unwrap(), 1);
    }

    #[test]
    fn error_and_payload_format() {
        let e = CommError::RankFailed { rank: 3 };
        assert!(e.to_string().contains("rank 3"));
        let p = PoisonedWorld { rank: 2 };
        assert!(p.to_string().contains("rank 2"));
        assert_eq!(RankFault::Hang.to_string(), "hang");
    }
}
