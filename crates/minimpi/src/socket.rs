//! Multi-process backend: ranks as processes around a Unix-socket hub.
//!
//! The hub owns the same [`Mailbox`] and [`Board`] primitives the threads
//! backend uses — they just live in the hub process, so a rank dying does
//! not take the world's rendezvous state with it. Each rank connects once
//! ([`SocketComm::connect`]) and speaks a tiny length-prefixed frame
//! protocol; every blocking operation is serviced by that connection's
//! dedicated hub thread, which parks in `take_matching`/`exchange` on the
//! rank's behalf.
//!
//! Failure detection is by connection EOF: a `kill -9`'d or disconnected
//! rank drops its socket, the hub marks the rank failed and — unless the
//! hub is *elastic* — poisons the world so every parked operation aborts
//! (the client sees a `POISONED` reply and panics with
//! [`PoisonedWorld`]). An elastic hub instead keeps the rank's mailbox
//! and board slots intact and waits for a replacement to reconnect with a
//! bumped incarnation number; survivors stay parked until the
//! replacement's replayed run catches up with the rendezvous.

use std::collections::{HashMap, HashSet};
use std::io::{self, Read, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};

use crate::collective::Board;
use crate::communicator::Communicator;
use crate::failure::{FailureState, PoisonedWorld, RankFault};
use crate::p2p::{Mailbox, Message, NetworkStats, Tag};

// Client → hub opcodes.
const OP_HELLO: u8 = 1;
const OP_SEND: u8 = 2;
const OP_RECV: u8 = 3;
const OP_TRYRECV: u8 = 4;
const OP_PROBE: u8 = 5;
const OP_EXCHANGE: u8 = 6;
const OP_SPLIT: u8 = 7;
const OP_STATS: u8 = 8;
const OP_STATUS: u8 = 9;
const OP_BYE: u8 = 10;
const OP_FAILSELF: u8 = 11;
const OP_BEAT: u8 = 12;

// Hub → client opcodes.
const RE_WELCOME: u8 = 0x81;
const RE_MSG: u8 = 0x82;
const RE_NOMSG: u8 = 0x83;
const RE_BOOL: u8 = 0x84;
const RE_SNAP: u8 = 0x85;
const RE_COMMID: u8 = 0x86;
const RE_STATS: u8 = 0x87;
const RE_STATUS: u8 = 0x88;
const RE_POISONED: u8 = 0x8F;

/// Sentinel encoding `None` for optional source ranks on the wire.
const NO_SRC: u64 = u64::MAX;
/// Sentinel encoding `None` for optional tags on the wire.
const NO_TAG: i64 = i64::MIN;

// ----------------------------------------------------------------------
// Framing
// ----------------------------------------------------------------------

fn write_frame(stream: &mut UnixStream, body: &[u8]) -> io::Result<()> {
    let len = u32::try_from(body.len()).expect("frame too large");
    stream.write_all(&len.to_le_bytes())?;
    stream.write_all(body)?;
    stream.flush()
}

fn read_frame(stream: &mut UnixStream) -> io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    stream.read_exact(&mut len)?;
    let len = u32::from_le_bytes(len) as usize;
    // 64 MiB guards against a corrupt length prefix, not real payloads.
    if len > 64 << 20 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("hostile frame length {len}"),
        ));
    }
    let mut body = vec![0u8; len];
    stream.read_exact(&mut body)?;
    Ok(body)
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i32(buf: &mut Vec<u8>, v: i32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(buf: &mut Vec<u8>, data: &[u8]) {
    put_u32(buf, data.len() as u32);
    buf.extend_from_slice(data);
}

/// Cursor over a received frame body.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn chunk(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let s = &self.buf[self.pos..end];
                self.pos = end;
                Ok(s)
            }
            None => Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "truncated frame",
            )),
        }
    }

    fn u32(&mut self) -> io::Result<u32> {
        Ok(u32::from_le_bytes(self.chunk(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> io::Result<u64> {
        Ok(u64::from_le_bytes(self.chunk(8)?.try_into().unwrap()))
    }

    fn i32(&mut self) -> io::Result<i32> {
        Ok(i32::from_le_bytes(self.chunk(4)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> io::Result<i64> {
        Ok(i64::from_le_bytes(self.chunk(8)?.try_into().unwrap()))
    }

    fn bytes(&mut self) -> io::Result<Bytes> {
        let len = self.u32()? as usize;
        Ok(Bytes::copy_from_slice(self.chunk(len)?))
    }
}

fn encode_src(src: Option<usize>) -> u64 {
    src.map_or(NO_SRC, |s| s as u64)
}

fn decode_src(v: u64) -> Option<usize> {
    (v != NO_SRC).then_some(v as usize)
}

fn encode_tag(tag: Option<Tag>) -> i64 {
    tag.map_or(NO_TAG, i64::from)
}

fn decode_tag(v: i64) -> Option<Tag> {
    (v != NO_TAG).then_some(v as Tag)
}

// ----------------------------------------------------------------------
// Hub
// ----------------------------------------------------------------------

/// Counters reported by [`Hub::serve`] once the world completed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HubStats {
    /// Rank failures detected (connection EOF or heartbeat staleness).
    pub failures_detected: u64,
    /// Replacement connections admitted for a previously-failed rank.
    pub ranks_replaced: u64,
}

type CommKey = (u64, u64, i64);

#[derive(Debug)]
struct HubComm {
    board: Board,
    /// Communicator-local rank → world rank.
    members: Vec<usize>,
}

#[derive(Debug)]
struct HubState {
    size: usize,
    mailboxes: Vec<Mailbox>,
    failure: Arc<FailureState>,
    next_id: Mutex<u64>,
    splits: Mutex<HashMap<CommKey, u64>>,
    by_id: Mutex<HashMap<u64, Arc<HubComm>>>,
    /// Ranks that completed cleanly (sent BYE).
    done: Mutex<HashSet<usize>>,
    done_cv: Condvar,
    replaced: AtomicU64,
    elastic: bool,
}

impl HubState {
    fn new(size: usize, elastic: bool) -> Arc<Self> {
        let failure = Arc::new(FailureState::new(size));
        failure.set_elastic(elastic);
        let world = Arc::new(HubComm {
            board: Board::with_failure(size, Arc::clone(&failure)),
            members: (0..size).collect(),
        });
        let mut by_id = HashMap::new();
        by_id.insert(0u64, world);
        Arc::new(HubState {
            size,
            mailboxes: (0..size)
                .map(|r| Mailbox::for_rank(r, Arc::clone(&failure)))
                .collect(),
            failure,
            next_id: Mutex::new(1),
            splits: Mutex::new(HashMap::new()),
            by_id: Mutex::new(by_id),
            done: Mutex::new(HashSet::new()),
            done_cv: Condvar::new(),
            replaced: AtomicU64::new(0),
            elastic,
        })
    }

    fn comm(&self, id: u64) -> Option<Arc<HubComm>> {
        self.by_id.lock().get(&id).cloned()
    }

    /// Wakes every blocked primitive so parked handler threads re-check
    /// the poison flag.
    fn wake_world(&self) {
        for mb in &self.mailboxes {
            mb.wake_all();
        }
        for c in self.by_id.lock().values() {
            c.board.wake_all();
        }
    }

    fn fail_rank(&self, rank: usize) {
        self.failure.mark_failed(rank);
        if !self.elastic {
            self.failure.poison(rank);
            self.wake_world();
        }
        // Even a poisoned world must terminate serve(): count the rank as
        // accounted for so the hub does not wait for a BYE that will
        // never come.
        self.done_cv.notify_all();
    }
}

/// The rendezvous hub of a multi-process world.
pub struct Hub;

impl Hub {
    /// Binds `path` and serves a world of `size` ranks until every rank
    /// said goodbye (elastic worlds: until every rank *slot* completed,
    /// possibly via a replacement incarnation) or the world poisoned.
    /// Returns the failure counters.
    pub fn serve(path: &Path, size: usize, elastic: bool) -> io::Result<HubStats> {
        assert!(size >= 1, "world size must be at least 1");
        let _ = std::fs::remove_file(path);
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let state = HubState::new(size, elastic);
        let stop = Arc::new(AtomicBool::new(false));

        std::thread::scope(|s| {
            // Heartbeat monitor: only armed when a rank timeout is set.
            if state.failure.wait_budget().is_some() {
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                s.spawn(move || {
                    let budget = state.failure.wait_budget().expect("armed");
                    while !stop.load(Ordering::SeqCst) {
                        std::thread::sleep(budget / 2);
                        if let Some(rank) = state.failure.suspect_stall(usize::MAX) {
                            let _ = rank;
                            state.wake_world();
                            state.done_cv.notify_all();
                        }
                    }
                });
            }
            // Accept loop: polls so it can stop once the world is done.
            {
                let state = Arc::clone(&state);
                let stop = Arc::clone(&stop);
                s.spawn(move || loop {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match listener.accept() {
                        Ok((conn, _)) => {
                            let state = Arc::clone(&state);
                            s.spawn(move || {
                                let _ = serve_connection(conn, &state);
                            });
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(10));
                        }
                        Err(_) => break,
                    }
                });
            }
            // Wait for completion: all ranks done, or world poisoned with
            // no survivors able to finish.
            {
                let mut done = state.done.lock();
                loop {
                    if done.len() == state.size {
                        break;
                    }
                    if state.failure.poisoned().is_some() {
                        // Poisoned: remaining ranks will abort, not BYE.
                        break;
                    }
                    state.done_cv.wait_for(&mut done, Duration::from_millis(50));
                }
            }
            stop.store(true, Ordering::SeqCst);
            state.wake_world();
        });
        let _ = std::fs::remove_file(path);
        Ok(HubStats {
            failures_detected: state.failure.detected(),
            ranks_replaced: state.replaced.load(Ordering::SeqCst),
        })
    }
}

/// Services one rank connection until BYE, EOF, or fatal error.
fn serve_connection(mut conn: UnixStream, state: &HubState) -> io::Result<()> {
    let hello = read_frame(&mut conn)?;
    let mut r = Reader::new(&hello);
    if r.chunk(1)?[0] != OP_HELLO {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "expected HELLO"));
    }
    let rank = r.u32()? as usize;
    let size = r.u32()? as usize;
    let incarnation = r.u64()?;
    if rank >= state.size || size != state.size {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("bad HELLO: rank {rank} size {size}"),
        ));
    }
    if incarnation > 0 || state.failure.is_failed(rank) {
        state.failure.clear_failed(rank);
        state.replaced.fetch_add(1, Ordering::SeqCst);
    }
    state.failure.beat(rank);
    write_frame(&mut conn, &[RE_WELCOME])?;

    loop {
        let frame = match read_frame(&mut conn) {
            Ok(f) => f,
            Err(_) => {
                // EOF or I/O failure without BYE: the rank died.
                if !state.done.lock().contains(&rank) {
                    state.fail_rank(rank);
                }
                return Ok(());
            }
        };
        state.failure.beat(rank);
        let mut r = Reader::new(&frame);
        let op = r.chunk(1)?[0];
        match op {
            OP_SEND => {
                let comm_id = r.u64()?;
                let dest = r.u32()? as usize;
                let n = r.u32()? as usize;
                let mut msgs = Vec::with_capacity(n);
                for _ in 0..n {
                    let src = r.u32()? as usize;
                    let tag = r.i32()?;
                    let data = r.bytes()?;
                    msgs.push(Message {
                        src,
                        tag,
                        comm_id,
                        data,
                    });
                }
                let Some(comm) = state.comm(comm_id) else {
                    continue;
                };
                let world_dest = comm.members[dest];
                state.mailboxes[world_dest].deposit_batch(msgs);
            }
            OP_RECV | OP_TRYRECV | OP_PROBE => {
                let comm_id = r.u64()?;
                let src = decode_src(r.u64()?);
                let tag = decode_tag(r.i64()?);
                let Some(comm) = state.comm(comm_id) else {
                    write_frame(&mut conn, &[RE_NOMSG])?;
                    continue;
                };
                let my_world = comm
                    .members
                    .iter()
                    .position(|&w| w == rank)
                    .map(|local| comm.members[local])
                    .unwrap_or(rank);
                let mailbox = &state.mailboxes[my_world];
                let reply = match op {
                    OP_RECV => {
                        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                            mailbox.take_matching(comm_id, src, tag)
                        })) {
                            Ok(msg) => encode_msg(&msg),
                            Err(payload) => poisoned_reply(payload),
                        }
                    }
                    OP_TRYRECV => match mailbox.try_take_matching(comm_id, src, tag) {
                        Some(msg) => encode_msg(&msg),
                        None => vec![RE_NOMSG],
                    },
                    _ => {
                        let hit = mailbox.probe(comm_id, src, tag);
                        vec![RE_BOOL, hit as u8]
                    }
                };
                write_frame(&mut conn, &reply)?;
            }
            OP_EXCHANGE => {
                let comm_id = r.u64()?;
                let local = r.u32()? as usize;
                let n = r.u32()? as usize;
                let mut mine = Vec::with_capacity(n);
                for _ in 0..n {
                    mine.push(r.bytes()?);
                }
                let Some(comm) = state.comm(comm_id) else {
                    write_frame(&mut conn, &[RE_NOMSG])?;
                    continue;
                };
                let reply = match std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    comm.board.exchange(local, mine)
                })) {
                    Ok(snap) => {
                        let mut out = vec![RE_SNAP];
                        put_u32(&mut out, snap.len() as u32);
                        for slots in snap.iter() {
                            put_u32(&mut out, slots.len() as u32);
                            for slot in slots {
                                put_bytes(&mut out, slot);
                            }
                        }
                        out
                    }
                    Err(payload) => poisoned_reply(payload),
                };
                write_frame(&mut conn, &reply)?;
            }
            OP_SPLIT => {
                let parent = r.u64()?;
                let seq = r.u64()?;
                let color = r.i64()?;
                let n = r.u32()? as usize;
                let mut members = Vec::with_capacity(n);
                for _ in 0..n {
                    members.push(r.u32()? as usize);
                }
                let key: CommKey = (parent, seq, color);
                let id = {
                    let mut splits = state.splits.lock();
                    if let Some(&id) = splits.get(&key) {
                        id
                    } else {
                        let mut next = state.next_id.lock();
                        let id = *next;
                        *next += 1;
                        drop(next);
                        let comm = Arc::new(HubComm {
                            board: Board::with_members(
                                members.len(),
                                members.clone(),
                                Arc::clone(&state.failure),
                            ),
                            members: members.clone(),
                        });
                        state.by_id.lock().insert(id, comm);
                        splits.insert(key, id);
                        id
                    }
                };
                let mut out = vec![RE_COMMID];
                put_u64(&mut out, id);
                write_frame(&mut conn, &out)?;
            }
            OP_STATS => {
                let stats = state.mailboxes[rank].network_stats();
                let mut out = vec![RE_STATS];
                put_u64(&mut out, stats.transfers);
                put_u64(&mut out, stats.messages);
                write_frame(&mut conn, &out)?;
            }
            OP_STATUS => {
                let mut out = vec![RE_STATUS];
                put_i64(&mut out, state.failure.poisoned().map_or(-1, |r| r as i64));
                put_u64(&mut out, state.failure.detected());
                write_frame(&mut conn, &out)?;
            }
            OP_BYE => {
                let mut done = state.done.lock();
                done.insert(rank);
                state.done_cv.notify_all();
                return Ok(());
            }
            OP_FAILSELF => {
                let _kind = r.chunk(1)?[0];
                state.fail_rank(rank);
                return Ok(());
            }
            OP_BEAT => {}
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown opcode {other}"),
                ));
            }
        }
    }
}

fn encode_msg(msg: &Message) -> Vec<u8> {
    let mut out = vec![RE_MSG];
    put_u32(&mut out, msg.src as u32);
    put_i32(&mut out, msg.tag);
    put_bytes(&mut out, &msg.data);
    out
}

fn poisoned_reply(payload: Box<dyn std::any::Any + Send>) -> Vec<u8> {
    let rank = payload
        .downcast_ref::<PoisonedWorld>()
        .map_or(u32::MAX, |p| p.rank as u32);
    let mut out = vec![RE_POISONED];
    put_u32(&mut out, rank);
    out
}

// ----------------------------------------------------------------------
// Client
// ----------------------------------------------------------------------

/// A rank's communicator handle over the socket backend. Implements the
/// same [`Communicator`] surface as the in-process [`crate::Comm`].
#[derive(Debug)]
pub struct SocketComm {
    stream: Arc<Mutex<UnixStream>>,
    rank: usize,
    comm_id: u64,
    /// Communicator-local rank → world rank.
    members: Vec<usize>,
    split_seq: std::cell::Cell<u64>,
    incarnation: u64,
    last_beat: Mutex<Option<std::time::Instant>>,
}

impl SocketComm {
    /// Connects to the hub at `path` as world rank `rank` of `size`.
    /// `incarnation` is 0 for a first spawn, >0 for a replacement of a
    /// failed rank.
    pub fn connect(
        path: &Path,
        rank: usize,
        size: usize,
        incarnation: u64,
    ) -> io::Result<SocketComm> {
        let mut stream = UnixStream::connect(path)?;
        let mut hello = vec![OP_HELLO];
        put_u32(&mut hello, rank as u32);
        put_u32(&mut hello, size as u32);
        put_u64(&mut hello, incarnation);
        write_frame(&mut stream, &hello)?;
        let reply = read_frame(&mut stream)?;
        if reply.first() != Some(&RE_WELCOME) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "hub rejected HELLO",
            ));
        }
        Ok(SocketComm {
            stream: Arc::new(Mutex::new(stream)),
            rank,
            comm_id: 0,
            members: (0..size).collect(),
            split_seq: std::cell::Cell::new(0),
            incarnation,
            last_beat: Mutex::new(None),
        })
    }

    /// Says goodbye to the hub (clean completion of this rank).
    pub fn bye(self) -> io::Result<()> {
        let mut stream = self.stream.lock();
        write_frame(&mut stream, &[OP_BYE])
    }

    /// Sends `body` and awaits one reply frame, aborting via
    /// [`PoisonedWorld`] if the hub reports a poisoned world.
    fn request(&self, body: &[u8]) -> Vec<u8> {
        let mut stream = self.stream.lock();
        write_frame(&mut stream, body).unwrap_or_else(|e| hub_lost(&e));
        let reply = read_frame(&mut stream).unwrap_or_else(|e| hub_lost(&e));
        if reply.first() == Some(&RE_POISONED) {
            let rank = Reader::new(&reply[1..]).u32().unwrap_or(u32::MAX);
            std::panic::panic_any(PoisonedWorld {
                rank: rank as usize,
            });
        }
        reply
    }

    /// Sends a one-way frame (no reply expected).
    fn send_oneway(&self, body: &[u8]) {
        let mut stream = self.stream.lock();
        write_frame(&mut stream, body).unwrap_or_else(|e| hub_lost(&e));
    }

    fn status(&self) -> (Option<usize>, u64) {
        let reply = self.request(&[OP_STATUS]);
        let mut r = Reader::new(&reply[1..]);
        let poisoned = r.i64().ok().filter(|&v| v >= 0).map(|v| v as usize);
        let detected = r.u64().unwrap_or(0);
        (poisoned, detected)
    }
}

fn hub_lost(e: &io::Error) -> ! {
    panic!("hub connection lost: {e}");
}

impl Communicator for SocketComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.members.len()
    }

    fn id(&self) -> u64 {
        self.comm_id
    }

    fn world_rank(&self, local: usize) -> usize {
        self.members[local]
    }

    fn incarnation(&self) -> u64 {
        self.incarnation
    }

    fn deposit(&self, dest: usize, msgs: Vec<Message>) {
        let mut body = vec![OP_SEND];
        put_u64(&mut body, self.comm_id);
        put_u32(&mut body, dest as u32);
        put_u32(&mut body, msgs.len() as u32);
        for msg in &msgs {
            put_u32(&mut body, msg.src as u32);
            put_i32(&mut body, msg.tag);
            put_bytes(&mut body, &msg.data);
        }
        self.send_oneway(&body);
    }

    fn take(&self, src: Option<usize>, tag: Option<Tag>) -> Message {
        let mut body = vec![OP_RECV];
        put_u64(&mut body, self.comm_id);
        put_u64(&mut body, encode_src(src));
        put_i64(&mut body, encode_tag(tag));
        let reply = self.request(&body);
        decode_reply_msg(&reply, self.comm_id).expect("blocking recv returned no message")
    }

    fn try_take(&self, src: Option<usize>, tag: Option<Tag>) -> Option<Message> {
        let mut body = vec![OP_TRYRECV];
        put_u64(&mut body, self.comm_id);
        put_u64(&mut body, encode_src(src));
        put_i64(&mut body, encode_tag(tag));
        let reply = self.request(&body);
        decode_reply_msg(&reply, self.comm_id)
    }

    fn probe(&self, src: Option<usize>, tag: Option<Tag>) -> bool {
        let mut body = vec![OP_PROBE];
        put_u64(&mut body, self.comm_id);
        put_u64(&mut body, encode_src(src));
        put_i64(&mut body, encode_tag(tag));
        let reply = self.request(&body);
        reply.first() == Some(&RE_BOOL) && reply.get(1) == Some(&1)
    }

    fn exchange(&self, mine: Vec<Bytes>) -> Arc<Vec<Vec<Bytes>>> {
        let mut body = vec![OP_EXCHANGE];
        put_u64(&mut body, self.comm_id);
        put_u32(&mut body, self.rank as u32);
        put_u32(&mut body, mine.len() as u32);
        for slot in &mine {
            put_bytes(&mut body, slot);
        }
        let reply = self.request(&body);
        let mut r = Reader::new(&reply);
        let op = r.chunk(1).map(|c| c[0]).unwrap_or(0);
        assert_eq!(op, RE_SNAP, "exchange expects a snapshot reply");
        let nranks = r.u32().expect("snapshot rank count") as usize;
        let mut snap = Vec::with_capacity(nranks);
        for _ in 0..nranks {
            let nslots = r.u32().expect("snapshot slot count") as usize;
            let mut slots = Vec::with_capacity(nslots);
            for _ in 0..nslots {
                slots.push(r.bytes().expect("snapshot slot"));
            }
            snap.push(slots);
        }
        Arc::new(snap)
    }

    fn next_split_seq(&self) -> u64 {
        let seq = self.split_seq.get();
        self.split_seq.set(seq + 1);
        seq
    }

    fn register_split(&self, seq: u64, color: i64, members: Vec<usize>, my_rank: usize) -> Self {
        let mut body = vec![OP_SPLIT];
        put_u64(&mut body, self.comm_id);
        put_u64(&mut body, seq);
        put_i64(&mut body, color);
        put_u32(&mut body, members.len() as u32);
        for &m in &members {
            put_u32(&mut body, m as u32);
        }
        let reply = self.request(&body);
        assert_eq!(reply.first(), Some(&RE_COMMID), "split expects a comm id");
        let id = Reader::new(&reply[1..]).u64().expect("comm id");
        SocketComm {
            stream: Arc::clone(&self.stream),
            rank: my_rank,
            comm_id: id,
            members,
            split_seq: std::cell::Cell::new(0),
            incarnation: self.incarnation,
            last_beat: Mutex::new(None),
        }
    }

    fn network_stats(&self) -> NetworkStats {
        let reply = self.request(&[OP_STATS]);
        let mut r = Reader::new(&reply[1..]);
        NetworkStats {
            transfers: r.u64().unwrap_or(0),
            messages: r.u64().unwrap_or(0),
        }
    }

    fn poisoned(&self) -> Option<usize> {
        self.status().0
    }

    fn failures_detected(&self) -> u64 {
        self.status().1
    }

    fn heartbeat(&self) {
        // Throttled: a BEAT frame at most every 50 ms keeps hub-side
        // staleness detection fed without per-event wire traffic.
        let mut last = self.last_beat.lock();
        let now = std::time::Instant::now();
        if last.is_none_or(|t| now.duration_since(t) >= Duration::from_millis(50)) {
            *last = Some(now);
            drop(last);
            self.send_oneway(&[OP_BEAT]);
        }
    }

    fn fail_self(&self, fault: RankFault) -> ! {
        match fault {
            RankFault::Panic => panic!("injected rank fault: panic at rank {}", self.rank),
            RankFault::Hang => loop {
                // Go silent: no frames, no exit. The hub's heartbeat
                // monitor (or the orchestrator) reaps this rank.
                std::thread::sleep(Duration::from_secs(3600));
            },
            RankFault::Disconnect => {
                self.send_oneway(&[OP_FAILSELF, 2]);
                std::panic::panic_any(PoisonedWorld { rank: self.rank });
            }
        }
    }
}

fn decode_reply_msg(reply: &[u8], comm_id: u64) -> Option<Message> {
    let mut r = Reader::new(reply);
    match r.chunk(1).map(|c| c[0]) {
        Ok(op) if op == RE_MSG => {
            let src = r.u32().ok()? as usize;
            let tag = r.i32().ok()?;
            let data = r.bytes().ok()?;
            Some(Message {
                src,
                tag,
                comm_id,
                data,
            })
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::ReduceOp;
    use std::sync::atomic::AtomicUsize;

    static SOCKET_SEQ: AtomicUsize = AtomicUsize::new(0);

    fn temp_socket(tag: &str) -> std::path::PathBuf {
        let n = SOCKET_SEQ.fetch_add(1, Ordering::SeqCst);
        std::env::temp_dir().join(format!(
            "pythia-minimpi-{}-{}-{}.sock",
            std::process::id(),
            tag,
            n
        ))
    }

    /// Runs `f` on `size` in-process clients against a hub thread (the
    /// socket backend exercised without multi-process orchestration).
    fn run_socket_world<R, F>(size: usize, elastic: bool, tag: &str, f: F) -> (Vec<R>, HubStats)
    where
        R: Send,
        F: Fn(SocketComm) -> R + Send + Sync,
    {
        let path = temp_socket(tag);
        let path2 = path.clone();
        let hub = std::thread::spawn(move || Hub::serve(&path2, size, elastic).expect("hub"));
        // Wait for the hub to bind.
        for _ in 0..400 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let results = std::thread::scope(|s| {
            let handles: Vec<_> = (0..size)
                .map(|rank| {
                    let f = &f;
                    let path = &path;
                    s.spawn(move || {
                        let comm = SocketComm::connect(path, rank, size, 0).expect("connect");
                        f(comm)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("client thread"))
                .collect::<Vec<R>>()
        });
        let stats = hub.join().expect("hub thread");
        (results, stats)
    }

    #[test]
    fn socket_ring_and_collectives() {
        let (out, stats) = run_socket_world(4, false, "ring", |comm| {
            let next = (comm.rank() + 1) % comm.size();
            let prev = (comm.rank() + comm.size() - 1) % comm.size();
            comm.send(&[comm.rank() as u64], next, 0);
            let (data, status) = comm.recv::<u64>(Some(prev), Some(0));
            assert_eq!(status.source, prev);
            let total = comm.allreduce(&[comm.rank() as u64], ReduceOp::Sum);
            comm.barrier();
            let r = (data[0], total[0]);
            comm.bye().expect("bye");
            r
        });
        assert_eq!(
            out.iter().map(|&(d, _)| d).collect::<Vec<_>>(),
            vec![3, 0, 1, 2]
        );
        assert!(out.iter().all(|&(_, t)| t == 6));
        assert_eq!(stats, HubStats::default());
    }

    #[test]
    fn socket_split_and_alltoall() {
        let (out, stats) = run_socket_world(4, false, "split", |comm| {
            let row = (comm.rank() / 2) as i64;
            let row_comm = comm.split(row, comm.rank() as i64);
            assert_eq!(row_comm.size(), 2);
            let total = row_comm.allreduce(&[comm.rank() as u64], ReduceOp::Sum);
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![(comm.rank() * 10 + d) as u64])
                .collect();
            let recvd = comm.alltoall(&sends);
            let r = (row_comm.rank(), total[0], recvd[2][0]);
            comm.bye().expect("bye");
            r
        });
        assert_eq!((out[0].0, out[0].1), (0, 1));
        assert_eq!((out[3].0, out[3].1), (1, 5));
        // alltoall: rank r receives 2*10 + r from sender 2.
        for (r, entry) in out.iter().enumerate() {
            assert_eq!(entry.2, (20 + r) as u64);
        }
        assert_eq!(stats.failures_detected, 0);
    }

    #[test]
    fn socket_dead_rank_poisons_survivors() {
        let (out, stats) = run_socket_world(2, false, "dead", |comm| {
            if comm.rank() == 1 {
                // Vanish without BYE: the hub sees EOF and poisons.
                drop(comm);
                return true;
            }
            let aborted = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                comm.recv::<u64>(Some(1), Some(7))
            }))
            .is_err();
            let _ = comm.bye();
            aborted
        });
        assert!(out[0], "survivor must abort, not hang");
        assert_eq!(stats.failures_detected, 1);
    }

    #[test]
    fn socket_elastic_replacement_rejoins() {
        let path = temp_socket("elastic");
        let path2 = path.clone();
        let hub = std::thread::spawn(move || Hub::serve(&path2, 2, true).expect("hub"));
        for _ in 0..400 {
            if path.exists() {
                break;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        let survivor = {
            let path = path.clone();
            std::thread::spawn(move || {
                let comm = SocketComm::connect(&path, 0, 2, 0).expect("connect");
                // Blocks until the replacement incarnation of rank 1
                // reaches the barrier.
                comm.barrier();
                let (data, _) = comm.recv::<u64>(Some(1), Some(3));
                comm.bye().expect("bye");
                data[0]
            })
        };
        // First incarnation of rank 1 dies before the barrier.
        {
            let comm = SocketComm::connect(&path, 1, 2, 0).expect("connect");
            drop(comm);
        }
        std::thread::sleep(Duration::from_millis(50));
        // Replacement rejoins and completes the world.
        {
            let comm = SocketComm::connect(&path, 1, 2, 1).expect("reconnect");
            assert_eq!(comm.incarnation(), 1);
            comm.barrier();
            comm.send(&[99u64], 0, 3);
            comm.bye().expect("bye");
        }
        assert_eq!(survivor.join().expect("survivor"), 99);
        let stats = hub.join().expect("hub");
        assert_eq!(stats.failures_detected, 1);
        assert_eq!(stats.ranks_replaced, 1);
    }
}
