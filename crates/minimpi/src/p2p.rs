//! Point-to-point messaging: per-rank mailboxes with MPI-style
//! `(communicator, source, tag)` matching.
//!
//! Sends are eager and buffered (the sender never blocks); receives block
//! on a condition variable until a matching message arrives. Within one
//! `(source, tag)` pair, messages are matched in the order they were sent
//! (MPI's non-overtaking rule) because the mailbox is scanned
//! front-to-back and senders append at the back.

use bytes::Bytes;
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::Arc;

use crate::failure::FailureState;

/// Message tag (application-chosen demultiplexing key).
pub type Tag = i32;

/// Wildcard source for [`crate::Comm::recv`] (`MPI_ANY_SOURCE`).
pub const ANY_SOURCE: Option<usize> = None;

/// Wildcard tag for [`crate::Comm::recv`] (`MPI_ANY_TAG`).
pub const ANY_TAG: Option<Tag> = None;

/// A buffered message.
#[derive(Debug, Clone)]
pub struct Message {
    /// World rank of the sender.
    pub src: usize,
    /// Application tag.
    pub tag: Tag,
    /// Communicator the message was sent on.
    pub comm_id: u64,
    /// Encoded payload.
    pub data: Bytes,
}

/// Receive metadata (the `MPI_Status` equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Status {
    /// World rank of the sender.
    pub source: usize,
    /// Tag of the matched message.
    pub tag: Tag,
    /// Payload length in bytes.
    pub len: usize,
}

/// Counters modeling the "network" cost of a mailbox: one *transfer* per
/// deposit call, regardless of how many logical messages it carries. This
/// is what prediction-driven send aggregation (à la NewMadeleine, paper
/// §III-B's motivating optimization) reduces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Deposit operations (modeled wire transfers).
    pub transfers: u64,
    /// Logical messages delivered.
    pub messages: u64,
}

/// One rank's incoming-message queue.
#[derive(Debug)]
pub struct Mailbox {
    inner: Mutex<VecDeque<Message>>,
    cv: Condvar,
    stats: Mutex<NetworkStats>,
    /// World rank owning (receiving from) this mailbox; `usize::MAX` for
    /// standalone mailboxes outside a world.
    owner: usize,
    /// The owning world's failure state (detached when standalone).
    failure: Arc<FailureState>,
}

impl Default for Mailbox {
    fn default() -> Self {
        Self::new()
    }
}

impl Mailbox {
    /// Creates an empty standalone mailbox (no failure detection).
    pub fn new() -> Self {
        Self::for_rank(usize::MAX, Arc::new(FailureState::detached()))
    }

    /// Creates the mailbox of world rank `owner`, wired to the world's
    /// failure state so blocking receives abort when the world poisons.
    pub fn for_rank(owner: usize, failure: Arc<FailureState>) -> Self {
        Mailbox {
            inner: Mutex::new(VecDeque::new()),
            cv: Condvar::new(),
            stats: Mutex::new(NetworkStats::default()),
            owner,
            failure,
        }
    }

    /// Wakes every thread blocked in [`Mailbox::take_matching`] so it can
    /// re-check the world's poison flag (called by the world supervisor
    /// after a rank failure).
    pub fn wake_all(&self) {
        self.cv.notify_all();
    }

    /// Deposits a message (never blocks).
    pub fn deposit(&self, msg: Message) {
        {
            let mut st = self.stats.lock();
            st.transfers += 1;
            st.messages += 1;
        }
        let mut q = self.inner.lock();
        q.push_back(msg);
        self.cv.notify_all();
    }

    /// Deposits several messages as one transfer (an aggregated send: the
    /// messages still match receives individually and in order).
    pub fn deposit_batch(&self, msgs: Vec<Message>) {
        if msgs.is_empty() {
            return;
        }
        {
            let mut st = self.stats.lock();
            st.transfers += 1;
            st.messages += msgs.len() as u64;
        }
        let mut q = self.inner.lock();
        q.extend(msgs);
        self.cv.notify_all();
    }

    /// Network counters accumulated by this mailbox.
    pub fn network_stats(&self) -> NetworkStats {
        *self.stats.lock()
    }

    /// Blocks until a message matching `(comm_id, src, tag)` is available
    /// and removes it. `None` filters are wildcards.
    ///
    /// In a world whose failure state is poisoned this call panics with a
    /// [`crate::failure::PoisonedWorld`] payload instead of waiting
    /// forever — the hang-on-dead-peer fix. With heartbeat detection
    /// armed the wait polls and runs the stall scan on each expiry.
    pub fn take_matching(&self, comm_id: u64, src: Option<usize>, tag: Option<Tag>) -> Message {
        let mut q = self.inner.lock();
        loop {
            if let Some(idx) = Self::find(&q, comm_id, src, tag) {
                return q.remove(idx).expect("index just found");
            }
            self.failure.abort_if_poisoned();
            match self.failure.wait_budget() {
                None => self.cv.wait(&mut q),
                Some(budget) => {
                    self.failure.begin_wait(self.owner);
                    let timed_out = self.cv.wait_for(&mut q, budget).timed_out();
                    self.failure.end_wait(self.owner);
                    if timed_out {
                        self.failure.suspect_stall(self.owner);
                    }
                }
            }
        }
    }

    /// Nonblocking variant of [`Mailbox::take_matching`].
    pub fn try_take_matching(
        &self,
        comm_id: u64,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<Message> {
        let mut q = self.inner.lock();
        Self::find(&q, comm_id, src, tag).and_then(|idx| q.remove(idx))
    }

    /// Whether a matching message is queued (the `MPI_Iprobe` equivalent).
    pub fn probe(&self, comm_id: u64, src: Option<usize>, tag: Option<Tag>) -> bool {
        let q = self.inner.lock();
        Self::find(&q, comm_id, src, tag).is_some()
    }

    /// Number of queued messages (diagnostics).
    pub fn queued(&self) -> usize {
        self.inner.lock().len()
    }

    fn find(
        q: &VecDeque<Message>,
        comm_id: u64,
        src: Option<usize>,
        tag: Option<Tag>,
    ) -> Option<usize> {
        q.iter().position(|m| {
            m.comm_id == comm_id && src.is_none_or(|s| m.src == s) && tag.is_none_or(|t| m.tag == t)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn msg(src: usize, tag: Tag, comm: u64, byte: u8) -> Message {
        Message {
            src,
            tag,
            comm_id: comm,
            data: Bytes::from(vec![byte]),
        }
    }

    #[test]
    fn fifo_within_source_tag() {
        let mb = Mailbox::new();
        mb.deposit(msg(0, 1, 0, 10));
        mb.deposit(msg(0, 1, 0, 20));
        let a = mb.take_matching(0, Some(0), Some(1));
        let b = mb.take_matching(0, Some(0), Some(1));
        assert_eq!(a.data[0], 10);
        assert_eq!(b.data[0], 20);
    }

    #[test]
    fn tag_and_source_filtering() {
        let mb = Mailbox::new();
        mb.deposit(msg(0, 1, 0, 10));
        mb.deposit(msg(1, 2, 0, 20));
        let m = mb.take_matching(0, Some(1), Some(2));
        assert_eq!(m.data[0], 20);
        assert_eq!(mb.queued(), 1);
    }

    #[test]
    fn wildcards_match_anything() {
        let mb = Mailbox::new();
        mb.deposit(msg(3, 7, 0, 42));
        let m = mb.take_matching(0, ANY_SOURCE, ANY_TAG);
        assert_eq!(m.src, 3);
        assert_eq!(m.tag, 7);
    }

    #[test]
    fn comm_id_isolates_communicators() {
        let mb = Mailbox::new();
        mb.deposit(msg(0, 1, 5, 10));
        assert!(mb.try_take_matching(0, Some(0), Some(1)).is_none());
        assert!(mb.try_take_matching(5, Some(0), Some(1)).is_some());
    }

    #[test]
    fn probe_does_not_consume() {
        let mb = Mailbox::new();
        mb.deposit(msg(0, 1, 0, 10));
        assert!(mb.probe(0, Some(0), None));
        assert!(mb.probe(0, Some(0), None));
        assert_eq!(mb.queued(), 1);
    }

    #[test]
    fn blocking_take_wakes_on_deposit() {
        use std::sync::Arc;
        let mb = Arc::new(Mailbox::new());
        let mb2 = Arc::clone(&mb);
        let h = std::thread::spawn(move || mb2.take_matching(0, Some(0), Some(9)));
        std::thread::sleep(std::time::Duration::from_millis(20));
        mb.deposit(msg(0, 9, 0, 77));
        let m = h.join().unwrap();
        assert_eq!(m.data[0], 77);
    }
}
