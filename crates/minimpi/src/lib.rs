//! # pythia-minimpi
//!
//! An in-process, thread-based MPI-like message-passing runtime.
//!
//! This crate is the communication substrate of the PYTHIA reproduction
//! (Colin et al., CLUSTER 2022). The paper evaluates PYTHIA by intercepting
//! the MPI calls of 13 HPC applications; PYTHIA itself never looks at the
//! wire — it only observes *which* MPI functions are called, with which
//! peers/roots/operations, and *when*. `pythia-minimpi` therefore
//! implements a real message-passing runtime with the same call surface
//! (point-to-point send/recv, nonblocking operations with requests,
//! collectives, communicator splitting), executing ranks as threads of one
//! process so the full 13-application evaluation runs on a laptop.
//!
//! ## Model
//!
//! * [`World::run`] launches `n` ranks, each executing the same closure on
//!   its own OS thread with a [`Comm`] handle (the `MPI_COMM_WORLD`
//!   equivalent).
//! * Point-to-point messages are eager and buffered: [`Comm::send`]
//!   deposits into the destination's mailbox and returns; [`Comm::recv`]
//!   blocks until a message matching `(source, tag)` arrives. Matching is
//!   FIFO per (source, tag) pair — MPI's non-overtaking rule.
//! * Nonblocking operations return [`Request`]s completed by
//!   [`Comm::wait`] / [`Comm::waitall`]. Receive requests are *lazy*: the
//!   matching happens at wait time (sufficient for the skeleton
//!   applications; documented deviation from eager MPI progress).
//! * Collectives ([`Comm::barrier`], [`Comm::bcast`], [`Comm::reduce`],
//!   [`Comm::allreduce`], [`Comm::alltoall`], [`Comm::gather`],
//!   [`Comm::allgather`], [`Comm::scatter`]) are built on a generation-
//!   counted rendezvous board.
//! * [`Comm::split`] creates sub-communicators, as used by e.g. the NPB
//!   kernels (row/column communicators in CG, BT).
//!
//! ```
//! use pythia_minimpi::{World, ReduceOp};
//!
//! let sums = World::run(4, |comm| {
//!     let mine = [comm.rank() as u64 + 1];
//!     let total = comm.allreduce(&mine, ReduceOp::Sum);
//!     total[0]
//! });
//! assert_eq!(sums, vec![10, 10, 10, 10]);
//! ```

//! ## Backends and fault tolerance
//!
//! The call surface is abstracted by the [`Communicator`] trait; two
//! backends implement it:
//!
//! * **threads** (default feature): [`World::run`] launches ranks as
//!   threads of one process. [`World::run_result`] converts a rank
//!   failure into [`CommError::RankFailed`] instead of hanging the
//!   survivors; [`World::run_elastic`] replaces a failed rank with a
//!   fresh incarnation that resumes from its durable journal.
//! * **socket** (optional feature): [`socket::Hub`] serves mailboxes and
//!   rendezvous boards over a Unix socket so ranks run as separate
//!   processes ([`socket::SocketComm`]); a `kill -9`'d rank is detected
//!   by connection EOF and an elastic hub admits its replacement.

pub mod collective;
#[cfg(feature = "threads")]
pub mod comm;
pub mod communicator;
pub mod datatype;
pub mod failure;
pub mod p2p;
pub mod request;
#[cfg(feature = "socket")]
pub mod socket;

#[cfg(feature = "threads")]
pub use comm::{Comm, ElasticWorldStats, World};
pub use communicator::Communicator;
pub use datatype::{MpiReduce, MpiType, ReduceOp};
pub use failure::{CommError, FailureState, PoisonedWorld, RankFault, RANK_TIMEOUT_ENV};
pub use p2p::{Message, NetworkStats, Status, Tag, ANY_SOURCE, ANY_TAG};
pub use request::Request;
#[cfg(feature = "socket")]
pub use socket::{Hub, HubStats, SocketComm};
