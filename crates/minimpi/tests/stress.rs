//! Stress and property tests of the message-passing substrate: collective
//! results against sequential references on random inputs, mixed
//! p2p/collective traffic, and ordering guarantees under load.

use proptest::collection::vec;
use proptest::prelude::*;

use pythia_minimpi::{ReduceOp, World};

#[test]
fn heavy_mixed_traffic_terminates() {
    // Every rank floods its ring neighbours while collectives interleave.
    let out = World::run(6, |comm| {
        let n = comm.size();
        let next = (comm.rank() + 1) % n;
        let prev = (comm.rank() + n - 1) % n;
        let mut acc = 0u64;
        for round in 0..200u64 {
            comm.send(&[round], next, (round % 7) as i32);
            let (v, _) = comm.recv::<u64>(Some(prev), Some((round % 7) as i32));
            acc += v[0];
            if round % 10 == 0 {
                let s = comm.allreduce(&[round], ReduceOp::Max);
                assert_eq!(s[0], round);
            }
        }
        acc
    });
    for v in out {
        assert_eq!(v, (0..200).sum::<u64>());
    }
}

#[test]
fn non_overtaking_order_under_load() {
    let out = World::run(2, |comm| {
        if comm.rank() == 0 {
            for i in 0..1000u64 {
                comm.send(&[i], 1, 3);
            }
            Vec::new()
        } else {
            (0..1000)
                .map(|_| comm.recv::<u64>(Some(0), Some(3)).0[0])
                .collect::<Vec<u64>>()
        }
    });
    let received = &out[1];
    let sorted: Vec<u64> = (0..1000).collect();
    assert_eq!(received, &sorted, "same-(src,tag) messages reordered");
}

#[test]
fn different_tags_can_be_drained_out_of_order() {
    let out = World::run(2, |comm| {
        if comm.rank() == 0 {
            comm.send(&[1u64], 1, 1);
            comm.send(&[2u64], 1, 2);
            0
        } else {
            // Drain tag 2 before tag 1.
            let (b, _) = comm.recv::<u64>(Some(0), Some(2));
            let (a, _) = comm.recv::<u64>(Some(0), Some(1));
            a[0] * 10 + b[0]
        }
    });
    assert_eq!(out[1], 12);
}

#[test]
fn collectives_with_empty_payloads() {
    let out = World::run(3, |comm| {
        let empty: Vec<f64> = Vec::new();
        let r = comm.allreduce(&empty, ReduceOp::Sum);
        assert!(r.is_empty());
        let g = comm.allgather(&empty);
        assert_eq!(g.len(), 3);
        let b = comm.bcast(&empty, 0);
        assert!(b.is_empty());
        comm.barrier();
        1
    });
    assert_eq!(out, vec![1, 1, 1]);
}

#[test]
fn large_payload_roundtrip() {
    let out = World::run(2, |comm| {
        if comm.rank() == 0 {
            let big: Vec<u64> = (0..100_000).collect();
            comm.send(&big, 1, 0);
            0
        } else {
            let (data, status) = comm.recv::<u64>(Some(0), Some(0));
            assert_eq!(status.len, 100_000 * 8);
            data.iter().sum::<u64>() % 1_000_003
        }
    });
    let expect: u64 = (0..100_000u64).sum::<u64>() % 1_000_003;
    assert_eq!(out[1], expect);
}

#[test]
fn nested_split_hierarchy() {
    // Split 8 ranks into halves, then quarters; collectives at each level.
    let out = World::run(8, |comm| {
        let half = comm.split((comm.rank() / 4) as i64, comm.rank() as i64);
        let quarter = half.split((half.rank() / 2) as i64, half.rank() as i64);
        let world_sum = comm.allreduce(&[1u64], ReduceOp::Sum)[0];
        let half_sum = half.allreduce(&[1u64], ReduceOp::Sum)[0];
        let quarter_sum = quarter.allreduce(&[1u64], ReduceOp::Sum)[0];
        (world_sum, half_sum, quarter_sum)
    });
    for v in out {
        assert_eq!(v, (8, 4, 2));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Allreduce(sum) over random per-rank vectors equals the sequential
    /// sum, regardless of rank count.
    #[test]
    fn allreduce_matches_reference(
        ranks in 1usize..6,
        data in vec(vec(-1000i64..1000, 4), 1..6),
    ) {
        let contribs: Vec<Vec<i64>> = (0..ranks)
            .map(|r| data[r % data.len()].clone())
            .collect();
        let mut expect = vec![0i64; 4];
        for c in &contribs {
            for (e, v) in expect.iter_mut().zip(c) {
                *e += v;
            }
        }
        let contribs_ref = &contribs;
        let out = World::run(ranks, move |comm| {
            comm.allreduce(&contribs_ref[comm.rank()], ReduceOp::Sum)
        });
        for v in out {
            prop_assert_eq!(&v, &expect);
        }
    }

    /// Alltoall is an exact matrix transpose for arbitrary payloads.
    #[test]
    fn alltoall_transposes_any_matrix(
        ranks in 1usize..6,
        seed in 0u64..1000,
    ) {
        let out = World::run(ranks, move |comm| {
            let sends: Vec<Vec<u64>> = (0..comm.size())
                .map(|d| vec![seed + (comm.rank() * 100 + d) as u64])
                .collect();
            comm.alltoall(&sends)
        });
        for (r, recvd) in out.iter().enumerate() {
            for (s, v) in recvd.iter().enumerate() {
                prop_assert_eq!(v[0], seed + (s * 100 + r) as u64);
            }
        }
    }

    /// Gather/scatter round-trip arbitrary data unchanged.
    #[test]
    fn gather_scatter_identity(
        ranks in 1usize..6,
        root_choice in 0usize..6,
        base in 0u64..1_000_000,
    ) {
        let root = root_choice % ranks;
        let out = World::run(ranks, move |comm| {
            let mine = [base + comm.rank() as u64];
            let gathered = comm.gather(&mine, root);
            let chunks: Option<Vec<Vec<u64>>> = gathered;
            comm.scatter(chunks.as_deref(), root)[0]
        });
        for (r, v) in out.iter().enumerate() {
            prop_assert_eq!(*v, base + r as u64);
        }
    }
}
