//! # pythia-bench
//!
//! The experiment harness of the PYTHIA reproduction: one binary per table
//! or figure of the paper's evaluation (§III), plus Criterion
//! micro-benchmarks for the grammar builder and the predictor.
//!
//! | Paper artifact | Binary |
//! |---|---|
//! | Table I (record overhead, # events, # rules) | `table1` |
//! | Fig. 7 (example BT grammar) | `table1 --show-grammar BT` |
//! | Fig. 8 (prediction accuracy vs distance) | `fig8_accuracy` |
//! | Fig. 9 (prediction cost vs distance) | `fig9_cost` |
//! | Figs. 10/11 (LULESH time vs problem size) | `fig10_11_problem_size` |
//! | Figs. 12/13 (LULESH time vs max threads) | `fig12_13_threads` |
//! | Fig. 14 (LULESH time vs error rate) | `fig14_error_rate` |
//!
//! Beyond the paper's artifacts, `pythia-analyze` ([`analyze_cli`]) runs
//! the static-analysis passes of `pythia_core::analyze` (grammar linter,
//! cross-rank MPI protocol verifier, predictability report) over saved
//! trace files without expanding them.
//!
//! Every binary accepts `--help`, prints an aligned text table to stdout,
//! and writes machine-readable JSON next to it with `--json <path>`.
//! Default scales are reduced so the full suite completes in minutes on a
//! laptop (see EXPERIMENTS.md for the paper-vs-here scale mapping).

pub mod analyze_cli;
pub mod lulesh;

use std::fmt::Write as _;

/// Minimal `--name value` / `--flag` argument access.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Args {
            argv: std::env::args().skip(1).collect(),
        }
    }

    /// For tests.
    pub fn from(argv: &[&str]) -> Self {
        Args {
            argv: argv.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// The value following `--name`, if present.
    pub fn value(&self, name: &str) -> Option<&str> {
        let key = format!("--{name}");
        self.argv
            .iter()
            .position(|a| a == &key)
            .and_then(|i| self.argv.get(i + 1))
            .map(|s| s.as_str())
    }

    /// Whether `--name` appears (with or without a value).
    pub fn flag(&self, name: &str) -> bool {
        let key = format!("--{name}");
        self.argv.iter().any(|a| a == &key)
    }

    /// Parses the value of `--name`, falling back to `default`.
    pub fn parse_or<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        self.value(name)
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    }

    /// Parses a comma-separated list of values for `--name`.
    pub fn parse_list<T: std::str::FromStr + Clone>(&self, name: &str, default: &[T]) -> Vec<T> {
        match self.value(name) {
            None => default.to_vec(),
            Some(v) => v.split(',').filter_map(|x| x.trim().parse().ok()).collect(),
        }
    }
}

/// An aligned plain-text table, in the spirit of the paper's Table I.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        Table {
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header count).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "column count mismatch");
        self.rows.push(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, c) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:>width$}", c, width = widths[i]);
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Writes a JSON value to `path` if `--json` was given.
pub fn maybe_write_json(args: &Args, value: &serde_json::Value) {
    if let Some(path) = args.value("json") {
        match std::fs::write(path, serde_json::to_string_pretty(value).unwrap()) {
            Ok(()) => eprintln!("wrote {path}"),
            Err(e) => eprintln!("failed to write {path}: {e}"),
        }
    }
}

/// Mean of a slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// `(min, mean, max)` of a slice.
pub fn min_mean_max(xs: &[f64]) -> (f64, f64, f64) {
    let mn = xs.iter().copied().fold(f64::INFINITY, f64::min);
    let mx = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (mn, mean(xs), mx)
}

/// Number of hardware threads available, clamped to `cap`.
pub fn host_threads(cap: usize) -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
        .min(cap)
        .max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::from(&["--ranks", "16", "--fast"]);
        assert_eq!(a.value("ranks"), Some("16"));
        assert_eq!(a.parse_or("ranks", 4usize), 16);
        assert_eq!(a.parse_or("runs", 3usize), 3);
        assert!(a.flag("fast"));
        assert!(!a.flag("slow"));
    }

    #[test]
    fn args_parse_lists() {
        let a = Args::from(&["--sizes", "5, 10,20"]);
        assert_eq!(a.parse_list("sizes", &[1u64]), vec![5, 10, 20]);
        assert_eq!(a.parse_list("other", &[7u64]), vec![7]);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["App", "Events"]);
        t.row(vec!["BT".into(), "123".into()]);
        t.row(vec!["Quicksilver".into(), "9".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("App"));
        assert!(lines[2].ends_with("123"));
    }

    #[test]
    #[should_panic(expected = "column count mismatch")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only one".into()]);
    }

    #[test]
    fn stats_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), 2.0);
        let (mn, me, mx) = min_mean_max(&[3.0, 1.0, 2.0]);
        assert_eq!((mn, me, mx), (1.0, 2.0, 3.0));
        assert!(host_threads(8) >= 1);
        assert!(host_threads(2) <= 2);
    }
}
