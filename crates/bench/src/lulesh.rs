//! Shared driver for the LULESH-OpenMP experiments (Figs. 10–14): runs the
//! model under the three configurations the paper compares — *Vanilla*
//! (stock runtime, max threads), *PYTHIA-RECORD* (recording, max threads),
//! and *PYTHIA-PREDICT* (adaptive team sizes from duration predictions).

use std::time::Duration;

use pythia_apps::lulesh_omp::{self, LuleshOmpConfig};
use pythia_core::trace::TraceData;
use pythia_minomp::{OmpRuntime, PoolMode};
use pythia_runtime_omp::{OmpOracle, OmpStats, ThresholdPolicy};

/// The three runtime configurations of Figs. 10–14.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LuleshMode {
    /// Stock runtime: no oracle, maximum threads everywhere.
    Vanilla,
    /// PYTHIA-RECORD: events recorded, maximum threads everywhere.
    Record,
    /// PYTHIA-PREDICT: adaptive team sizes, with an §III-E error-injection
    /// rate (0.0 reproduces Figs. 10–13).
    Predict {
        /// Probability of injecting an unexpected event per region.
        error_rate: f64,
    },
}

impl LuleshMode {
    /// Label used in tables.
    pub fn label(&self) -> String {
        match self {
            LuleshMode::Vanilla => "Vanilla".into(),
            LuleshMode::Record => "Pythia-record".into(),
            LuleshMode::Predict { error_rate } if *error_rate == 0.0 => "Pythia-predict".into(),
            LuleshMode::Predict { error_rate } => format!("Pythia-predict(err={error_rate})"),
        }
    }
}

/// Records a reference trace of the model at `cfg` with `max_threads`.
pub fn record_reference(max_threads: usize, cfg: &LuleshOmpConfig) -> TraceData {
    let oracle = OmpOracle::recorder();
    {
        let rt = OmpRuntime::with_listener(max_threads, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, cfg);
    }
    oracle.finish_trace().expect("recorder produces a trace")
}

/// Runs one configuration once; returns the time-step-loop duration and
/// the oracle statistics (empty for vanilla).
pub fn run_once(
    mode: LuleshMode,
    max_threads: usize,
    pool: PoolMode,
    cfg: &LuleshOmpConfig,
    trace: Option<&TraceData>,
    seed: u64,
) -> (Duration, OmpStats) {
    let oracle = match mode {
        LuleshMode::Vanilla => OmpOracle::vanilla(),
        LuleshMode::Record => OmpOracle::recorder(),
        LuleshMode::Predict { error_rate } => OmpOracle::predictor(
            trace.expect("predict mode needs a reference trace"),
            ThresholdPolicy::default(),
            error_rate,
            seed,
        ),
    };
    let elapsed = {
        let rt = OmpRuntime::with_listener(max_threads, pool, oracle.listener());
        lulesh_omp::run(&rt, cfg)
    };
    let stats = oracle.stats();
    (elapsed, stats)
}

/// Runs a configuration `runs` times, returning seconds per run.
pub fn run_many(
    mode: LuleshMode,
    max_threads: usize,
    pool: PoolMode,
    cfg: &LuleshOmpConfig,
    trace: Option<&TraceData>,
    runs: usize,
) -> Vec<f64> {
    (0..runs)
        .map(|i| {
            run_once(mode, max_threads, pool, cfg, trace, 1000 + i as u64)
                .0
                .as_secs_f64()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> LuleshOmpConfig {
        LuleshOmpConfig {
            problem_size: 5,
            steps: 2,
            ns_per_unit: 1,
        }
    }

    #[test]
    fn all_modes_run() {
        let cfg = tiny();
        let trace = record_reference(2, &cfg);
        for mode in [
            LuleshMode::Vanilla,
            LuleshMode::Record,
            LuleshMode::Predict { error_rate: 0.0 },
            LuleshMode::Predict { error_rate: 0.3 },
        ] {
            let (d, stats) = run_once(mode, 2, PoolMode::Park, &cfg, Some(&trace), 1);
            assert!(d < Duration::from_secs(10));
            if mode != LuleshMode::Vanilla {
                assert_eq!(stats.regions, 60);
            }
        }
    }

    #[test]
    fn labels() {
        assert_eq!(LuleshMode::Vanilla.label(), "Vanilla");
        assert_eq!(
            LuleshMode::Predict { error_rate: 0.0 }.label(),
            "Pythia-predict"
        );
        assert!(LuleshMode::Predict { error_rate: 0.25 }
            .label()
            .contains("0.25"));
    }

    #[test]
    fn run_many_counts() {
        let cfg = tiny();
        let times = run_many(LuleshMode::Vanilla, 2, PoolMode::Park, &cfg, None, 3);
        assert_eq!(times.len(), 3);
        assert!(times.iter().all(|&t| t >= 0.0));
    }
}
