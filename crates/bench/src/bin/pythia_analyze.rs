//! `pythia-analyze` — static analysis of saved PYTHIA traces: grammar
//! linter, cross-rank MPI protocol verifier, and predictability report,
//! all computed on the compressed grammar without expanding the trace.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut out = String::new();
    let mut err = String::new();
    let code = pythia_bench::analyze_cli::run(&argv, &mut out, &mut err);
    print!("{out}");
    eprint!("{err}");
    std::process::exit(code);
}
