//! Machine-readable hot-path benchmark: measures the oracle's observe and
//! predict costs and writes them to `BENCH_predict.json` (or `--json PATH`).
//!
//! Unlike the Criterion benches (which need a statistics harness), this is
//! a plain wall-clock measurement binary meant for CI trend tracking. It
//! reports:
//!
//! * trace load time (deserialization + grammar-index construction);
//! * steady-state `observe` ns/event on a matching replay;
//! * re-seed-heavy `observe` ns/event on a corrupted replay;
//! * `predict` ns/query at several distances, for both the distance-striding
//!   implementation and the stepwise reference (`predict_scan`), plus the
//!   resulting speedup ratio — `predict_scan` is the pre-cache algorithm,
//!   so the ratio measures exactly what the caching layer buys.
//! * the hardened facade's happy-path overhead over the bare oracle (panic
//!   guard + accuracy watchdog; budgeted at < 5 %) and the per-query cost
//!   of a fully degraded (poisoned) facade.
//! * static analysis (`pythia-analyze` passes: linter + protocol verifier)
//!   on a LULESH-shaped multi-rank trace at growing iteration counts,
//!   against the naive decompress-and-scan baseline — the compressed-domain
//!   time is O(|grammar|), so it stays flat while the baseline grows with
//!   the expanded trace length.
//! * race detection and pattern matching on a racy LULESH variant, same
//!   compressed-vs-naive protocol: the happens-before summary sweep and
//!   the DFA transfer-function sweep against decompress-and-scan.
//! * multi-thread contention scaling: N independent threads (default
//!   1/8/64) each observing its own replay and each durably recording
//!   through one shared [`ConcurrentRegistry`] — the contention-free
//!   recording model promises per-thread cost tracks core availability,
//!   not thread count (no lock is taken per event). The machine's core
//!   count is reported alongside, since scaling is bounded by it.
//! * serving throughput: a sharded `pythia-serve` server with two
//!   tenants and many concurrent sessions (default 10k), driven through
//!   the in-process client with batched observe requests; aggregate
//!   events/sec is reported at each worker count (default 1 and 8)
//!   alongside the core count, since scaling is again bounded by it.
//!
//! With `--check-baseline PATH`, the run additionally compares its fresh
//! observe/durable-record/serve numbers against a committed baseline JSON
//! and exits nonzero if any regressed more than `--max-regress` percent
//! (default 25) — the CI perf smoke gate.
//!
//! Usage: `bench_json [--iters N] [--json PATH] [--threads 1,8,64]
//!         [--serve-workers 1,8] [--serve-sessions N]
//!         [--check-baseline PATH [--max-regress PCT]]`

use std::time::Instant;

use std::sync::Arc;

use pythia_bench::Args;
use pythia_core::analyze::lint::{lint_grammar, LintOptions};
use pythia_core::analyze::pattern::{match_grammar, parse, Dfa};
use pythia_core::analyze::protocol::{profile_from_events, profile_from_grammar, verify};
use pythia_core::analyze::race;
use pythia_core::analyze::ClassTable;
use pythia_core::event::{ConcurrentRegistry, EventId, EventRegistry};
use pythia_core::oracle::Oracle;
use pythia_core::persist::PersistConfig;
use pythia_core::predict::path::Path;
use pythia_core::predict::walker::{Outcome, Walker};
use pythia_core::predict::{Predictor, PredictorConfig};
use pythia_core::record::{RecordConfig, Recorder};
use pythia_core::resilience::{FaultPlan, HardenedOracle, ResilienceConfig};
use pythia_core::trace::TraceData;
use pythia_core::util::FxHashMap;
use pythia_minimpi::{Hub, ReduceOp, SocketComm, World};
use pythia_runtime_mpi::{ElasticStats, MpiMode, PythiaComm};
use pythia_serve::{Request, Response, ServeConfig, Server, SessionId, Tenants};

/// A BT-like regular trace: setup, a long nested loop, teardown (same shape
/// as `benches/predict.rs` so numbers are comparable).
fn regular_trace() -> TraceData {
    let mut rec = Recorder::new(RecordConfig {
        timestamps: false,
        validate: false,
    });
    for _ in 0..6 {
        rec.record(EventId(10));
    }
    for _ in 0..200 {
        for _ in 0..4 {
            rec.record(EventId(0));
            rec.record(EventId(1));
        }
        rec.record(EventId(2));
        rec.record(EventId(3));
    }
    rec.record(EventId(11));
    rec.finish(&EventRegistry::new()).unwrap()
}

/// A Quicksilver-like irregular trace: pseudo-random event stream.
fn irregular_trace() -> TraceData {
    let mut rec = Recorder::new(RecordConfig {
        timestamps: false,
        validate: false,
    });
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..20_000 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        rec.record(EventId((state % 24) as u32));
    }
    rec.finish(&EventRegistry::new()).unwrap()
}

/// The pre-cache observe algorithm, replicated on the public walker API as
/// a baseline: every candidate's branches are fully materialized by
/// `Walker::expand` (successor paths allocated) and *then* filtered on the
/// observed event, with fresh merge maps and vectors per call.
struct BaselineObserver<'a> {
    walker: Walker<'a>,
    candidates: Vec<(Path, f64)>,
    max_candidates: usize,
    reseeded: u64,
}

impl<'a> BaselineObserver<'a> {
    fn new(trace: &'a TraceData, index: &'a pythia_core::grammar::GrammarIndex) -> Self {
        BaselineObserver {
            walker: Walker {
                grammar: &trace.thread(0).unwrap().grammar,
                index,
            },
            candidates: Vec::new(),
            max_candidates: PredictorConfig::default().max_candidates,
            reseeded: 0,
        }
    }

    fn observe(&mut self, event: EventId) {
        if !self.walker.index.knows_event(event) {
            self.candidates.clear();
            return;
        }
        if !self.candidates.is_empty() {
            let mut branches = Vec::new();
            for (path, weight) in &self.candidates {
                let mut out = Vec::new();
                self.walker.expand(path, &mut out);
                for b in out {
                    if b.outcome == Outcome::Event(event) {
                        branches.push((b.path, weight * b.factor));
                    }
                }
            }
            if !branches.is_empty() {
                self.candidates = Self::consolidate(branches, self.max_candidates);
                return;
            }
        }
        let occs = self.walker.index.occurrences(event).unwrap_or(&[]);
        let cands: Vec<(Path, f64)> = occs
            .iter()
            .map(|&(loc, w)| (Path::seed(loc.rule, loc.pos), w))
            .collect();
        self.candidates = Self::consolidate(cands, self.max_candidates);
        self.reseeded += 1;
    }

    fn consolidate(cands: Vec<(Path, f64)>, cap: usize) -> Vec<(Path, f64)> {
        let mut merged: FxHashMap<Path, f64> = FxHashMap::default();
        for (p, w) in cands {
            *merged.entry(p).or_insert(0.0) += w;
        }
        let mut v: Vec<(Path, f64)> = merged.into_iter().collect();
        v.sort_by(|a, b| b.1.total_cmp(&a.1));
        v.truncate(cap);
        let total: f64 = v.iter().map(|&(_, w)| w).sum();
        if total > 0.0 {
            for (_, w) in &mut v {
                *w /= total;
            }
        }
        v
    }
}

/// A LULESH-shaped multi-rank trace: per iteration, each rank exchanges
/// nonblocking point-to-point messages with its ring neighbors, waits, and
/// joins an allreduce — the dominant loop compresses into a handful of
/// rules with large repetition exponents, so expanded length grows with
/// `iters` while the grammar stays near-constant.
fn lulesh_shaped_trace(ranks: i64, iters: u64) -> TraceData {
    let mut reg = EventRegistry::new();
    let mut threads = Vec::new();
    for r in 0..ranks {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: false,
            validate: false,
        });
        rec.record(reg.intern("MPI_Bcast", Some(0)));
        for _ in 0..iters {
            for n in [r - 1, r + 1] {
                if (0..ranks).contains(&n) {
                    rec.record(reg.intern("MPI_Isend", Some(n)));
                    rec.record(reg.intern("MPI_Irecv", Some(n)));
                }
            }
            rec.record(reg.intern("MPI_Waitall", None));
            rec.record(reg.intern("MPI_Allreduce", Some(8)));
        }
        rec.record(reg.intern("MPI_Barrier", Some(0)));
        threads.push(rec.finish_thread().unwrap());
    }
    TraceData::from_threads(threads, reg)
}

/// The LULESH shape with a shared-memory halo exchange per iteration:
/// every rank stores its own halo slab and loads its neighbor's inside the
/// same barrier epoch. Kept separate from [`lulesh_shaped_trace`] so the
/// protocol-analysis numbers (baseline-gated) are untouched.
fn racy_lulesh_trace(ranks: i64, iters: u64) -> TraceData {
    let mut reg = EventRegistry::new();
    let mut threads = Vec::new();
    for r in 0..ranks {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: false,
            validate: false,
        });
        rec.record(reg.intern("MPI_Bcast", Some(0)));
        for _ in 0..iters {
            rec.record(reg.intern("store", Some(r)));
            rec.record(reg.intern("load", Some((r + 1) % ranks)));
            for n in [r - 1, r + 1] {
                if (0..ranks).contains(&n) {
                    rec.record(reg.intern("MPI_Isend", Some(n)));
                    rec.record(reg.intern("MPI_Irecv", Some(n)));
                }
            }
            rec.record(reg.intern("MPI_Waitall", None));
            rec.record(reg.intern("MPI_Allreduce", Some(8)));
        }
        rec.record(reg.intern("MPI_Barrier", Some(0)));
        threads.push(rec.finish_thread().unwrap());
    }
    TraceData::from_threads(threads, reg)
}

/// Runs `f` `iters` times and returns the mean wall-clock nanoseconds of
/// one run, after one untimed warm-up run.
fn time_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let t0 = Instant::now();
    for _ in 0..iters {
        f();
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

/// Runs `f` `iters` times and returns the *minimum* wall-clock nanoseconds
/// of one run, after one untimed warm-up. Used for the baseline-gated
/// microsecond-scale grammar sweeps, whose mean is polluted by whatever
/// allocator and cache state earlier bench stages left behind — the
/// minimum is the reproducible statistic at that scale.
fn time_ns_min(iters: usize, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_nanos() as f64);
    }
    best
}

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "bench_json: measure oracle hot-path costs, write JSON\n\
             --iters N              measurement repetitions (default 20)\n\
             --json PATH            output path (default BENCH_predict.json)\n\
             --threads A,B,C        contention thread counts (default 1,8,64)\n\
             --serve-workers A,B    serve shard counts (default 1,8)\n\
             --serve-sessions N     concurrent serve sessions (default 10000)\n\
             --check-baseline PATH  compare against a committed baseline JSON\n\
             --max-regress PCT      fail threshold for the check (default 25)"
        );
        return;
    }
    let iters: usize = args.parse_or("iters", 20);
    let path = args
        .value("json")
        .unwrap_or("BENCH_predict.json")
        .to_owned();

    let regular = regular_trace();
    let irregular = irregular_trace();

    // Trace load: deserialize + prewarm the grammar index (from_bytes goes
    // through TraceData::from_threads, which builds every thread's index).
    let bytes = irregular.to_bytes();
    let load_ns = time_ns(iters, || {
        let t = TraceData::from_bytes(&bytes).expect("roundtrip");
        std::hint::black_box(t.thread(0).unwrap().index().trace_len());
    });

    // Steady-state observe: replay the reference stream (all Matched after
    // the initial seed).
    let stream: Vec<EventId> = regular.thread(0).unwrap().grammar.unfold();
    let observe_ns = time_ns(iters, || {
        let mut p = Predictor::for_thread(&regular, 0, PredictorConfig::default()).unwrap();
        for &e in &stream {
            p.observe(e);
        }
        std::hint::black_box(p.stats().matched);
    }) / stream.len() as f64;

    // Re-seed-heavy observe: corrupt every 3rd event of an irregular
    // reference replay so tracking is constantly lost and re-seeded.
    let reference: Vec<EventId> = irregular.thread(0).unwrap().grammar.unfold();
    let corrupted: Vec<EventId> = reference
        .iter()
        .take(4_000)
        .enumerate()
        .map(|(i, &e)| {
            if i % 3 == 0 {
                EventId((i % 24) as u32)
            } else {
                e
            }
        })
        .collect();
    let reseed_ns = time_ns(iters, || {
        let mut p = Predictor::for_thread(&irregular, 0, PredictorConfig::default()).unwrap();
        for &e in &corrupted {
            p.observe(e);
        }
        std::hint::black_box(p.stats().reseeded);
    }) / corrupted.len() as f64;
    let irregular_index = irregular.thread(0).unwrap().index();
    let reseed_baseline_ns = time_ns(iters, || {
        let mut p = BaselineObserver::new(&irregular, &irregular_index);
        for &e in &corrupted {
            p.observe(e);
        }
        std::hint::black_box(p.reseeded);
    }) / corrupted.len() as f64;

    // Predict: striding vs stepwise reference at several distances, on a
    // synchronized predictor over the regular trace.
    let mut p = Predictor::for_thread(&regular, 0, PredictorConfig::default()).unwrap();
    for &e in &[0u32, 1, 0, 1, 0, 1, 0, 1, 2, 3, 0, 1] {
        p.observe(EventId(e));
    }
    let mut predict_rows = Vec::new();
    for distance in [1usize, 16, 128, 512] {
        let fast_ns = time_ns(iters * 5, || {
            std::hint::black_box(p.predict(distance).most_likely());
        });
        let scan_ns = time_ns(iters * 5, || {
            std::hint::black_box(p.predict_scan(distance).most_likely());
        });
        predict_rows.push((distance, fast_ns, scan_ns));
    }

    // Resilience facade: the same observe+predict loop through the bare
    // oracle and through the hardened facade (hermetic fault plan so an
    // ambient PYTHIA_CHAOS cannot skew the numbers), plus the per-query
    // cost once the facade is poisoned and answering with the default.
    let hermetic = ResilienceConfig {
        faults: Some(FaultPlan::none()),
        ..ResilienceConfig::default()
    };
    // The two variants differ by tens of ns/event while scheduler noise in
    // a shared container moves single passes by ±10%: construct each
    // oracle once (repeated replays of the stream just keep tracking, with
    // one re-seed at the wrap), run bare/hardened passes back to back so
    // drift hits both sides of a pair alike, and report the *median* of
    // the per-pair ratios (robust against outlier passes in a way
    // independent per-side minima are not).
    let mut bare = Oracle::predict(&regular, 0, PredictorConfig::default()).unwrap();
    let mut hardened =
        HardenedOracle::try_predict(&regular, 0, PredictorConfig::default(), hermetic).unwrap();
    let mut rounds: Vec<(f64, f64)> = Vec::new();
    for _ in 0..9 {
        let b = time_ns(iters, || {
            for &e in &stream {
                bare.event(e);
                std::hint::black_box(bare.predict_event(1).most_likely());
            }
        }) / stream.len() as f64;
        let h = time_ns(iters, || {
            for &e in &stream {
                hardened.event(e);
                std::hint::black_box(hardened.predict_event(1).most_likely());
            }
        }) / stream.len() as f64;
        rounds.push((b, h));
    }
    let bare_ns = rounds.iter().map(|r| r.0).fold(f64::INFINITY, f64::min);
    let hardened_ns = rounds.iter().map(|r| r.1).fold(f64::INFINITY, f64::min);
    let mut ratios: Vec<f64> = rounds.iter().map(|&(b, h)| h / b).collect();
    ratios.sort_by(f64::total_cmp);
    let overhead_pct = (ratios[ratios.len() / 2] - 1.0) * 100.0;
    let mut poisoned = HardenedOracle::try_predict(
        &regular,
        0,
        PredictorConfig::default(),
        ResilienceConfig {
            faults: Some(FaultPlan {
                panic_on_predict: true,
                ..FaultPlan::none()
            }),
            ..ResilienceConfig::default()
        },
    )
    .unwrap();
    {
        // Trigger the poisoning panic once, with the hook silenced.
        let hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        std::hint::black_box(poisoned.predict_event(1));
        std::panic::set_hook(hook);
    }
    let degraded_ns = time_ns(iters * 5, || {
        std::hint::black_box(poisoned.predict_event(1).most_likely());
    });

    // Durability: journaling cost of a durable recorder over the plain
    // in-memory record path, on a LULESH-shaped rank-0 event stream at the
    // default flush budget (journal frames land in the page cache; no
    // per-flush fsync by default, snapshots don't fire at this length).
    // Budgeted at < 10 % per-event overhead. Plain and durable reps are
    // interleaved and summarized by the median, so filesystem jitter or a
    // scheduling hiccup lands on both sides instead of skewing the ratio.
    let lulesh = lulesh_shaped_trace(8, 8_000);
    let record_stream: Vec<EventId> = lulesh.thread(0).unwrap().grammar.unfold();
    let record_reps = iters.clamp(5, 15);
    let tmp = std::env::temp_dir().join(format!("pythia-bench-journal-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).expect("bench tmp dir");
    let trace_path = tmp.join("bench.pythia");
    let run_plain = |stream: &[EventId]| {
        let mut rec = Recorder::new(RecordConfig {
            timestamps: true,
            validate: false,
        });
        let mut t = 0u64;
        for &e in stream {
            t += 100;
            rec.record_at(e, t);
        }
        std::hint::black_box(rec.finish_thread().unwrap().event_count);
    };
    let run_durable = |stream: &[EventId], path: &std::path::Path| {
        let mut rec = Recorder::durable(
            RecordConfig {
                timestamps: true,
                validate: false,
            },
            path,
            0,
            PersistConfig::default(),
        )
        .expect("durable recorder");
        let mut t = 0u64;
        for &e in stream {
            t += 100;
            rec.record_at(e, t);
        }
        std::hint::black_box(rec.finish_thread().unwrap().event_count);
    };
    run_plain(&record_stream);
    run_durable(&record_stream, &trace_path);
    let mut plain_samples = Vec::with_capacity(record_reps);
    let mut durable_samples = Vec::with_capacity(record_reps);
    for _ in 0..record_reps {
        let t0 = Instant::now();
        run_plain(&record_stream);
        plain_samples.push(t0.elapsed().as_nanos() as f64);
        let t0 = Instant::now();
        run_durable(&record_stream, &trace_path);
        durable_samples.push(t0.elapsed().as_nanos() as f64);
    }
    let median = |samples: &mut Vec<f64>| {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        samples[samples.len() / 2]
    };
    let plain_record_ns = median(&mut plain_samples) / record_stream.len() as f64;
    let durable_record_ns = median(&mut durable_samples) / record_stream.len() as f64;
    pythia_core::persist::remove_sidecars(&trace_path);
    std::fs::remove_dir_all(&tmp).ok();

    // Communicator backends (elastic worlds): the recording facade's
    // per-event cost over the in-process threads backend vs the socket
    // backend (the transport that hosts real multi-process rank-crash
    // recovery) — the same `PythiaComm` world shape on both, so the row
    // pair prices exactly what the transport choice costs. Each rank of
    // a 4-rank world records `comm_ops` allreduces in record mode;
    // ns/event is wall clock over one rank's event count (ranks run
    // concurrently). The runs double as the fault-free elastic audit:
    // every rank's `ElasticStats` and the hub's failure counters must
    // come back zero — nonzero means the failure detector fired or a
    // replacement rank was admitted while being measured.
    let comm_ranks = 4usize;
    let comm_ops = 2_000u64;
    let comm_mode = MpiMode::Record { timestamps: false };
    let threads_registry = PythiaComm::registry_for(&comm_mode);
    let t0 = Instant::now();
    let comm_reports = {
        let mode = &comm_mode;
        let registry = &threads_registry;
        World::run(comm_ranks, move |comm| {
            let pc = PythiaComm::wrap(comm, mode, Arc::clone(registry));
            for _ in 0..comm_ops {
                std::hint::black_box(pc.allreduce(&[1i64], ReduceOp::Sum));
            }
            pc.finish().expect("threads rank report")
        })
    };
    let threads_comm_ns = t0.elapsed().as_nanos() as f64 / comm_ops as f64;

    let comm_dir = std::env::temp_dir().join(format!("pythia-bench-comm-{}", std::process::id()));
    std::fs::create_dir_all(&comm_dir).expect("bench tmp dir");
    let sock_path = comm_dir.join("world.sock");
    let hub = {
        let path = sock_path.clone();
        std::thread::spawn(move || Hub::serve(&path, comm_ranks, false).expect("bench hub"))
    };
    while !sock_path.exists() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
    let socket_registry = PythiaComm::registry_for(&comm_mode);
    let t0 = Instant::now();
    let socket_reports: Vec<_> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..comm_ranks)
            .map(|rank| {
                let path = &sock_path;
                let mode = &comm_mode;
                let registry = &socket_registry;
                s.spawn(move || {
                    let comm =
                        SocketComm::connect(path, rank, comm_ranks, 0).expect("connect to hub");
                    let pc = PythiaComm::wrap(comm, mode, Arc::clone(registry));
                    for _ in 0..comm_ops {
                        std::hint::black_box(pc.allreduce(&[1i64], ReduceOp::Sum));
                    }
                    let (report, comm) = pc.finish_into().expect("socket rank report");
                    comm.bye().expect("clean goodbye");
                    report
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("socket rank"))
            .collect()
    });
    let socket_comm_ns = t0.elapsed().as_nanos() as f64 / comm_ops as f64;
    let hub_stats = hub.join().expect("bench hub thread");
    std::fs::remove_dir_all(&comm_dir).ok();
    let mut elastic_totals = ElasticStats::default();
    for r in comm_reports.iter().chain(&socket_reports) {
        elastic_totals.rank_failures_detected += r.elastic.rank_failures_detected;
        elastic_totals.ranks_replaced += r.elastic.ranks_replaced;
        elastic_totals.remap_validations += r.elastic.remap_validations;
    }
    let elastic_clean = elastic_totals == ElasticStats::default()
        && hub_stats.failures_detected == 0
        && hub_stats.ranks_replaced == 0;

    // Multi-thread contention: the scaling curve of the contention-free
    // hot path. Each thread owns its complete per-thread state (a
    // Predictor replaying the reference on the observe side; a durable
    // Recorder with its own journal on the record side) and all recording
    // threads share one ConcurrentRegistry, interning an already-known
    // name per event to exercise the lock-free registry read path. With
    // no per-event lock anywhere, per-thread ns/event should track core
    // availability rather than thread count; aggregate throughput scaling
    // (relative to the 1-thread row) is bounded by `cores`, which is
    // reported alongside so the curve is interpretable on any machine.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let thread_counts: Vec<usize> = args.parse_list("threads", &[1usize, 8, 64]);
    let contend_dir =
        std::env::temp_dir().join(format!("pythia-bench-contend-{}", std::process::id()));
    std::fs::create_dir_all(&contend_dir).expect("bench tmp dir");
    let replays = (20_000 / stream.len()).max(1);
    let contend_observe_events = replays * stream.len();
    let contend_record_events = 20_000usize;
    let observe_pass = |threads: usize| -> f64 {
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|| {
                    let mut p =
                        Predictor::for_thread(&regular, 0, PredictorConfig::default()).unwrap();
                    for _ in 0..replays {
                        for &e in &stream {
                            p.observe(e);
                        }
                    }
                    std::hint::black_box(p.stats().matched);
                });
            }
        });
        t0.elapsed().as_nanos() as f64
    };
    let record_pass = |threads: usize| -> f64 {
        let registry = Arc::new(ConcurrentRegistry::new());
        for d in 0..8 {
            registry.intern("contend", Some(d));
        }
        let path = contend_dir.join("contend.pythia");
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for rank in 0..threads {
                let registry = Arc::clone(&registry);
                let path = &path;
                s.spawn(move || {
                    let persist = PersistConfig {
                        registry: Some(Arc::clone(&registry)),
                        ..PersistConfig::default()
                    };
                    let mut rec = Recorder::durable(
                        RecordConfig {
                            timestamps: true,
                            validate: false,
                        },
                        path,
                        rank,
                        persist,
                    )
                    .expect("durable recorder");
                    rec.reserve(contend_record_events);
                    let mut t = 0u64;
                    for i in 0..contend_record_events {
                        // Hot-path intern: the name is known, so this is a
                        // lock-free read of the shared registry.
                        let id = registry.intern("contend", Some((i % 8) as i64));
                        t += 100;
                        rec.record_at(id, t);
                    }
                    std::hint::black_box(rec.finish_thread().unwrap().event_count);
                });
            }
        });
        t0.elapsed().as_nanos() as f64
    };
    let mut contention_rows = Vec::new();
    let mut base_throughput: Option<(f64, f64)> = None;
    for &threads in &thread_counts {
        let wall_obs = (0..2)
            .map(|_| observe_pass(threads))
            .fold(f64::INFINITY, f64::min);
        let wall_rec = (0..2)
            .map(|_| record_pass(threads))
            .fold(f64::INFINITY, f64::min);
        let obs_ns = wall_obs / contend_observe_events as f64;
        let rec_ns = wall_rec / contend_record_events as f64;
        // Aggregate events per nanosecond across all threads.
        let obs_tp = (threads * contend_observe_events) as f64 / wall_obs;
        let rec_tp = (threads * contend_record_events) as f64 / wall_rec;
        let (obs_base, rec_base) = *base_throughput.get_or_insert((obs_tp, rec_tp));
        contention_rows.push(serde_json::json!({
            "threads": threads,
            "observe_ns_per_event_per_thread": obs_ns,
            "durable_record_ns_per_event_per_thread": rec_ns,
            "observe_throughput_scaling": obs_tp / obs_base,
            "record_throughput_scaling": rec_tp / rec_base,
        }));
    }
    std::fs::remove_dir_all(&contend_dir).ok();

    // Serving: a sharded two-tenant server under many concurrent sessions,
    // driven through the in-process client (full wire encode/decode both
    // ways, minus only the kernel). Each driver thread owns a slice of the
    // sessions and ships the reference stream in 64-event observe batches,
    // so a session stays synchronized across rounds and the per-request
    // cost is dominated by the batched walker, not re-seeding. Aggregate
    // events/sec per worker count is the headline number; scaling relative
    // to the 1-worker row is bounded by `cores`, reported alongside.
    let serve_workers: Vec<usize> = args.parse_list("serve-workers", &[1usize, 8]);
    let serve_sessions: usize = args.parse_or("serve-sessions", 10_000);
    let serve_batch = 64usize;
    let serve_rounds = 4usize;
    let serve_streams = [&stream, &reference];
    let mut serve_rows = Vec::new();
    let mut serve_base_eps: Option<f64> = None;
    let mut serve_gate_ns: Option<f64> = None;
    for &workers in &serve_workers {
        let tenants = Tenants::from_traces([
            ("regular".to_string(), regular_trace()),
            ("irregular".to_string(), irregular_trace()),
        ])
        .expect("serve tenants");
        let server = Server::start(
            tenants,
            ServeConfig {
                workers,
                max_sessions_per_shard: serve_sessions + 1,
                ..ServeConfig::default()
            },
        )
        .expect("serve server");
        let client = server.client();
        let sessions: Vec<SessionId> = (0..serve_sessions)
            .map(|i| {
                let tenant = if i % 2 == 0 { "regular" } else { "irregular" };
                match client.call(&Request::Open {
                    tenant: tenant.into(),
                    durable: false,
                }) {
                    Ok(Response::Session { id }) => id,
                    other => panic!("serve bench open failed: {other:?}"),
                }
            })
            .collect();
        let drivers = workers;
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for d in 0..drivers {
                let client = server.client();
                let sessions = &sessions;
                let serve_streams = &serve_streams;
                s.spawn(move || {
                    for round in 0..serve_rounds {
                        for (i, &id) in sessions.iter().enumerate().skip(d).step_by(drivers) {
                            let tenant_stream = serve_streams[i % 2];
                            let start = (round * serve_batch) % (tenant_stream.len() - serve_batch);
                            let events = tenant_stream[start..start + serve_batch].to_vec();
                            match client.call(&Request::Observe {
                                session: id,
                                events,
                            }) {
                                Ok(Response::Advice { .. }) => {}
                                other => panic!("serve bench observe failed: {other:?}"),
                            }
                        }
                    }
                });
            }
        });
        let wall_ns = t0.elapsed().as_nanos() as f64;
        let stats = server.router().stats();
        drop(client);
        drop(server);
        let total_events = (serve_sessions * serve_rounds * serve_batch) as f64;
        let eps = total_events * 1e9 / wall_ns;
        let base = *serve_base_eps.get_or_insert(eps);
        serve_gate_ns.get_or_insert(wall_ns / total_events);
        serve_rows.push(serde_json::json!({
            "workers": workers,
            "sessions": serve_sessions,
            "events": total_events as u64,
            "events_per_sec": eps,
            "ns_per_event": wall_ns / total_events,
            "throughput_scaling": eps / base,
            // Robustness counters (PR 8): overload shedding and durable-
            // journal health. All must be zero in this fault-free bench;
            // nonzero values flag a server that shed load or lost journal
            // writes while being measured.
            "busy_rejects": stats.busy_rejects,
            "rejected_opens": stats.rejected_opens,
            "evicted_sessions": stats.evicted_sessions,
            "resumed_sessions": stats.resumed_sessions,
            "journal_errors": stats.journal_errors,
            "journal_dropped_events": stats.journal_dropped_events,
        }));
    }

    // Static analysis: linter + protocol verifier in the compressed domain
    // vs the same verdict computed by decompress-and-scan, at growing
    // iteration counts. The grammar barely changes as iterations multiply,
    // so the compressed-domain time should stay flat (O(|grammar|)) while
    // the naive baseline tracks the expanded length.
    let mut analyze_rows = Vec::new();
    for loop_iters in [1_000u64, 10_000, 100_000] {
        let trace = lulesh_shaped_trace(8, loop_iters);
        let classes = ClassTable::from_registry(trace.registry());
        let events: u64 = trace.threads().iter().map(|t| t.event_count).sum();
        let grammar_size: u64 = trace
            .threads()
            .iter()
            .map(|t| {
                t.grammar
                    .iter_rules()
                    .map(|(_, rule)| rule.body.len() as u64)
                    .sum::<u64>()
            })
            .sum();
        let reps = iters.clamp(3, 10);
        let analyze_ns = time_ns(reps, || {
            let mut profiles = Vec::new();
            for t in trace.threads() {
                let diags = lint_grammar(
                    &t.grammar,
                    &LintOptions {
                        expected_events: Some(t.event_count),
                        annotate_positions: false,
                    },
                );
                assert!(diags.is_empty());
                profiles.push(profile_from_grammar(&t.grammar, &classes));
            }
            std::hint::black_box(verify(&profiles).len());
        });
        let naive_ns = time_ns(reps, || {
            let mut profiles = Vec::new();
            for t in trace.threads() {
                let expanded = t.grammar.unfold();
                profiles.push(profile_from_events(expanded.iter().copied(), &classes));
            }
            std::hint::black_box(verify(&profiles).len());
        });
        analyze_rows.push(serde_json::json!({
            "loop_iters": loop_iters,
            "events": events,
            "grammar_size": grammar_size,
            "analyze_ns": analyze_ns,
            "naive_decompress_scan_ns": naive_ns,
            "speedup": naive_ns / analyze_ns,
        }));
    }

    // Race detection and pattern matching (PR 9), same protocol: the
    // summary/transfer-function sweeps are O(|grammar|), so their time
    // stays flat while the decompress-and-scan baseline grows with the
    // expanded length. Measured on a racy LULESH variant (per-iteration
    // same-epoch halo store/load pairs).
    let mut race_rows = Vec::new();
    let mut pattern_rows = Vec::new();
    for loop_iters in [1_000u64, 10_000, 100_000] {
        let trace = racy_lulesh_trace(8, loop_iters);
        let classes = ClassTable::from_registry(trace.registry());
        let events: u64 = trace.threads().iter().map(|t| t.event_count).sum();
        // The compressed sweeps are grammar-sized (microseconds), so they
        // afford two orders of magnitude more repetitions than the naive
        // scans; the gated numbers take the minimum over those runs.
        let reps = iters.clamp(3, 10);
        let race_ns = time_ns_min(reps * 100, || {
            let summaries: Vec<_> = trace
                .threads()
                .iter()
                .map(|t| race::summary_from_grammar(&t.grammar, &classes))
                .collect();
            std::hint::black_box(race::detect(&summaries).len());
        });
        let race_naive_ns = time_ns(reps, || {
            let summaries: Vec<_> = trace
                .threads()
                .iter()
                .map(|t| race::summary_from_events(t.grammar.unfold(), &classes))
                .collect();
            std::hint::black_box(race::detect(&summaries).len());
        });
        race_rows.push(serde_json::json!({
            "loop_iters": loop_iters,
            "events": events,
            "race_ns": race_ns,
            "naive_decompress_scan_ns": race_naive_ns,
            "speedup": race_naive_ns / race_ns,
        }));

        let query = "MPI_Isend ~8 MPI_Waitall";
        let dfa = Dfa::compile(&parse(query).unwrap(), trace.registry()).unwrap();
        let match_ns = time_ns_min(reps * 100, || {
            let total: u64 = trace
                .threads()
                .iter()
                .map(|t| match_grammar(&t.grammar, &dfa).count)
                .sum();
            std::hint::black_box(total);
        });
        let match_naive_ns = time_ns(reps, || {
            let total: u64 = trace
                .threads()
                .iter()
                .map(|t| dfa.match_events(t.grammar.unfold()).count)
                .sum();
            std::hint::black_box(total);
        });
        pattern_rows.push(serde_json::json!({
            "loop_iters": loop_iters,
            "events": events,
            "query": query,
            "match_ns": match_ns,
            "naive_decompress_scan_ns": match_naive_ns,
            "speedup": match_naive_ns / match_ns,
        }));
    }

    let last_speedup = |rows: &[serde_json::Value]| {
        rows.last()
            .and_then(|r| r.get("speedup"))
            .and_then(|v| v.as_f64())
            .unwrap_or(0.0)
    };
    let race_speedup = last_speedup(&race_rows);
    let pattern_speedup = last_speedup(&pattern_rows);

    let predict_json: Vec<serde_json::Value> = predict_rows
        .iter()
        .map(|&(d, fast, scan)| {
            serde_json::json!({
                "distance": d,
                "predict_ns": fast,
                "predict_scan_ns": scan,
                "speedup": scan / fast,
            })
        })
        .collect();
    let resilience_json = serde_json::json!({
        "bare_observe_predict_ns_per_event": bare_ns,
        "hardened_observe_predict_ns_per_event": hardened_ns,
        "hardened_overhead_pct": overhead_pct,
        "degraded_predict_ns": degraded_ns,
    });
    let persist_json = serde_json::json!({
        "record_events": record_stream.len(),
        "plain_record_ns_per_event": plain_record_ns,
        "durable_record_ns_per_event": durable_record_ns,
        "journal_overhead_pct": (durable_record_ns / plain_record_ns - 1.0) * 100.0,
    });
    let communicator_rows = vec![
        serde_json::json!({ "backend": "threads", "allreduce_ns_per_event": threads_comm_ns }),
        serde_json::json!({ "backend": "socket", "allreduce_ns_per_event": socket_comm_ns }),
    ];
    // Fault-free elastic audit: all five must be zero (gated under
    // --check-baseline).
    let elastic_counters = serde_json::json!({
        "rank_failures_detected": elastic_totals.rank_failures_detected,
        "ranks_replaced": elastic_totals.ranks_replaced,
        "remap_validations": elastic_totals.remap_validations,
        "hub_failures_detected": hub_stats.failures_detected,
        "hub_ranks_replaced": hub_stats.ranks_replaced,
    });
    let communicator_json = serde_json::json!({
        "ranks": comm_ranks,
        "ops_per_rank": comm_ops,
        "rows": communicator_rows,
        "elastic_counters": elastic_counters,
    });
    let doc = serde_json::json!({
        "bench": "oracle_hot_path",
        "iters": iters,
        "trace_load_ms": load_ns / 1e6,
        "observe_ns_per_event": observe_ns,
        "observe_reseed_heavy_ns_per_event": reseed_ns,
        "observe_reseed_heavy_baseline_ns_per_event": reseed_baseline_ns,
        "observe_reseed_heavy_speedup": reseed_baseline_ns / reseed_ns,
        "predict": predict_json,
        "resilience": resilience_json,
        "persist": persist_json,
        "communicator": communicator_json,
        "contention": serde_json::json!({
            "cores": cores,
            "events_per_thread_observe": contend_observe_events,
            "events_per_thread_record": contend_record_events,
            "rows": contention_rows,
        }),
        "serve": serde_json::json!({
            "cores": cores,
            "tenants": 2,
            "batch": serve_batch,
            "rows": serve_rows,
        }),
        "analyze": serde_json::Value::Array(analyze_rows),
        "race": serde_json::Value::Array(race_rows),
        "pattern": serde_json::Value::Array(pattern_rows),
    });
    let text = serde_json::to_string_pretty(&doc).expect("serialize");
    std::fs::write(&path, &text).expect("write json");

    println!("{text}");
    eprintln!("wrote {path}");

    // CI perf gate: compare this run's hot-path numbers against a
    // committed baseline and fail loudly on a regression beyond the
    // threshold. Only the two headline per-event costs are gated — the
    // other metrics are trend-tracked but too noisy (ratios of
    // sub-microsecond quantities) to block CI on.
    if let Some(base_path) = args.value("check-baseline") {
        let max_regress: f64 = args.parse_or("max-regress", 25.0);
        let base: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(base_path).expect("read baseline json"))
                .expect("parse baseline json");
        let mut failures = Vec::new();
        let mut gate = |name: &str, now: f64, was: Option<f64>| match was {
            Some(was) if was > 0.0 => {
                let pct = (now / was - 1.0) * 100.0;
                eprintln!("baseline {name}: {was:.2} -> {now:.2} ns/event ({pct:+.1}%)");
                if pct > max_regress {
                    failures.push(format!(
                        "{name} regressed {pct:+.1}% (budget {max_regress}%)"
                    ));
                }
            }
            _ => eprintln!("baseline {name}: absent, skipped"),
        };
        gate(
            "observe_ns_per_event",
            observe_ns,
            base.get("observe_ns_per_event").and_then(|v| v.as_f64()),
        );
        gate(
            "persist.durable_record_ns_per_event",
            durable_record_ns,
            base.get("persist")
                .and_then(|p| p.get("durable_record_ns_per_event"))
                .and_then(|v| v.as_f64()),
        );
        // Communicator rows: the facade's per-allreduce cost on each
        // backend, against the committed baseline.
        let comm_base = |i: usize| {
            base.get("communicator")
                .and_then(|c| c.get("rows"))
                .and_then(|r| r.as_array())
                .and_then(|a| a.get(i))
                .and_then(|r| r.get("allreduce_ns_per_event"))
                .and_then(|v| v.as_f64())
        };
        gate(
            "communicator.rows[0].allreduce_ns_per_event (threads)",
            threads_comm_ns,
            comm_base(0),
        );
        gate(
            "communicator.rows[1].allreduce_ns_per_event (socket)",
            socket_comm_ns,
            comm_base(1),
        );
        // The serve gate compares the first worker-count row (the least
        // scheduler-sensitive one) by its amortized per-event cost.
        if let Some(now) = serve_gate_ns {
            gate(
                "serve.rows[0].ns_per_event",
                now,
                base.get("serve")
                    .and_then(|s| s.get("rows"))
                    .and_then(|r| r.as_array())
                    .and_then(|a| a.first())
                    .and_then(|r| r.get("ns_per_event"))
                    .and_then(|v| v.as_f64()),
            );
        }
        // The compressed race/pattern sweeps must keep their asymptotic
        // edge over decompress-and-scan at the largest trace size. Gated
        // as an absolute speedup floor rather than ns-vs-baseline: the
        // ratio is taken within one run, so it survives the bimodal
        // machine speeds of shared single-core CI boxes, and it only
        // collapses (towards 1×) if a sweep loses its O(|grammar|)
        // asymptotics. The floors sit far below the committed rows
        // (race ~5000×, pattern ~180× at 6M events) but far above any
        // accidentally-expanding implementation.
        for (name, speedup, floor) in [
            ("race", race_speedup, 1000.0),
            ("pattern", pattern_speedup, 64.0),
        ] {
            eprintln!("baseline {name}.rows[2].speedup: {speedup:.0}x (floor {floor:.0}x)");
            if speedup < floor {
                failures.push(format!(
                    "{name} compressed sweep fell to {speedup:.0}x over naive scan \
                     (floor {floor:.0}x) — O(|grammar|) asymptotics lost?"
                ));
            }
        }
        // Elastic counters must be zero in a fault-free bench run: a
        // nonzero value means the rank-failure detector fired (or a
        // replacement rank was admitted) while being measured.
        eprintln!(
            "baseline communicator.elastic_counters: {}",
            if elastic_clean { "all zero" } else { "NONZERO" }
        );
        if !elastic_clean {
            failures.push(format!(
                "fault-free run reported nonzero elastic counters: {elastic_totals:?}, \
                 hub failures={} replaced={}",
                hub_stats.failures_detected, hub_stats.ranks_replaced
            ));
        }
        if !failures.is_empty() {
            eprintln!("perf regression vs {base_path}:");
            for f in &failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        eprintln!("baseline check passed (budget {max_regress}%)");
    }
}
