//! Crash-recovery driver for CI: records a durable multi-rank reference
//! run with deliberately tight flush/snapshot budgets, printing a progress
//! marker as it goes so a harness can `kill -9` the process mid-run and
//! then exercise `pythia-analyze recover` on the surviving sidecars.
//!
//! ```sh
//! crash_record TRACE [RANKS] [EVENTS_PER_RANK]
//! ```
//!
//! Each rank submits an iteration-structured stream of custom events (the
//! shape a stencil solver produces), so the recovered grammar is a real
//! compressed loop nest, not noise. If the process survives to the end it
//! finalizes normally and prints `finalized`; a crash-recovery harness
//! should kill it long before that.

use std::io::Write;

use pythia_core::persist::PersistConfig;
use pythia_minimpi::World;
use pythia_runtime_mpi::RecordingSession;

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(trace_path) = argv.first() else {
        eprintln!("usage: crash_record TRACE [RANKS] [EVENTS_PER_RANK]");
        std::process::exit(2);
    };
    let ranks: usize = argv.get(1).map_or(2, |s| s.parse().expect("RANKS"));
    let events: u64 = argv
        .get(2)
        .map_or(50_000_000, |s| s.parse().expect("EVENTS_PER_RANK"));

    let session = RecordingSession::with_persist(
        trace_path,
        false,
        PersistConfig {
            flush_events: 64,
            flush_bytes: 4 << 10,
            snapshot_events: 4096,
            ..PersistConfig::default()
        },
    );
    let reports = World::run(ranks, |comm| {
        let rank = comm.rank();
        let pc = session.wrap(comm).expect("create journal");
        for i in 0..events {
            // A 3-phase iteration with a nested exchange loop: compresses
            // into a deep rule hierarchy, exercising checkpoint replay.
            pc.custom_event("compute", Some((i % 7) as i64));
            for peer in 0..3i64 {
                pc.custom_event("exchange", Some(peer));
            }
            pc.custom_event("reduce", None);
            if rank == 0 && i % 1024 == 0 {
                println!("progress events={}", i * 5);
                std::io::stdout().flush().ok();
            }
        }
        pc.finish().expect("finish rank")
    });
    let trace = session.finalize(reports).expect("finalize");
    println!("finalized events={}", trace.total_events());
}
