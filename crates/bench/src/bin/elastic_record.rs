//! Elastic multi-process recording driver for CI: the socket backend's
//! rank-crash recovery, exercised with real OS processes.
//!
//! Subcommands (one process each; a harness composes them):
//!
//! ```sh
//! elastic_record hub SOCKET RANKS            # serve an elastic world
//! elastic_record worker SOCKET TRACE RANK RANKS EVENTS [INCARNATION [SPAN]]
//! elastic_record assemble TRACE              # sidecars -> final trace file
//! elastic_record threads TRACE RANKS EVENTS  # elastic threads world
//! ```
//!
//! Each worker connects to the hub as one world rank, records an
//! iteration-structured event stream through a durable
//! [`RecordingSession`], and leaves its journal/checkpoint sidecars in
//! place (no single process sees every rank's report, so finalization
//! is a separate `assemble` step over the sidecars). A harness `kill
//! -9`s a worker mid-record, then launches a replacement with
//! `INCARNATION=1`: the replacement salvages the dead rank's journal,
//! resumes at the exact event it died at, and the assembled trace is
//! byte-identical to a fault-free run's.
//!
//! Registry discipline: every worker interns the full event vocabulary
//! in the same deterministic warm-up order before recording, so the
//! per-process registries — and therefore the journaled event ids —
//! agree across processes without any cross-process registry service.
//!
//! `worker`'s optional SPAN hosts SPAN consecutive ranks (RANK..RANK+SPAN)
//! inside one process, one thread per rank over its own hub connection —
//! the ci.sh socket smoke runs an 8-rank world as 2 processes x 4 ranks.
//!
//! `threads` runs the whole world in-process on the elastic threads
//! backend instead, with rank faults injected from the ambient
//! `PYTHIA_CHAOS` plan — the ci.sh rank-chaos sweep (panic / hang /
//! disconnect) runs it under each plan and byte-compares the finalized
//! trace against a fault-free run.

use std::io::Write;
use std::path::Path;

use pythia_core::persist::{remove_sidecars, PersistConfig};
use pythia_minimpi::{Hub, SocketComm, World};
use pythia_runtime_mpi::{RecordingSession, SharedRegistry};

/// Events per iteration of the recorded loop (compute + 3-peer exchange
/// + reduce), mirroring `crash_record`'s stencil shape.
const STEP_MOD: i64 = 7;

fn warm_up(registry: &SharedRegistry) {
    // Deterministic interning order shared by every worker process: the
    // journaled registry deltas of all ranks must describe the same
    // global descriptor sequence for `assemble` to merge them.
    for p in 0..STEP_MOD {
        registry.intern("step", Some(p));
    }
    registry.intern("MPI_Barrier", None);
}

fn persist() -> PersistConfig {
    PersistConfig {
        // Journal every event: a replacement must salvage the dead
        // rank's complete prefix for byte-identical recovery.
        flush_events: 1,
        ..PersistConfig::default()
    }
}

fn run_hub(socket: &Path, ranks: usize) {
    let stats = Hub::serve(socket, ranks, true).expect("hub serve");
    println!(
        "hub done failures={} replaced={}",
        stats.failures_detected, stats.ranks_replaced
    );
}

fn run_workers(
    socket: &Path,
    trace: &Path,
    first: usize,
    ranks: usize,
    events: u64,
    inc: u64,
    span: usize,
) {
    std::thread::scope(|s| {
        for rank in first..first + span {
            s.spawn(move || run_worker(socket, trace, rank, ranks, events, inc));
        }
    });
}

fn run_worker(socket: &Path, trace: &Path, rank: usize, ranks: usize, events: u64, inc: u64) {
    let comm = SocketComm::connect(socket, rank, ranks, inc).expect("connect to hub");
    let session = RecordingSession::with_persist(trace, false, persist());
    warm_up(session.registry());
    let (pc, resumed) = session.wrap_or_resume(comm).expect("wrap rank");
    for i in resumed..events {
        pc.custom_event("step", Some((i as i64) % STEP_MOD));
        if i % 256 == 0 {
            println!("progress rank={rank} events={i}");
            std::io::stdout().flush().ok();
        }
    }
    pc.barrier();
    let (report, comm) = pc.finish_into().expect("finish rank");
    println!(
        "done rank={rank} events={} rules={} resumed={resumed} replaced={}",
        report.events, report.rules, report.elastic.ranks_replaced
    );
    comm.bye().ok();
}

fn run_threads(trace: &Path, ranks: usize, events: u64) {
    let session = RecordingSession::with_persist(trace, false, persist());
    warm_up(session.registry());
    let (reports, stats) = World::run_elastic(ranks, |comm| {
        let (pc, resumed) = session.wrap_or_resume(comm).expect("wrap rank");
        for i in resumed..events {
            pc.custom_event("step", Some((i as i64) % STEP_MOD));
        }
        pc.barrier();
        pc.finish().expect("finish rank")
    })
    .expect("elastic threads world");
    let replaced: u64 = reports.iter().map(|r| r.elastic.ranks_replaced).sum();
    let data = session.finalize(reports).expect("finalize trace");
    println!(
        "threads done ranks={} events={} replaced={replaced} \
         world_failures={} world_replaced={}",
        data.thread_count(),
        data.total_events(),
        stats.failures_detected,
        stats.ranks_replaced
    );
}

fn run_assemble(trace: &Path) {
    let (data, report) = RecordingSession::recover(trace).expect("recover sidecars");
    data.save(trace).expect("save assembled trace");
    remove_sidecars(trace);
    for r in 0..data.thread_count() {
        let t = data.thread(r).unwrap();
        println!(
            "rank={r} events={} rules={}",
            t.event_count,
            t.grammar.rule_count()
        );
    }
    println!(
        "assembled ranks={} events={} warnings={}",
        data.thread_count(),
        data.total_events(),
        report.has_warnings()
    );
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let usage = || -> ! {
        eprintln!(
            "usage: elastic_record hub SOCKET RANKS\n\
             \x20      elastic_record worker SOCKET TRACE RANK RANKS EVENTS [INCARNATION [SPAN]]\n\
             \x20      elastic_record assemble TRACE\n\
             \x20      elastic_record threads TRACE RANKS EVENTS"
        );
        std::process::exit(2);
    };
    match argv.first().map(String::as_str) {
        Some("hub") if argv.len() >= 3 => {
            let ranks = argv[2].parse().unwrap_or_else(|_| usage());
            run_hub(Path::new(&argv[1]), ranks);
        }
        Some("worker") if argv.len() >= 6 => {
            let rank = argv[3].parse().unwrap_or_else(|_| usage());
            let ranks = argv[4].parse().unwrap_or_else(|_| usage());
            let events = argv[5].parse().unwrap_or_else(|_| usage());
            let inc = argv
                .get(6)
                .map_or(0, |s| s.parse().unwrap_or_else(|_| usage()));
            let span = argv
                .get(7)
                .map_or(1, |s| s.parse().unwrap_or_else(|_| usage()));
            run_workers(
                Path::new(&argv[1]),
                Path::new(&argv[2]),
                rank,
                ranks,
                events,
                inc,
                span,
            );
        }
        Some("assemble") if argv.len() >= 2 => run_assemble(Path::new(&argv[1])),
        Some("threads") if argv.len() >= 4 => {
            let ranks = argv[2].parse().unwrap_or_else(|_| usage());
            let events = argv[3].parse().unwrap_or_else(|_| usage());
            run_threads(Path::new(&argv[1]), ranks, events);
        }
        _ => usage(),
    }
}
