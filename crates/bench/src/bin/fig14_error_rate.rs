//! **Fig. 14** — LULESH (problem size 30) execution time as a function of
//! the injected unexpected-event rate (§III-E resilience experiment).
//!
//! The modified runtime randomly submits events that never occurred in the
//! reference execution. At low rates PYTHIA-PREDICT keeps its advantage
//! over Vanilla/PYTHIA-RECORD; as the rate grows, predictions degrade and
//! the runtime falls back to maximum threads for small regions, eroding
//! the benefit — the paper's Fig. 14 trend.
//!
//! Usage: `fig14_error_rate [--rates 0,0.1,...] [--threads N] [--size N]
//! [--steps N] [--runs N] [--ns-per-unit N] [--json P]`

use pythia_apps::lulesh_omp::LuleshOmpConfig;
use pythia_bench::lulesh::{record_reference, run_many, LuleshMode};
use pythia_bench::{maybe_write_json, min_mean_max, Args, Table};
use pythia_minomp::PoolMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "fig14_error_rate: reproduce Fig. 14 (time vs error rate)\n\
             --rates LIST    injection rates (default 0,0.05,0.1,0.2,0.3,0.5)\n\
             --threads N     max threads (default 24)\n\
             --size N        problem size (default 30)\n\
             --steps N       time steps (default 10)\n\
             --runs N        repetitions (default 3)\n\
             --ns-per-unit N compute scale (default 20)\n\
             --json PATH     write results as JSON"
        );
        return;
    }
    let rates: Vec<f64> = args.parse_list("rates", &[0.0, 0.05, 0.1, 0.2, 0.3, 0.5]);
    let threads: usize = args.parse_or("threads", 24);
    let size: u64 = args.parse_or("size", 30);
    let steps: usize = args.parse_or("steps", 10);
    let runs: usize = args.parse_or("runs", 3);
    let ns_per_unit: u64 = args.parse_or("ns-per-unit", 20);

    let cfg = LuleshOmpConfig {
        problem_size: size,
        steps,
        ns_per_unit,
    };
    let trace = record_reference(threads, &cfg);

    // Baselines (error rate does not apply to them).
    let vanilla = run_many(
        LuleshMode::Vanilla,
        threads,
        PoolMode::Park,
        &cfg,
        None,
        runs,
    );
    let record = run_many(
        LuleshMode::Record,
        threads,
        PoolMode::Park,
        &cfg,
        None,
        runs,
    );
    let (_, v, _) = min_mean_max(&vanilla);
    let (_, r, _) = min_mean_max(&record);

    println!("Fig. 14: LULESH (s={size}) time vs unexpected-event rate ({threads} threads)\n");
    println!("baselines: Vanilla {v:.4}s, Pythia-record {r:.4}s\n");
    let mut table = Table::new(&[
        "error rate",
        "Pythia-predict (s)",
        "vs Vanilla (%)",
        "uninformed predictions",
    ]);
    let mut json_rows = Vec::new();
    for &rate in &rates {
        let mut times = Vec::new();
        let mut uninformed = 0u64;
        for i in 0..runs {
            let (d, stats) = pythia_bench::lulesh::run_once(
                LuleshMode::Predict { error_rate: rate },
                threads,
                PoolMode::Park,
                &cfg,
                Some(&trace),
                2000 + i as u64,
            );
            times.push(d.as_secs_f64());
            uninformed = stats.uninformed;
        }
        let (_, p, _) = min_mean_max(&times);
        let gain = (v - p) / v * 100.0;
        table.row(vec![
            format!("{rate:.2}"),
            format!("{p:.4}"),
            format!("{gain:+.1}"),
            uninformed.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "error_rate": rate,
            "threads": threads,
            "predict_s": p,
            "vanilla_s": v,
            "record_s": r,
            "gain_pct": gain,
            "uninformed": uninformed,
        }));
    }
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "fig14": json_rows }));
}
