//! **Extension** — the paper's stated future work (§V: "Further
//! investigations are needed to make Pythia able to predict accurately
//! when the application runs with different configuration (number of
//! threads, number of processes)").
//!
//! A first approximation is implemented in
//! [`pythia_runtime_mpi::MpiMode::predict_mapped`]: when a run uses more
//! ranks than the reference execution recorded, rank `r` follows trace
//! thread `r mod threads`. This bench quantifies how far that gets per
//! application: kernels whose per-rank behavior is position-independent
//! (collective-only, ring patterns) keep high accuracy, while kernels
//! whose event stream depends on the grid position (wavefronts, boundary
//! ranks) degrade — the open problem the paper points at.
//!
//! Usage: `extension_config [--from N] [--to N] [--json P]`

use std::sync::Arc;

use pythia_apps::harness::{record_trace, run_app};
use pythia_apps::work::WorkScale;
use pythia_apps::{all_apps, WorkingSet};
use pythia_bench::{maybe_write_json, Args, Table};
use pythia_runtime_mpi::MpiMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "extension_config: cross-rank-count prediction (paper future work)\n\
             --from N    ranks of the reference execution (default 4)\n\
             --to N      ranks of the predicted execution (default 8)\n\
             --json PATH write results as JSON"
        );
        return;
    }
    let from: usize = args.parse_or("from", 4);
    let to: usize = args.parse_or("to", 8);

    let mut table = Table::new(&[
        "Application",
        &format!("same-config acc ({from} ranks)"),
        &format!("cross-config acc ({from}->{to} ranks)"),
        "unknown events",
    ]);
    let mut json_rows = Vec::new();

    for app in all_apps() {
        let trace = record_trace(app.as_ref(), from, WorkingSet::Small, WorkScale::ZERO);

        let acc_of = |res: &pythia_apps::harness::RunResult| {
            let (mut c, mut t) = (0u64, 0u64);
            for r in &res.reports {
                for (_, a) in &r.accuracy {
                    c += a.correct;
                    t += a.total();
                }
            }
            if t == 0 {
                f64::NAN
            } else {
                c as f64 / t as f64
            }
        };

        let same = run_app(
            app.as_ref(),
            from,
            WorkingSet::Small,
            MpiMode::predict(Arc::clone(&trace)),
            WorkScale::ZERO,
        );
        let cross = run_app(
            app.as_ref(),
            to,
            WorkingSet::Small,
            MpiMode::predict_mapped(Arc::clone(&trace), vec![1]),
            WorkScale::ZERO,
        );
        let same_acc = acc_of(&same);
        let cross_acc = acc_of(&cross);
        let unknown: u64 = cross
            .reports
            .iter()
            .filter_map(|r| r.predict_stats.map(|s| s.unknown))
            .sum();
        table.row(vec![
            app.name().to_string(),
            format!("{:.1}%", same_acc * 100.0),
            format!("{:.1}%", cross_acc * 100.0),
            unknown.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "app": app.name(),
            "from_ranks": from,
            "to_ranks": to,
            "same_config_accuracy": same_acc,
            "cross_config_accuracy": cross_acc,
            "unknown_events": unknown,
        }));
    }

    println!(
        "Extension: cross-configuration prediction — trace from {from} ranks, \
         run with {to} ranks (thread = rank mod {from})\n"
    );
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "extension_config": json_rows }));
}
