//! Crash-recovery regression driver for `pythia-serve` durable
//! sessions: three roles composed by the CI gate (and the
//! `serve_crash_recovery` integration test) into a kill -9 storyline.
//!
//! - `serve --dir D --socket S [--recover]` — runs a server with its
//!   session journals in `D`, prints `ready` (plus a `recovered N M`
//!   line under `--recover`), then serves until killed.
//! - `drive --socket S --out F` — opens durable sessions, streams
//!   distinct reference prefixes into them, sanity-checks the served
//!   predictions against a local oracle, and records
//!   `old_id tenant events_fed` lines to `F`.
//! - `verify --socket S --in F` — after a kill -9 and a `--recover`
//!   restart: resumes every recorded session and asserts its
//!   predictions are *byte-identical* (f64 bit patterns) to a fresh
//!   single-process predictor fed the same events. Exits nonzero on
//!   any divergence.
//!
//! Everything is deterministic: the tenants' reference traces and each
//! session's prefix are pure functions of the session index, so `drive`
//! and `verify` agree on the expected state without passing it around.

use std::io::Write as _;
use std::sync::Arc;

use pythia_bench::Args;
use pythia_core::event::{EventId, EventRegistry};
use pythia_core::predict::{Prediction, Predictor, PredictorConfig};
use pythia_core::record::{RecordConfig, Recorder};
use pythia_core::resilience::FaultPlan;
use pythia_core::trace::TraceData;
use pythia_serve::{Request, Response, ServeConfig, Server, SessionId, SocketClient, Tenants};

const TENANTS: [(&str, &[u32]); 2] = [("alpha", &[1, 2, 3, 4, 2, 1]), ("beta", &[7, 8, 9])];
const SESSIONS: usize = 12;

fn trace_of(seq: &[u32]) -> TraceData {
    let mut rec = Recorder::new(RecordConfig {
        timestamps: false,
        validate: false,
    });
    for _ in 0..32 {
        for &e in seq {
            rec.record(EventId(e));
        }
    }
    rec.finish(&EventRegistry::new()).unwrap()
}

fn tenants() -> Tenants {
    Tenants::from_traces(
        TENANTS
            .iter()
            .map(|(name, seq)| (name.to_string(), trace_of(seq))),
    )
    .expect("tenant directory")
}

/// The deterministic stream session `i` feeds: a prefix of its tenant's
/// reference cycle whose length varies with `i`.
fn session_plan(i: usize) -> (&'static str, Vec<EventId>) {
    let (name, seq) = TENANTS[i % TENANTS.len()];
    let n = 1 + (i * 5) % (3 * seq.len());
    let events = seq.iter().cycle().take(n).map(|&e| EventId(e)).collect();
    (name, events)
}

fn local_oracle(tenant: &str, events: &[EventId]) -> Predictor {
    let seq = TENANTS
        .iter()
        .find(|(name, _)| *name == tenant)
        .expect("known tenant")
        .1;
    let trace = trace_of(seq);
    let mut p = Predictor::from_thread_trace(
        Arc::clone(trace.thread(0).unwrap()),
        PredictorConfig::default(),
    );
    for &e in events {
        p.observe(e);
    }
    p
}

fn assert_bit_identical(served: &Prediction, local: &Prediction, what: &str) {
    assert_eq!(
        served.distribution.len(),
        local.distribution.len(),
        "{what}: distribution size diverged"
    );
    for (&(es, ps), &(el, pl)) in served.distribution.iter().zip(&local.distribution) {
        assert_eq!(es, el, "{what}: event order diverged");
        assert_eq!(
            ps.to_bits(),
            pl.to_bits(),
            "{what}: probability bits diverged for {es:?}"
        );
    }
    assert_eq!(
        served.end_probability.to_bits(),
        local.end_probability.to_bits(),
        "{what}: end probability diverged"
    );
}

fn serve(args: &Args) -> ! {
    let dir = std::path::PathBuf::from(args.value("dir").expect("serve needs --dir"));
    let socket = std::path::PathBuf::from(args.value("socket").expect("serve needs --socket"));
    let config = ServeConfig {
        workers: 2,
        journal_dir: Some(dir),
        // Pin the server fault-free: this gate measures crash recovery,
        // not injected chaos (PYTHIA_CHAOS may be set for other stages).
        faults: Some(FaultPlan::default()),
        ..ServeConfig::default()
    };
    let mut server = if args.flag("recover") {
        let (server, report) = Server::recover(tenants(), config).expect("recover");
        assert!(
            report.failed.is_empty(),
            "recover refused journals: {:?}",
            report.failed
        );
        println!("recovered {} {}", report.resumed.len(), report.failed.len());
        server
    } else {
        Server::start(tenants(), config).expect("server start")
    };
    server.listen_unix(&socket).expect("bind unix socket");
    println!("ready");
    std::io::stdout().flush().unwrap();
    // Serve until killed; the kill -9 *is* the test.
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn drive(args: &Args) {
    let socket = std::path::PathBuf::from(args.value("socket").expect("drive needs --socket"));
    let out = std::path::PathBuf::from(args.value("out").expect("drive needs --out"));
    let mut client = SocketClient::connect_unix(&socket).expect("connect");
    let mut manifest = String::new();
    for i in 0..SESSIONS {
        let (tenant, events) = session_plan(i);
        let id = match client.call(&Request::Open {
            tenant: tenant.to_string(),
            durable: true,
        }) {
            Ok(Response::Session { id }) => id,
            other => panic!("durable open failed: {other:?}"),
        };
        match client.call(&Request::Observe {
            session: id,
            events: events.clone(),
        }) {
            Ok(Response::Advice { .. }) => {}
            other => panic!("observe failed: {other:?}"),
        }
        // Pre-crash sanity: the served state already matches the oracle.
        let served = match client.call(&Request::Predict {
            session: id,
            distance: 1,
        }) {
            Ok(Response::Advice {
                prediction: Some(p),
                ..
            }) => p,
            other => panic!("predict failed: {other:?}"),
        };
        let local = local_oracle(tenant, &events);
        assert_bit_identical(
            &served,
            &local.predict(1),
            &format!("pre-crash session {i}"),
        );
        manifest.push_str(&format!("{:016x} {} {}\n", id.0, tenant, events.len()));
    }
    std::fs::write(&out, manifest).expect("write manifest");
    println!("drove {SESSIONS} durable sessions");
}

fn verify(args: &Args) {
    let socket = std::path::PathBuf::from(args.value("socket").expect("verify needs --socket"));
    let input = std::path::PathBuf::from(args.value("in").expect("verify needs --in"));
    let manifest = std::fs::read_to_string(&input).expect("read manifest");
    let mut client = SocketClient::connect_unix(&socket).expect("connect");
    let mut checked = 0usize;
    for line in manifest.lines() {
        let mut parts = line.split_whitespace();
        let old = SessionId(u64::from_str_radix(parts.next().expect("id"), 16).expect("hex id"));
        let tenant = parts.next().expect("tenant");
        let n: usize = parts.next().expect("count").parse().expect("count");
        let (plan_tenant, events) = session_plan(checked);
        assert_eq!(tenant, plan_tenant, "manifest order diverged from plan");
        assert_eq!(n, events.len(), "manifest length diverged from plan");

        // The old id must be dead, and Resume must map it to a live one.
        match client.call(&Request::Predict {
            session: old,
            distance: 1,
        }) {
            Ok(Response::Error { .. }) => {}
            other => panic!("pre-resume predict on old id returned {other:?}"),
        }
        let new = match client.call(&Request::Resume { session: old }) {
            Ok(Response::Session { id }) => id,
            other => panic!("resume failed: {other:?}"),
        };
        assert_ne!(new, old, "resumed session must get a fresh id");

        // The resurrection contract: byte-identical predictions.
        let local = local_oracle(tenant, &events);
        for distance in [1u32, 3] {
            let served = match client.call(&Request::Predict {
                session: new,
                distance,
            }) {
                Ok(Response::Advice {
                    prediction: Some(p),
                    ..
                }) => p,
                other => panic!("post-resume predict failed: {other:?}"),
            };
            assert_bit_identical(
                &served,
                &local.predict(distance as usize),
                &format!("resumed session {checked} distance {distance}"),
            );
        }
        checked += 1;
    }
    assert_eq!(checked, SESSIONS, "manifest missing sessions");
    println!("verified {checked} resumed sessions byte-identical");
}

fn main() {
    let role = std::env::args().nth(1).unwrap_or_default();
    let args = Args::capture();
    match role.as_str() {
        "serve" => serve(&args),
        "drive" => drive(&args),
        "verify" => verify(&args),
        _ => {
            eprintln!("usage: serve_crash <serve|drive|verify> [--dir D] [--socket S] [--out F] [--in F] [--recover]");
            std::process::exit(2);
        }
    }
}
