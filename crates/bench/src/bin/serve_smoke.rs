//! CI smoke test for `pythia-serve`: a sharded server with two tenants,
//! driven over a Unix socket and the in-process client.
//!
//! Asserts, exiting nonzero on any violation:
//!
//! 1. every served prediction is *byte-identical* (f64 bit patterns) to
//!    a single-process [`Predictor`] fed the same events;
//! 2. a tenant whose stream diverges from its reference trace trips its
//!    admission breaker and degrades to no-advice responses;
//! 3. the degraded tenant does not perturb the other tenant: its
//!    predictions stay byte-identical to the single-process oracle.
//!
//! Chaos-tolerant by construction: under `PYTHIA_CHAOS` wire faults
//! (the ci.sh serve-chaos stage) any call can fail mid-frame, so each
//! checked session is driven as an atomic block — on a wire error the
//! whole block retries on a fresh connection with a *fresh session*,
//! which keeps the byte-identity asserts exact (a session that lost a
//! response is abandoned, never double-observed).
//!
//! Usage: `serve_smoke [--sessions N] [--workers N] [--socket PATH]`

use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;

use pythia_bench::Args;
use pythia_core::event::{EventId, EventRegistry};
use pythia_core::predict::{Prediction, Predictor, PredictorConfig};
use pythia_core::record::{RecordConfig, Recorder};
use pythia_core::resilience::{BreakerConfig, FaultPlan};
use pythia_core::trace::TraceData;
use pythia_serve::{
    Admission, Request, Response, ServeConfig, Server, SessionId, SocketClient, Tenants,
};

fn trace_of(seq: &[u32], repeat: usize) -> TraceData {
    let mut rec = Recorder::new(RecordConfig {
        timestamps: false,
        validate: false,
    });
    for _ in 0..repeat {
        for &e in seq {
            rec.record(EventId(e));
        }
    }
    rec.finish(&EventRegistry::new()).unwrap()
}

const ALPHA_SEQ: &[u32] = &[1, 2, 3, 4, 2, 1];
const BETA_SEQ: &[u32] = &[7, 8, 9];
const ATTEMPTS: usize = 50;

fn assert_bit_identical(served: &Prediction, local: &Prediction, what: &str) {
    assert_eq!(
        served.distribution.len(),
        local.distribution.len(),
        "{what}: distribution size diverged"
    );
    for (&(es, ps), &(el, pl)) in served.distribution.iter().zip(&local.distribution) {
        assert_eq!(es, el, "{what}: event order diverged");
        assert_eq!(
            ps.to_bits(),
            pl.to_bits(),
            "{what}: probability bits diverged for {es:?}"
        );
    }
    assert_eq!(
        served.end_probability.to_bits(),
        local.end_probability.to_bits(),
        "{what}: end probability diverged"
    );
}

fn connect(socket: &Path) -> SocketClient<UnixStream> {
    for _ in 0..ATTEMPTS {
        match SocketClient::connect_unix(socket) {
            Ok(c) => return c,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
        }
    }
    panic!("could not connect to {}", socket.display());
}

/// Drives one fully-checked session as an atomic block: open, observe
/// the given prefix, and assert byte-identical predictions at two
/// distances. A wire error or Busy abandons the session and retries the
/// whole block on a fresh connection, so a completed block has observed
/// its prefix exactly once.
fn drive_checked_session(
    socket: &Path,
    name: &str,
    trace: &TraceData,
    events: &[EventId],
    what: &str,
) -> SessionId {
    'attempt: for _ in 0..ATTEMPTS {
        let mut client = connect(socket);
        let id = match client.call(&Request::Open {
            tenant: name.to_string(),
            durable: false,
        }) {
            Ok(Response::Session { id }) => id,
            Ok(Response::Busy { .. }) | Err(_) => continue 'attempt,
            other => panic!("{what}: open failed: {other:?}"),
        };
        match client.call(&Request::Observe {
            session: id,
            events: events.to_vec(),
        }) {
            Ok(Response::Advice { admission, .. }) => {
                assert_eq!(
                    admission,
                    Admission::Served,
                    "{what}: healthy tenant degraded"
                )
            }
            Ok(Response::Busy { .. }) | Err(_) => continue 'attempt,
            other => panic!("{what}: observe failed: {other:?}"),
        }
        let mut local = Predictor::from_thread_trace(
            Arc::clone(trace.thread(0).unwrap()),
            PredictorConfig::default(),
        );
        for &e in events {
            local.observe(e);
        }
        for distance in [1u32, 3] {
            let served = match client.call(&Request::Predict {
                session: id,
                distance,
            }) {
                Ok(Response::Advice {
                    prediction: Some(p),
                    admission: Admission::Served,
                    ..
                }) => p,
                Ok(Response::Busy { .. }) | Err(_) => continue 'attempt,
                other => panic!("{what}: predict failed: {other:?}"),
            };
            assert_bit_identical(
                &served,
                &local.predict(distance as usize),
                &format!("{what} distance {distance}"),
            );
        }
        return id;
    }
    panic!("{what}: session block never completed in {ATTEMPTS} attempts");
}

/// Drives one breaker-tripping block: open a beta session, stream junk,
/// and assert the tenant degrades to no-advice. Retried whole on wire
/// errors, like the checked blocks.
fn drive_junk_session(socket: &Path) {
    'attempt: for _ in 0..ATTEMPTS {
        let mut client = connect(socket);
        let bad = match client.call(&Request::Open {
            tenant: "beta".to_string(),
            durable: false,
        }) {
            Ok(Response::Session { id }) => id,
            Ok(Response::Busy { .. }) | Err(_) => continue 'attempt,
            other => panic!("junk open failed: {other:?}"),
        };
        let junk: Vec<EventId> = (0..64).map(|_| EventId(4242)).collect();
        match client.call(&Request::Observe {
            session: bad,
            events: junk,
        }) {
            Ok(Response::Advice { admission, .. }) => {
                assert_eq!(admission, Admission::Degraded, "breaker did not trip")
            }
            Ok(Response::Busy { .. }) | Err(_) => continue 'attempt,
            other => panic!("junk observe failed: {other:?}"),
        }
        match client.call(&Request::Predict {
            session: bad,
            distance: 1,
        }) {
            Ok(Response::Advice {
                prediction: Some(p),
                admission,
                ..
            }) => {
                assert_eq!(admission, Admission::Degraded);
                assert!(
                    p.distribution.is_empty() && p.end_probability == 0.0,
                    "degraded tenant still received advice: {p:?}"
                );
            }
            Ok(Response::Busy { .. }) | Err(_) => continue 'attempt,
            other => panic!("degraded predict failed: {other:?}"),
        }
        return;
    }
    panic!("junk block never completed in {ATTEMPTS} attempts");
}

fn main() {
    let args = Args::capture();
    let sessions_per_tenant: usize = args.parse_or("sessions", 100);
    let workers: usize = args.parse_or("workers", 2);
    let socket = args
        .value("socket")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| {
            std::env::temp_dir().join(format!("pythia-serve-smoke-{}.sock", std::process::id()))
        });
    // The serve-chaos CI stage runs this binary under PYTHIA_CHAOS wire
    // faults; the retried blocks keep every assert exact, but shard
    // round-robin order (and so trips-per-shard) becomes nondeterministic.
    let chaotic = FaultPlan::from_env().is_some_and(|p| p.has_wire_faults());

    let alpha = trace_of(ALPHA_SEQ, 32);
    let beta = trace_of(BETA_SEQ, 32);
    let tenants = Tenants::from_traces([
        ("alpha".to_string(), trace_of(ALPHA_SEQ, 32)),
        ("beta".to_string(), trace_of(BETA_SEQ, 32)),
    ])
    .expect("tenant directory");
    let mut server = Server::start(
        tenants,
        ServeConfig {
            workers,
            // Small window + huge backoff: the breaker trips fast and stays
            // open for the rest of the smoke run.
            breaker: BreakerConfig {
                window: 16,
                backoff_initial: 1 << 30,
                ..BreakerConfig::default()
            },
            ..ServeConfig::default()
        },
    )
    .expect("server start");
    server.listen_unix(&socket).expect("bind unix socket");

    // Phase 1: 2 tenants x N sessions, every prediction byte-identical to
    // the single-process oracle. Session i observes a prefix of its
    // tenant's reference stream of length varying with i, so the checked
    // states differ across sessions.
    let tenant_specs: [(&str, &TraceData, &[u32]); 2] =
        [("alpha", &alpha, ALPHA_SEQ), ("beta", &beta, BETA_SEQ)];
    let mut alpha_sessions: Vec<(usize, SessionId)> = Vec::new();
    for (name, trace, seq) in tenant_specs {
        for i in 0..sessions_per_tenant {
            let events: Vec<EventId> = seq
                .iter()
                .cycle()
                .take(1 + i % (3 * seq.len()))
                .map(|&e| EventId(e))
                .collect();
            let id = drive_checked_session(
                &socket,
                name,
                trace,
                &events,
                &format!("{name} session {i}"),
            );
            if name == "alpha" {
                alpha_sessions.push((i, id));
            }
        }
    }

    // Phase 2: circuit-break tenant beta by streaming events its reference
    // never saw, through a fresh session on every shard.
    for _ in 0..workers {
        drive_junk_session(&socket);
    }
    let stats = server.router().stats();
    let min_trips = if chaotic { 1 } else { workers as u64 };
    assert!(
        stats.breaker_trips >= min_trips,
        "expected >= {min_trips} breaker trips, saw {}",
        stats.breaker_trips
    );

    // Phase 3: alpha is untouched — its existing sessions keep producing
    // byte-identical predictions after beta went dark. Checked through the
    // in-process client (which bypasses wire faults) for transport parity.
    let inproc = server.client();
    for &(i, id) in &alpha_sessions {
        let prefix_len = 1 + i % (3 * ALPHA_SEQ.len());
        let more: Vec<EventId> = ALPHA_SEQ
            .iter()
            .cycle()
            .skip(prefix_len)
            .take(ALPHA_SEQ.len())
            .map(|&e| EventId(e))
            .collect();
        let served = match inproc.call(&Request::ObservePredict {
            session: id,
            distance: 2,
            events: more.clone(),
        }) {
            Ok(Response::Advice {
                prediction: Some(p),
                admission: Admission::Served,
                ..
            }) => p,
            other => panic!("alpha post-trip observe+predict failed: {other:?}"),
        };
        let mut local = Predictor::from_thread_trace(
            Arc::clone(alpha.thread(0).unwrap()),
            PredictorConfig::default(),
        );
        for e in ALPHA_SEQ
            .iter()
            .cycle()
            .take(prefix_len)
            .map(|&e| EventId(e))
            .chain(more)
        {
            local.observe(e);
        }
        assert_bit_identical(
            &served,
            &local.predict(2),
            &format!("alpha session {i} after beta tripped"),
        );
    }

    server.shutdown();
    let _ = std::fs::remove_file(&socket);
    println!(
        "serve smoke ok: {} sessions x 2 tenants over {} workers, {} events served, {} breaker trips contained{}",
        sessions_per_tenant * 2,
        workers,
        stats.events,
        stats.breaker_trips,
        if chaotic { " (under wire chaos)" } else { "" },
    );
}
