//! **Table I** — performance evaluation of PYTHIA-RECORD.
//!
//! For each of the 13 applications (large working set), runs the skeleton
//! with the vanilla runtime and with PYTHIA-RECORD, and reports mean
//! execution time, record overhead %, total recorded events, and the mean
//! grammar rule count — the exact columns of the paper's Table I.
//!
//! `--show-grammar <APP>` additionally prints the grammar recorded by
//! rank 0, reproducing the paper's Fig. 7 for BT.
//!
//! Usage: `table1 [--ranks N] [--runs N] [--ws small|medium|large]
//! [--ns-per-unit N] [--app NAME] [--show-grammar NAME] [--json PATH]`

use pythia_apps::harness::run_app;
use pythia_apps::work::WorkScale;
use pythia_apps::{all_apps, WorkingSet};
use pythia_bench::{maybe_write_json, mean, Args, Table};
use pythia_runtime_mpi::MpiMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "table1: reproduce Table I (PYTHIA-RECORD overhead)\n\
             --ranks N         ranks per app (default 8; paper: 64/8)\n\
             --runs N          repetitions per configuration (default 3; paper: 10)\n\
             --ws CLASS        small|medium|large (default large)\n\
             --ns-per-unit N   synthetic compute scale (default 20)\n\
             --app NAME        only run one application\n\
             --show-grammar NAME  print rank 0's grammar (Fig. 7)\n\
             --json PATH       write results as JSON"
        );
        return;
    }
    let ranks: usize = args.parse_or("ranks", 8);
    let runs: usize = args.parse_or("runs", 3);
    let ws = match args.value("ws").unwrap_or("large") {
        "small" => WorkingSet::Small,
        "medium" => WorkingSet::Medium,
        _ => WorkingSet::Large,
    };
    let work = WorkScale {
        ns_per_unit: args.parse_or("ns-per-unit", 20),
    };
    let only = args.value("app").map(str::to_owned);
    let show_grammar = args.value("show-grammar").map(str::to_owned);

    let mut table = Table::new(&[
        "Application",
        "Vanilla (s)",
        "PYTHIA-RECORD (s)",
        "overhead(%)",
        "# events",
        "# rules",
    ]);
    let mut json_rows = Vec::new();

    for app in all_apps() {
        if let Some(ref name) = only {
            if !app.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let mut vanilla_times = Vec::new();
        let mut record_times = Vec::new();
        let mut events = 0u64;
        let mut rules = 0f64;
        for _ in 0..runs {
            let v = run_app(app.as_ref(), ranks, ws, MpiMode::Vanilla, work);
            vanilla_times.push(v.elapsed.as_secs_f64());
            let r = run_app(app.as_ref(), ranks, ws, MpiMode::record(), work);
            record_times.push(r.elapsed.as_secs_f64());
            events = r.total_events();
            rules = r.mean_rules();

            if show_grammar.as_deref() == Some(app.name()) {
                let trace = r.into_trace().expect("record-mode run");
                let registry = trace.registry().clone();
                let g = &trace.thread(0).unwrap().grammar;
                println!(
                    "--- grammar of {}.{} rank 0 (cf. paper Fig. 7) ---",
                    app.name(),
                    ws.label()
                );
                println!(
                    "{}",
                    g.render(&|e| registry
                        .name_of(e)
                        .replace("MPI_", "")
                        .replace("omp_region_", "omp_"))
                );
            }
        }
        let v = mean(&vanilla_times);
        let r = mean(&record_times);
        let overhead = (r - v) / v * 100.0;
        table.row(vec![
            format!("{}.{}", app.name(), capitalize(ws.label())),
            format!("{v:.3}"),
            format!("{r:.3}"),
            format!("{overhead:+.1}"),
            format!("{events}"),
            format!("{rules:.0}"),
        ]);
        json_rows.push(serde_json::json!({
            "app": app.name(),
            "working_set": ws.label(),
            "ranks": ranks,
            "vanilla_s": v,
            "record_s": r,
            "overhead_pct": overhead,
            "events": events,
            "rules": rules,
        }));
    }

    println!("Table I: performance evaluation of PYTHIA-RECORD");
    println!(
        "({ranks} ranks, {runs} runs, ws={}, {}ns/unit)\n",
        ws.label(),
        work.ns_per_unit
    );
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "table1": json_rows }));
}

fn capitalize(s: &str) -> String {
    let mut c = s.chars();
    match c.next() {
        Some(f) => f.to_uppercase().collect::<String>() + c.as_str(),
        None => String::new(),
    }
}
