//! **Figs. 10/11** — LULESH execution time as a function of the problem
//! size, for the three runtime configurations (Vanilla, PYTHIA-RECORD,
//! PYTHIA-PREDICT).
//!
//! The paper runs two machines: *Pudding* (24 threads) for Fig. 10 and
//! *Pixel* (16 threads) for Fig. 11; here both become thread-count
//! configurations of the same host. Expect PYTHIA-PREDICT to win at small
//! problem sizes (small regions dominated by fork/join cost) and the gap
//! to close as the problem grows — the paper's headline 38 % at `-s 30`.
//!
//! Usage: `fig10_11_problem_size [--threads-a N] [--threads-b N]
//! [--sizes 5,10,...] [--steps N] [--runs N] [--ns-per-unit N] [--json P]`

use pythia_apps::lulesh_omp::LuleshOmpConfig;
use pythia_bench::lulesh::{record_reference, run_many, LuleshMode};
use pythia_bench::{maybe_write_json, min_mean_max, Args, Table};
use pythia_minomp::PoolMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "fig10_11_problem_size: reproduce Figs. 10/11 (time vs problem size)\n\
             --threads-a N   'Pudding' thread count (default 24)\n\
             --threads-b N   'Pixel' thread count (default 16)\n\
             --sizes LIST    problem sizes (default 5,10,20,30,40,50)\n\
             --steps N       time steps per run (default 10)\n\
             --runs N        repetitions (default 3; paper: 10)\n\
             --ns-per-unit N compute scale (default 20)\n\
             --json PATH     write results as JSON"
        );
        return;
    }
    // Default to the paper's machine configurations (Pudding 24 cores,
    // Pixel 16). On hosts with fewer cores the spin-work serializes and
    // the fork/join-overhead effect the figures demonstrate remains.
    let threads_a: usize = args.parse_or("threads-a", 24);
    let threads_b: usize = args.parse_or("threads-b", 16);
    let sizes: Vec<u64> = args.parse_list("sizes", &[5, 10, 20, 30, 40, 50]);
    let steps: usize = args.parse_or("steps", 10);
    let runs: usize = args.parse_or("runs", 3);
    let ns_per_unit: u64 = args.parse_or("ns-per-unit", 20);

    let mut json_rows = Vec::new();
    for (figure, machine, threads) in [
        ("Fig. 10", "Pudding-like", threads_a),
        ("Fig. 11", "Pixel-like", threads_b),
    ] {
        println!(
            "{figure}: LULESH time vs problem size ({machine}, {threads} threads, {steps} steps)\n"
        );
        let mut table = Table::new(&[
            "size",
            "Vanilla (s)",
            "Pythia-record (s)",
            "Pythia-predict (s)",
            "speedup(%)",
        ]);
        for &s in &sizes {
            let cfg = LuleshOmpConfig {
                problem_size: s,
                steps,
                ns_per_unit,
            };
            let trace = record_reference(threads, &cfg);
            let vanilla = run_many(
                LuleshMode::Vanilla,
                threads,
                PoolMode::Park,
                &cfg,
                None,
                runs,
            );
            let record = run_many(
                LuleshMode::Record,
                threads,
                PoolMode::Park,
                &cfg,
                None,
                runs,
            );
            let predict = run_many(
                LuleshMode::Predict { error_rate: 0.0 },
                threads,
                PoolMode::Park,
                &cfg,
                Some(&trace),
                runs,
            );
            let (_, v, _) = min_mean_max(&vanilla);
            let (_, r, _) = min_mean_max(&record);
            let (_, p, _) = min_mean_max(&predict);
            let speedup = (v - p) / v * 100.0;
            table.row(vec![
                s.to_string(),
                format!("{v:.4}"),
                format!("{r:.4}"),
                format!("{p:.4}"),
                format!("{speedup:+.1}"),
            ]);
            json_rows.push(serde_json::json!({
                "figure": figure,
                "threads": threads,
                "size": s,
                "vanilla_s": v,
                "record_s": r,
                "predict_s": p,
                "speedup_pct": speedup,
            }));
        }
        table.print();
        println!();
    }
    maybe_write_json(&args, &serde_json::json!({ "fig10_11": json_rows }));
}
