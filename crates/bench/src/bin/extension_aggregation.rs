//! **Extension** — the optimization the paper's MPI runtime only mimics
//! (§III-B: "the optimization could consist in aggregating multiple
//! successive MPI send messages"), implemented for real: when PYTHIA
//! predicts that the next event is another `MPI_Isend` to the same peer,
//! the runtime buffers the message and ships the burst as one transfer.
//!
//! Reports, per application: logical messages, wire transfers without and
//! with aggregation, and the held-back/batch counters. Quicksilver (bursty
//! particle sends) benefits; apps without same-peer bursts are unaffected
//! — exactly the adaptivity a heuristic-free oracle buys.
//!
//! Usage: `extension_aggregation [--ranks N] [--json P]`

use std::sync::Arc;

use pythia_apps::harness::{run_app_in_registry, RunResult};
use pythia_apps::work::WorkScale;
use pythia_apps::{find_app, MpiApp, WorkingSet};
use pythia_bench::{maybe_write_json, Args, Table};
use pythia_minimpi::World;
use pythia_runtime_mpi::{AggregationConfig, MpiMode, PythiaComm};

/// Runs `app` in predict mode, optionally aggregating, and returns the
/// summed network stats over all ranks plus the aggregation counters.
fn run_predict(
    app: &dyn MpiApp,
    ranks: usize,
    trace: Arc<pythia_core::trace::TraceData>,
    aggregate: bool,
) -> (u64, u64, u64, u64) {
    let mode = MpiMode::predict(trace.clone());
    let registry = PythiaComm::registry_for(&mode);
    let out = World::run(ranks, |comm| {
        let pc = PythiaComm::wrap(comm, &mode, Arc::clone(&registry));
        if aggregate {
            pc.enable_aggregation(AggregationConfig::default());
        }
        app.run(&pc, WorkingSet::Small, &WorkScale::ZERO);
        let net = pc.inner().network_stats();
        let report = pc.finish().expect("no live split communicators");
        (net, report.aggregation)
    });
    let mut transfers = 0;
    let mut messages = 0;
    let mut held = 0;
    let mut batches = 0;
    for (net, agg) in out {
        transfers += net.transfers;
        messages += net.messages;
        held += agg.held_back;
        batches += agg.batches;
    }
    (transfers, messages, held, batches)
}

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "extension_aggregation: prediction-driven send aggregation\n\
             --ranks N   ranks per app (default 8)\n\
             --json PATH write results as JSON"
        );
        return;
    }
    let ranks: usize = args.parse_or("ranks", 8);

    let mut table = Table::new(&[
        "Application",
        "messages",
        "transfers (plain)",
        "transfers (aggregated)",
        "reduction(%)",
        "held back",
        "batches",
    ]);
    let mut json_rows = Vec::new();

    for name in ["Quicksilver", "AMG", "LU", "BT"] {
        let app = find_app(name).unwrap();
        // Record a reference trace (shared registry for id stability).
        let mode = MpiMode::record();
        let registry = PythiaComm::registry_for(&mode);
        let rec: RunResult = run_app_in_registry(
            app.as_ref(),
            ranks,
            WorkingSet::Small,
            mode,
            WorkScale::ZERO,
            Arc::clone(&registry),
        );
        let trace = Arc::new(rec.into_trace().expect("record-mode run"));

        let (plain_t, plain_m, _, _) = run_predict(app.as_ref(), ranks, Arc::clone(&trace), false);
        let (agg_t, agg_m, held, batches) =
            run_predict(app.as_ref(), ranks, Arc::clone(&trace), true);
        assert_eq!(plain_m, agg_m, "aggregation must not change traffic");
        let reduction = (plain_t - agg_t) as f64 / plain_t as f64 * 100.0;
        table.row(vec![
            name.to_string(),
            plain_m.to_string(),
            plain_t.to_string(),
            agg_t.to_string(),
            format!("{reduction:.1}"),
            held.to_string(),
            batches.to_string(),
        ]);
        json_rows.push(serde_json::json!({
            "app": name,
            "ranks": ranks,
            "messages": plain_m,
            "transfers_plain": plain_t,
            "transfers_aggregated": agg_t,
            "reduction_pct": reduction,
            "held_back": held,
            "batches": batches,
        }));
    }

    println!(
        "Extension: prediction-driven send aggregation ({ranks} ranks, small ws)\n\
         (one 'transfer' = one mailbox deposit, the modeled wire cost)\n"
    );
    table.print();
    maybe_write_json(
        &args,
        &serde_json::json!({ "extension_aggregation": json_rows }),
    );
}
