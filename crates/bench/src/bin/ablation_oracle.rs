//! Ablation of PYTHIA-PREDICT's main design knob: the number of candidate
//! progress sequences tracked simultaneously (`max_candidates` /
//! `max_states`).
//!
//! The paper's tolerance mechanism (§II-B2) relies on keeping *sets* of
//! partial progress sequences; a budget of 1 degenerates to greedy
//! tracking. This bench quantifies what the set buys: accuracy on
//! regular and irregular applications across working sets, and the
//! prediction latency it costs.
//!
//! Usage: `ablation_oracle [--ranks N] [--budgets 1,4,16,64]
//! [--distance N] [--json P]`

use std::sync::Arc;

use pythia_apps::harness::run_app_in_registry;
use pythia_apps::work::WorkScale;
use pythia_apps::{find_app, WorkingSet};
use pythia_bench::{maybe_write_json, Args, Table};
use pythia_core::event::EventId;
use pythia_core::predict::{Predictor, PredictorConfig};
use pythia_runtime_mpi::MpiMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "ablation_oracle: accuracy/latency vs candidate budget\n\
             --ranks N       ranks per app (default 4)\n\
             --budgets LIST  candidate budgets (default 1,4,16,64)\n\
             --distance N    prediction distance (default 4)\n\
             --json PATH     write results as JSON"
        );
        return;
    }
    let ranks: usize = args.parse_or("ranks", 4);
    let budgets: Vec<usize> = args.parse_list("budgets", &[1, 4, 16, 64]);
    let distance: usize = args.parse_or("distance", 4);

    let mut table = Table::new(&[
        "Application",
        "budget",
        "accuracy",
        "mean predict (µs)",
        "reseeds",
    ]);
    let mut json_rows = Vec::new();

    for name in ["SP", "MG", "AMG", "Quicksilver"] {
        let app = find_app(name).unwrap();
        // Record small + large into the SAME registry (event ids must
        // agree across runs), then replay the large event stream offline
        // so the ablation isolates the predictor from runtime noise.
        let mode = MpiMode::record();
        let registry = pythia_runtime_mpi::PythiaComm::registry_for(&mode);
        let small_run = run_app_in_registry(
            app.as_ref(),
            ranks,
            WorkingSet::Small,
            mode.clone(),
            WorkScale::ZERO,
            std::sync::Arc::clone(&registry),
        );
        let large_run = run_app_in_registry(
            app.as_ref(),
            ranks,
            WorkingSet::Large,
            mode,
            WorkScale::ZERO,
            std::sync::Arc::clone(&registry),
        );
        let trace = small_run.into_trace().expect("record-mode run");
        // Rank 0's event stream of the large run.
        let stream: Vec<EventId> = large_run.reports[0]
            .thread_trace
            .as_ref()
            .unwrap()
            .grammar
            .unfold();

        for &budget in &budgets {
            let cfg = PredictorConfig {
                max_candidates: budget,
                max_states: budget.max(2),
            };
            let mut p = Predictor::from_thread_trace(Arc::clone(trace.thread(0).unwrap()), cfg);
            let mut correct = 0u64;
            let mut scored = 0u64;
            let mut nanos = 0u128;
            let mut samples = 0u64;
            for i in 0..stream.len() {
                p.observe(stream[i]);
                if i + distance < stream.len() {
                    let t0 = std::time::Instant::now();
                    let pred = p.predict(distance);
                    nanos += t0.elapsed().as_nanos();
                    samples += 1;
                    scored += 1;
                    if pred.most_likely() == Some(stream[i + distance]) {
                        correct += 1;
                    }
                }
            }
            let acc = correct as f64 / scored.max(1) as f64;
            let mean_us = nanos as f64 / samples.max(1) as f64 / 1000.0;
            let reseeds = p.stats().reseeded;
            table.row(vec![
                name.to_string(),
                budget.to_string(),
                format!("{:.1}%", acc * 100.0),
                format!("{mean_us:.2}"),
                reseeds.to_string(),
            ]);
            json_rows.push(serde_json::json!({
                "app": name,
                "budget": budget,
                "distance": distance,
                "accuracy": acc,
                "mean_predict_us": mean_us,
                "reseeds": reseeds,
            }));
        }
    }

    println!(
        "Ablation: candidate budget vs accuracy/latency (distance {distance}, \
         record=small, replay=large, rank 0 streams)\n"
    );
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "ablation_oracle": json_rows }));
}
