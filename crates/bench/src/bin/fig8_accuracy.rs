//! **Fig. 8** — accuracy of PYTHIA-PREDICT predictions.
//!
//! Records each application with the *small* working set, then replays the
//! application with small/medium/large working sets while requesting, at
//! every blocking MPI call, the event `x` ahead for
//! `x ∈ {1, 2, 4, …, 128}`. Reports the fraction of correct predictions
//! per application, working set, and distance — the paper's Fig. 8 series.
//!
//! Usage: `fig8_accuracy [--ranks N] [--app NAME]
//! [--distances 1,2,4,...] [--json PATH]`

use std::sync::Arc;

use pythia_apps::harness::{record_trace, run_app};
use pythia_apps::work::WorkScale;
use pythia_apps::{all_apps, WorkingSet};
use pythia_bench::{maybe_write_json, Args, Table};
use pythia_runtime_mpi::MpiMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "fig8_accuracy: reproduce Fig. 8 (prediction accuracy vs distance)\n\
             --ranks N       ranks per app (default 8)\n\
             --app NAME      only run one application\n\
             --distances L   comma-separated distances (default 1,2,4,...,128)\n\
             --json PATH     write results as JSON"
        );
        return;
    }
    let ranks: usize = args.parse_or("ranks", 8);
    let distances: Vec<usize> = args.parse_list("distances", &[1, 2, 4, 8, 16, 32, 64, 128]);
    let only = args.value("app").map(str::to_owned);
    // Structure-only runs: compute does not affect event accuracy.
    let work = WorkScale::ZERO;

    let mut headers: Vec<String> = vec!["Application".into(), "predict ws".into()];
    headers.extend(distances.iter().map(|d| format!("x={d}")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    let mut json_rows = Vec::new();

    for app in all_apps() {
        if let Some(ref name) = only {
            if !app.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        // Reference execution with the small working set (paper §III-C2).
        let trace = record_trace(app.as_ref(), ranks, WorkingSet::Small, work);
        for ws in WorkingSet::ALL {
            let mode = MpiMode::predict_distances(Arc::clone(&trace), distances.clone());
            let res = run_app(app.as_ref(), ranks, ws, mode, work);
            // Aggregate accuracy across ranks per distance.
            let mut per_distance: Vec<(u64, u64)> = vec![(0, 0); distances.len()];
            for r in &res.reports {
                for (slot, (_, acc)) in r.accuracy.iter().enumerate() {
                    per_distance[slot].0 += acc.correct;
                    per_distance[slot].1 += acc.total();
                }
            }
            let accs: Vec<f64> = per_distance
                .iter()
                .map(|&(c, t)| {
                    if t == 0 {
                        f64::NAN
                    } else {
                        c as f64 / t as f64
                    }
                })
                .collect();
            let mut row = vec![app.name().to_string(), ws.label().to_string()];
            row.extend(accs.iter().map(|a| {
                if a.is_nan() {
                    "-".to_string()
                } else {
                    format!("{:.1}%", a * 100.0)
                }
            }));
            table.row(row);
            json_rows.push(serde_json::json!({
                "app": app.name(),
                "record_ws": "small",
                "predict_ws": ws.label(),
                "ranks": ranks,
                "distances": distances,
                "accuracy": accs,
            }));
        }
    }

    println!("Fig. 8: accuracy of PYTHIA-PREDICT predictions");
    println!("(reference trace: small working set; {ranks} ranks)\n");
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "fig8": json_rows }));
}
