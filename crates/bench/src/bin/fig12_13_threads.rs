//! **Figs. 12/13** — LULESH (problem size 30) execution time as a function
//! of the maximum number of threads.
//!
//! Vanilla and PYTHIA-RECORD always use the maximum; PYTHIA-PREDICT adapts
//! per region while respecting it. The paper shows all three equal up to
//! ~8 threads, then PYTHIA-PREDICT winning by up to 38.8 % (Pudding) /
//! 20.0 % (Pixel) as the fork/join cost of the many small regions grows
//! with the team size.
//!
//! `--ablation` additionally runs PYTHIA-PREDICT with the stock
//! destroy-on-shrink pool, quantifying the paper's park-the-threads pool
//! change (§III-D1).
//!
//! Usage: `fig12_13_threads [--threads LIST] [--size N] [--steps N]
//! [--runs N] [--ns-per-unit N] [--ablation] [--json P]`

use pythia_apps::lulesh_omp::LuleshOmpConfig;
use pythia_bench::lulesh::{record_reference, run_many, LuleshMode};
use pythia_bench::{host_threads, maybe_write_json, min_mean_max, Args, Table};
use pythia_minomp::PoolMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "fig12_13_threads: reproduce Figs. 12/13 (time vs max threads)\n\
             --threads LIST  max-thread sweep (default 1,2,4,8,12,16,24)\n\
             --size N        problem size (default 30, as the paper)\n\
             --steps N       time steps (default 10)\n\
             --runs N        repetitions (default 3)\n\
             --ns-per-unit N compute scale (default 20)\n\
             --ablation      also run predict with the destroy-on-shrink pool\n\
             --json PATH     write results as JSON"
        );
        return;
    }
    let default_threads: Vec<usize> = vec![1, 2, 4, 8, 12, 16, 24];
    let threads_list: Vec<usize> = args.parse_list("threads", &default_threads);
    let size: u64 = args.parse_or("size", 30);
    let steps: usize = args.parse_or("steps", 10);
    let runs: usize = args.parse_or("runs", 3);
    let ns_per_unit: u64 = args.parse_or("ns-per-unit", 20);
    let ablation = args.flag("ablation");

    let cfg = LuleshOmpConfig {
        problem_size: size,
        steps,
        ns_per_unit,
    };

    let host = host_threads(1024);
    println!(
        "Figs. 12/13: LULESH (s={size}) time vs max threads ({steps} steps, host has {host} hw threads)\n"
    );
    let mut headers = vec![
        "max threads",
        "Vanilla (s)",
        "Pythia-record (s)",
        "Pythia-predict (s)",
        "speedup(%)",
    ];
    if ablation {
        headers.push("predict+destroy-pool (s)");
    }
    let mut table = Table::new(&headers);
    let mut json_rows = Vec::new();

    for &threads in &threads_list {
        let trace = record_reference(threads, &cfg);
        let vanilla = run_many(
            LuleshMode::Vanilla,
            threads,
            PoolMode::Park,
            &cfg,
            None,
            runs,
        );
        let record = run_many(
            LuleshMode::Record,
            threads,
            PoolMode::Park,
            &cfg,
            None,
            runs,
        );
        let predict = run_many(
            LuleshMode::Predict { error_rate: 0.0 },
            threads,
            PoolMode::Park,
            &cfg,
            Some(&trace),
            runs,
        );
        let (_, v, _) = min_mean_max(&vanilla);
        let (_, r, _) = min_mean_max(&record);
        let (_, p, _) = min_mean_max(&predict);
        let speedup = (v - p) / v * 100.0;
        let mut row = vec![
            threads.to_string(),
            format!("{v:.4}"),
            format!("{r:.4}"),
            format!("{p:.4}"),
            format!("{speedup:+.1}"),
        ];
        let mut destroy_mean = None;
        if ablation {
            let destroy = run_many(
                LuleshMode::Predict { error_rate: 0.0 },
                threads,
                PoolMode::DestroyOnShrink,
                &cfg,
                Some(&trace),
                runs,
            );
            let (_, d, _) = min_mean_max(&destroy);
            destroy_mean = Some(d);
            row.push(format!("{d:.4}"));
        }
        table.row(row);
        json_rows.push(serde_json::json!({
            "threads": threads,
            "size": size,
            "vanilla_s": v,
            "record_s": r,
            "predict_s": p,
            "speedup_pct": speedup,
            "predict_destroy_pool_s": destroy_mean,
        }));
    }
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "fig12_13": json_rows }));
}
