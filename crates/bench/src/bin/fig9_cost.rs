//! **Fig. 9** — cost of PYTHIA-PREDICT predictions.
//!
//! Records each application with the *large* working set, replays it on
//! the same set, and measures the wall-clock latency of each prediction
//! request as a function of the prediction distance (the paper's Fig. 9:
//! µs-scale, growing linearly with distance, higher for irregular
//! grammars like Quicksilver's).
//!
//! Usage: `fig9_cost [--ranks N] [--app NAME] [--distances L] [--json P]`

use std::sync::Arc;

use pythia_apps::harness::{record_trace, run_app};
use pythia_apps::work::WorkScale;
use pythia_apps::{all_apps, WorkingSet};
use pythia_bench::{maybe_write_json, Args, Table};
use pythia_runtime_mpi::probe::CostProbe;
use pythia_runtime_mpi::MpiMode;

fn main() {
    let args = Args::capture();
    if args.flag("help") {
        eprintln!(
            "fig9_cost: reproduce Fig. 9 (prediction cost vs distance)\n\
             --ranks N       ranks per app (default 8)\n\
             --app NAME      only run one application\n\
             --distances L   comma-separated distances (default 1,2,4,...,128)\n\
             --json PATH     write results as JSON"
        );
        return;
    }
    let ranks: usize = args.parse_or("ranks", 8);
    let distances: Vec<usize> = args.parse_list("distances", &[1, 2, 4, 8, 16, 32, 64, 128]);
    let only = args.value("app").map(str::to_owned);
    let work = WorkScale::ZERO;

    let mut headers: Vec<String> = vec!["Application".into()];
    headers.extend(distances.iter().map(|d| format!("x={d} (µs)")));
    let header_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut table = Table::new(&header_refs);
    let mut json_rows = Vec::new();

    for app in all_apps() {
        if let Some(ref name) = only {
            if !app.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        let trace = record_trace(app.as_ref(), ranks, WorkingSet::Large, work);
        let mode = MpiMode::predict_distances(Arc::clone(&trace), distances.clone());
        let res = run_app(app.as_ref(), ranks, WorkingSet::Large, mode, work);
        let mut merged = CostProbe::new();
        for r in &res.reports {
            merged.merge(&r.cost);
        }
        let mut row = vec![app.name().to_string()];
        let mut means_us = Vec::new();
        for &d in &distances {
            let us = merged.mean_ns(d).map(|ns| ns / 1000.0);
            means_us.push(us);
            row.push(us.map_or("-".to_string(), |u| format!("{u:.2}")));
        }
        table.row(row);
        json_rows.push(serde_json::json!({
            "app": app.name(),
            "ranks": ranks,
            "distances": distances,
            "mean_us": means_us,
        }));
    }

    println!("Fig. 9: cost of PYTHIA-PREDICT predictions (mean latency per request)");
    println!("(large working set, {ranks} ranks)\n");
    table.print();
    maybe_write_json(&args, &serde_json::json!({ "fig9": json_rows }));
}
