//! Implementation of the `pythia-analyze` binary: static analysis of saved
//! traces without decompression.
//!
//! The binary is a thin `main` over [`run`], so integration tests can drive
//! the exact production code path (argument parsing, format sniffing, exit
//! codes) in-process instead of spawning the compiled binary.
//!
//! Exit codes: `0` clean (no finding at or above `--deny`), `1` at least
//! one deny-level finding, `2` usage or I/O error.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use pythia_core::analyze::{
    analyze_trace, AnalyzeConfig, ClassTable, EventClass, PatternQuery, Severity,
};
use pythia_core::record::{RecordConfig, Recorder};
use pythia_core::trace::{TraceData, MAGIC};

/// Exit code for "nothing at or above the deny level".
pub const EXIT_CLEAN: i32 = 0;
/// Exit code for "deny-level findings present".
pub const EXIT_FINDINGS: i32 = 1;
/// Exit code for usage or I/O errors.
pub const EXIT_USAGE: i32 = 2;

const USAGE: &str = "\
pythia-analyze: lint, verify and profile saved PYTHIA traces without expanding them

USAGE:
    pythia-analyze [FLAGS] TRACE...
    pythia-analyze race [FLAGS] TRACE...
    pythia-analyze match [FLAGS] <PATTERN> TRACE...
    pythia-analyze recover [--out <P>] [--json] TRACE

ARGS:
    TRACE...    trace files (binary or JSON; format sniffed from content)
    PATTERN     pattern query, e.g. 'MPI_Isend (!MPI_Wait){8}' or 'isend ~16 wait'
                (sequence, '|' alternation, '{n,m}' repeats, '!atom' negation,
                 'a ~N b' = b within N events of a, '.' any event; names are
                 case-insensitive and the MPI_ prefix may be omitted)

SUBCOMMANDS:
    race        happens-before race detection only: conflicting same-epoch
                accesses on different ranks (collectives delimit epochs)
    match       run one pattern query per rank on the compressed trace
    recover     rebuild an interrupted recording from its journal/checkpoint
                sidecars (`<TRACE>.r<rank>.journal` / `.ckpt`) and save the
                recovered trace to --out (default: TRACE itself)

FLAGS:
    --json                          machine-readable output (one report object per trace)
    --deny <warnings|errors>        exit 1 when findings reach this severity [default: errors]
    --no-lint                       skip the grammar linter
    --no-protocol                   skip the cross-rank MPI protocol verifier
    --no-race                       skip the happens-before race detector
    --no-predictability             skip the predictability report
    --top <N>                       least-predictable events to keep per thread [default: 5]
    --severity <info|warning|error> severity of a pattern hit (match) [default: warning]
    --absent                        match: flag ranks where the pattern NEVER matches
    --write-seeded-violations <P>   record a reference app, seed an unmatched send, a
                                    collective divergence, a same-epoch racy store pair
                                    and an Isend-without-Wait window into it, save to P,
                                    and exit
    --help                          show this help
";

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Input trace paths, in argument order.
    pub paths: Vec<PathBuf>,
    /// Emit JSON instead of human text.
    pub json: bool,
    /// Severity at which findings turn the exit code non-zero.
    pub deny: Severity,
    /// Pass selection and predictability knobs.
    pub config: AnalyzeConfig,
    /// When set: write the seeded-violation fixture here and exit.
    pub seed_out: Option<PathBuf>,
    /// Severity of a pattern hit (`match` subcommand).
    pub severity: Severity,
    /// Invert the pattern verdict (`match --absent`).
    pub absent: bool,
    /// `--help` was requested.
    pub help: bool,
}

/// Parses `argv` (without the program name). Errors are usage messages.
pub fn parse(argv: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        paths: Vec::new(),
        json: false,
        deny: Severity::Error,
        config: AnalyzeConfig::default(),
        seed_out: None,
        severity: Severity::Warning,
        absent: false,
        help: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--deny" => {
                let v = it.next().ok_or("--deny needs a value")?;
                cli.deny = match v.as_str() {
                    "warnings" | "warning" => Severity::Warning,
                    "errors" | "error" => Severity::Error,
                    other => return Err(format!("--deny expects warnings|errors, got {other}")),
                };
            }
            "--no-lint" => cli.config.lint = false,
            "--no-protocol" => cli.config.protocol = false,
            "--no-race" => cli.config.race = false,
            "--no-predictability" => cli.config.predictability = false,
            "--absent" => cli.absent = true,
            "--severity" => {
                let v = it.next().ok_or("--severity needs a value")?;
                cli.severity = match v.as_str() {
                    "info" => Severity::Info,
                    "warning" | "warnings" => Severity::Warning,
                    "error" | "errors" => Severity::Error,
                    other => {
                        return Err(format!(
                            "--severity expects info|warning|error, got {other}"
                        ))
                    }
                };
            }
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                cli.config.top = v
                    .parse()
                    .map_err(|_| format!("--top expects a number, got {v}"))?;
            }
            "--write-seeded-violations" => {
                let v = it.next().ok_or("--write-seeded-violations needs a path")?;
                cli.seed_out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => cli.help = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            path => cli.paths.push(PathBuf::from(path)),
        }
    }
    if !cli.help && cli.seed_out.is_none() && cli.paths.is_empty() {
        return Err("no trace files given".into());
    }
    Ok(cli)
}

/// Loads a trace leniently, sniffing binary vs. JSON from the content.
///
/// Lenient on purpose: the analyzer's job is to *diagnose* invariant
/// violations, so the strict loader (which rejects them as
/// [`pythia_core::error::Error::Corrupt`]) would hide exactly the inputs
/// this tool exists for. Structurally unparseable files still error.
pub fn load_sniffed(path: &std::path::Path) -> Result<TraceData, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let res = if bytes.starts_with(MAGIC) {
        TraceData::from_bytes_lenient(&bytes)
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| format!("{}: neither PYTHIA binary nor UTF-8 JSON", path.display()))?;
        TraceData::from_json_lenient(text)
    };
    res.map_err(|e| format!("{}: {e}", path.display()))
}

/// Records a reference application and seeds four violations into it: an
/// extra `MPI_Send` on rank 0 (unmatched send), an altered collective on
/// the last rank (collective-sequence divergence), a `store` to the same
/// object on ranks 0 and 1 in the same barrier epoch (data race), and an
/// `MPI_Isend` on rank 0 followed by 16 events none of which is a wait
/// (the Isend-without-Wait pattern window).
///
/// The mutation works offline — unfold each rank's grammar, edit the event
/// stream, re-record through [`Recorder`] — never through a live
/// communicator, where an intentionally broken protocol would deadlock the
/// collectives it is meant to corrupt. Re-recording keeps every grammar
/// invariant intact, so the linter stays green and the analyzer findings
/// are unmistakably *semantic* findings.
pub fn seeded_violation_trace() -> Arc<TraceData> {
    let app = pythia_apps::find_app("MG").expect("MG is in the app table");
    let base = pythia_apps::harness::record_trace(
        app.as_ref(),
        4,
        pythia_apps::WorkingSet::Small,
        pythia_apps::work::WorkScale::ZERO,
    );
    Arc::new(seed_violations(&base))
}

/// Seeds the four violations into an existing clean multi-rank trace.
pub fn seed_violations(base: &TraceData) -> TraceData {
    let mut registry = base.registry().clone();
    let extra_send = registry.intern("MPI_Send", Some(1));
    let divergent = registry.intern("MPI_Reduce", Some(0x5EED));
    let racy_store = registry.intern("store", Some(0x7ACE));
    let window_isend = registry.intern("MPI_Isend", Some(1));
    let window_pad = registry.intern("compute_pad", None);
    let classes = ClassTable::from_registry(&registry);
    let n = base.threads().len();
    let threads = base
        .threads()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut events = t.grammar.unfold();
            if i == 0 {
                events.push(extra_send);
            }
            // Racy pair: ranks 0 and 1 both store to the same object right
            // after their first collective — same barrier epoch on both
            // sides, so nothing orders the two writes.
            if i < 2 && n > 1 {
                let after_first_collective = events
                    .iter()
                    .position(|&e| matches!(classes.class(e), EventClass::Collective { .. }))
                    .map(|k| k + 1)
                    .unwrap_or(events.len());
                events.insert(after_first_collective, racy_store);
                if i == 0 {
                    // Isend-without-Wait window: an Isend followed by 16
                    // events none of which completes it.
                    let mut window = vec![window_isend];
                    window.extend(vec![window_pad; 16]);
                    events.splice(
                        after_first_collective + 1..after_first_collective + 1,
                        window,
                    );
                }
            }
            if i == n - 1 && n > 1 {
                let last_collective = events
                    .iter()
                    .rposition(|&e| matches!(classes.class(e), EventClass::Collective { .. }));
                match last_collective {
                    Some(k) => events[k] = divergent,
                    None => events.push(divergent),
                }
            }
            let mut rec = Recorder::new(RecordConfig {
                timestamps: false,
                validate: false,
            });
            for e in events {
                rec.record(e);
            }
            rec.finish_thread().expect("in-memory recorder cannot fail")
        })
        .collect();
    TraceData::from_threads(threads, registry)
}

/// Runs the `recover` subcommand: rebuild an interrupted recording from
/// its durability sidecars ([`TraceData::recover`]), report what was
/// salvaged, and save the recovered trace.
///
/// Exit codes: `0` recovered (the report notes any bounded loss), `2`
/// usage error or nothing recoverable.
pub fn run_recover(argv: &[String], out: &mut String, err: &mut String) -> i32 {
    let mut path: Option<PathBuf> = None;
    let mut dest: Option<PathBuf> = None;
    let mut json = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => match it.next() {
                Some(v) => dest = Some(PathBuf::from(v)),
                None => {
                    let _ = writeln!(err, "error: --out needs a path\n\n{USAGE}");
                    return EXIT_USAGE;
                }
            },
            "--help" | "-h" => {
                out.push_str(USAGE);
                return EXIT_CLEAN;
            }
            other if other.starts_with("--") => {
                let _ = writeln!(err, "error: unknown flag {other}\n\n{USAGE}");
                return EXIT_USAGE;
            }
            p if path.is_none() => path = Some(PathBuf::from(p)),
            p => {
                let _ = writeln!(
                    err,
                    "error: recover takes one trace, got extra {p}\n\n{USAGE}"
                );
                return EXIT_USAGE;
            }
        }
    }
    let Some(path) = path else {
        let _ = writeln!(err, "error: recover needs a trace path\n\n{USAGE}");
        return EXIT_USAGE;
    };
    let (trace, report) = match TraceData::recover(&path) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(err, "error: {}: {e}", path.display());
            return EXIT_USAGE;
        }
    };
    let dest = dest.unwrap_or_else(|| path.clone());
    if let Err(e) = trace.save(&dest) {
        let _ = writeln!(err, "error: {}: {e}", dest.display());
        return EXIT_USAGE;
    }
    if json {
        let ranks: Vec<_> = report
            .ranks
            .iter()
            .map(|r| {
                serde_json::json!({
                    "rank": r.rank,
                    "checkpoint_events": r.checkpoint_events,
                    "replayed_events": r.replayed_events,
                    "recovered_events": r.recovered_events,
                    "torn_tail_bytes": r.torn_tail_bytes,
                    "warnings": r.warnings,
                })
            })
            .collect();
        let _ = writeln!(
            out,
            "{}",
            serde_json::json!({
                "path": path.display().to_string(),
                "out": dest.display().to_string(),
                "used_final_file": report.used_final_file,
                "placeholder_descs": report.placeholder_descs,
                "total_events": report.total_events(),
                "ranks": ranks,
            })
        );
    } else {
        let _ = writeln!(out, "{report}");
        let _ = writeln!(
            out,
            "recovered {} events -> {}",
            report.total_events(),
            dest.display()
        );
    }
    EXIT_CLEAN
}

/// Analyzes every path in `cli` with its config and renders the reports;
/// the exit code is the `--deny` verdict. Shared by the default mode and
/// the `race` / `match` subcommands.
fn analyze_paths(cli: &Cli, out: &mut String, err: &mut String) -> i32 {
    let mut json_reports = Vec::new();
    let mut denied = false;
    for path in &cli.paths {
        let trace = match load_sniffed(path) {
            Ok(t) => t,
            Err(msg) => {
                let _ = writeln!(err, "error: {msg}");
                return EXIT_USAGE;
            }
        };
        let report = analyze_trace(&trace, &cli.config);
        denied |= report.exceeds(cli.deny);
        if cli.json {
            json_reports.push(serde_json::json!({
                "path": path.display().to_string(),
                "report": report.to_json()
            }));
        } else {
            let _ = writeln!(out, "== {} ==", path.display());
            out.push_str(&report.render_text());
            out.push('\n');
        }
    }
    if cli.json {
        out.push_str(&serde_json::Value::Array(json_reports).to_string());
        out.push('\n');
    }
    if denied {
        EXIT_FINDINGS
    } else {
        EXIT_CLEAN
    }
}

/// Runs the `race` subcommand: the happens-before race detector alone
/// (plus the linter, whose soundness proof the summary algebra needs).
pub fn run_race(argv: &[String], out: &mut String, err: &mut String) -> i32 {
    let mut cli = match parse(argv) {
        Ok(cli) => cli,
        Err(msg) => {
            let _ = writeln!(err, "error: {msg}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };
    if cli.help {
        out.push_str(USAGE);
        return EXIT_CLEAN;
    }
    cli.config.protocol = false;
    cli.config.predictability = false;
    cli.config.race = true;
    analyze_paths(&cli, out, err)
}

/// Runs the `match <pattern>` subcommand: one pattern query per rank on
/// the compressed trace. `--severity` sets the weight of a hit,
/// `--absent` inverts the verdict (flag ranks where the pattern never
/// matches).
pub fn run_match(argv: &[String], out: &mut String, err: &mut String) -> i32 {
    let mut cli = match parse(argv) {
        Ok(cli) => cli,
        Err(msg) => {
            let _ = writeln!(err, "error: {msg}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };
    if cli.help {
        out.push_str(USAGE);
        return EXIT_CLEAN;
    }
    if cli.paths.len() < 2 {
        let _ = writeln!(
            err,
            "error: match needs a pattern and at least one trace\n\n{USAGE}"
        );
        return EXIT_USAGE;
    }
    let pattern = cli.paths.remove(0).display().to_string();
    let query = match PatternQuery::new(&pattern, cli.severity, cli.absent) {
        Ok(q) => q,
        Err(msg) => {
            let _ = writeln!(err, "error: {msg}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };
    cli.config.protocol = false;
    cli.config.predictability = false;
    cli.config.race = false;
    cli.config.patterns = vec![query];
    // A query hit should decide the exit code at its own severity.
    cli.deny = cli.deny.min(cli.severity);
    analyze_paths(&cli, out, err)
}

/// Runs the CLI. Human/JSON output is appended to `out`, errors to `err`;
/// returns the process exit code.
pub fn run(argv: &[String], out: &mut String, err: &mut String) -> i32 {
    match argv.first().map(String::as_str) {
        Some("recover") => return run_recover(&argv[1..], out, err),
        Some("race") => return run_race(&argv[1..], out, err),
        Some("match") => return run_match(&argv[1..], out, err),
        _ => {}
    }
    let cli = match parse(argv) {
        Ok(cli) => cli,
        Err(msg) => {
            let _ = writeln!(err, "error: {msg}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };
    if cli.help {
        out.push_str(USAGE);
        return EXIT_CLEAN;
    }
    if let Some(path) = &cli.seed_out {
        let trace = seeded_violation_trace();
        return match trace.save(path) {
            Ok(()) => {
                let _ = writeln!(out, "wrote seeded-violation trace to {}", path.display());
                EXIT_CLEAN
            }
            Err(e) => {
                let _ = writeln!(err, "error: {}: {e}", path.display());
                EXIT_USAGE
            }
        };
    }
    analyze_paths(&cli, out, err)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let argv: Vec<String> = [
            "a.trace",
            "--deny",
            "warnings",
            "--no-predictability",
            "--top",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = parse(&argv).unwrap();
        assert_eq!(cli.paths.len(), 1);
        assert_eq!(cli.deny, Severity::Warning);
        assert!(cli.config.lint && cli.config.protocol);
        assert!(!cli.config.predictability);
        assert_eq!(cli.config.top, 3);
    }

    #[test]
    fn parse_rejects_unknown_flag_and_empty() {
        assert!(parse(&["--frobnicate".to_string()]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["--help".to_string()]).unwrap().help);
    }

    #[test]
    fn usage_error_exits_2() {
        let (mut out, mut err) = (String::new(), String::new());
        assert_eq!(run(&["--deny".to_string()], &mut out, &mut err), EXIT_USAGE);
        assert!(err.contains("--deny needs a value"));
    }

    #[test]
    fn missing_file_exits_2() {
        let (mut out, mut err) = (String::new(), String::new());
        let argv = vec!["/nonexistent/definitely-not-here.trace".to_string()];
        assert_eq!(run(&argv, &mut out, &mut err), EXIT_USAGE);
    }
}
