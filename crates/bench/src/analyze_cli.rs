//! Implementation of the `pythia-analyze` binary: static analysis of saved
//! traces without decompression.
//!
//! The binary is a thin `main` over [`run`], so integration tests can drive
//! the exact production code path (argument parsing, format sniffing, exit
//! codes) in-process instead of spawning the compiled binary.
//!
//! Exit codes: `0` clean (no finding at or above `--deny`), `1` at least
//! one deny-level finding, `2` usage or I/O error.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::sync::Arc;

use pythia_core::analyze::{analyze_trace, AnalyzeConfig, ClassTable, EventClass, Severity};
use pythia_core::record::{RecordConfig, Recorder};
use pythia_core::trace::{TraceData, MAGIC};

/// Exit code for "nothing at or above the deny level".
pub const EXIT_CLEAN: i32 = 0;
/// Exit code for "deny-level findings present".
pub const EXIT_FINDINGS: i32 = 1;
/// Exit code for usage or I/O errors.
pub const EXIT_USAGE: i32 = 2;

const USAGE: &str = "\
pythia-analyze: lint, verify and profile saved PYTHIA traces without expanding them

USAGE:
    pythia-analyze [FLAGS] TRACE...
    pythia-analyze recover [--out <P>] [--json] TRACE

ARGS:
    TRACE...    trace files (binary or JSON; format sniffed from content)

SUBCOMMANDS:
    recover     rebuild an interrupted recording from its journal/checkpoint
                sidecars (`<TRACE>.r<rank>.journal` / `.ckpt`) and save the
                recovered trace to --out (default: TRACE itself)

FLAGS:
    --json                          machine-readable output (one report object per trace)
    --deny <warnings|errors>        exit 1 when findings reach this severity [default: errors]
    --no-lint                       skip the grammar linter
    --no-protocol                   skip the cross-rank MPI protocol verifier
    --no-predictability             skip the predictability report
    --top <N>                       least-predictable events to keep per thread [default: 5]
    --write-seeded-violations <P>   record a reference app, seed an unmatched send and a
                                    collective divergence into it, save to P, and exit
    --help                          show this help
";

/// Parsed command line.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Input trace paths, in argument order.
    pub paths: Vec<PathBuf>,
    /// Emit JSON instead of human text.
    pub json: bool,
    /// Severity at which findings turn the exit code non-zero.
    pub deny: Severity,
    /// Pass selection and predictability knobs.
    pub config: AnalyzeConfig,
    /// When set: write the seeded-violation fixture here and exit.
    pub seed_out: Option<PathBuf>,
    /// `--help` was requested.
    pub help: bool,
}

/// Parses `argv` (without the program name). Errors are usage messages.
pub fn parse(argv: &[String]) -> Result<Cli, String> {
    let mut cli = Cli {
        paths: Vec::new(),
        json: false,
        deny: Severity::Error,
        config: AnalyzeConfig::default(),
        seed_out: None,
        help: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => cli.json = true,
            "--deny" => {
                let v = it.next().ok_or("--deny needs a value")?;
                cli.deny = match v.as_str() {
                    "warnings" | "warning" => Severity::Warning,
                    "errors" | "error" => Severity::Error,
                    other => return Err(format!("--deny expects warnings|errors, got {other}")),
                };
            }
            "--no-lint" => cli.config.lint = false,
            "--no-protocol" => cli.config.protocol = false,
            "--no-predictability" => cli.config.predictability = false,
            "--top" => {
                let v = it.next().ok_or("--top needs a value")?;
                cli.config.top = v
                    .parse()
                    .map_err(|_| format!("--top expects a number, got {v}"))?;
            }
            "--write-seeded-violations" => {
                let v = it.next().ok_or("--write-seeded-violations needs a path")?;
                cli.seed_out = Some(PathBuf::from(v));
            }
            "--help" | "-h" => cli.help = true,
            other if other.starts_with("--") => return Err(format!("unknown flag {other}")),
            path => cli.paths.push(PathBuf::from(path)),
        }
    }
    if !cli.help && cli.seed_out.is_none() && cli.paths.is_empty() {
        return Err("no trace files given".into());
    }
    Ok(cli)
}

/// Loads a trace leniently, sniffing binary vs. JSON from the content.
///
/// Lenient on purpose: the analyzer's job is to *diagnose* invariant
/// violations, so the strict loader (which rejects them as
/// [`pythia_core::error::Error::Corrupt`]) would hide exactly the inputs
/// this tool exists for. Structurally unparseable files still error.
pub fn load_sniffed(path: &std::path::Path) -> Result<TraceData, String> {
    let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
    let res = if bytes.starts_with(MAGIC) {
        TraceData::from_bytes_lenient(&bytes)
    } else {
        let text = std::str::from_utf8(&bytes)
            .map_err(|_| format!("{}: neither PYTHIA binary nor UTF-8 JSON", path.display()))?;
        TraceData::from_json_lenient(text)
    };
    res.map_err(|e| format!("{}: {e}", path.display()))
}

/// Records a reference application and seeds two protocol violations into
/// it: an extra `MPI_Send` on rank 0 (unmatched send) and an altered
/// collective on the last rank (collective-sequence divergence).
///
/// The mutation works offline — unfold each rank's grammar, edit the event
/// stream, re-record through [`Recorder`] — never through a live
/// communicator, where an intentionally broken protocol would deadlock the
/// collectives it is meant to corrupt. Re-recording keeps every grammar
/// invariant intact, so the linter stays green and the verifier findings
/// are unmistakably *protocol* findings.
pub fn seeded_violation_trace() -> Arc<TraceData> {
    let app = pythia_apps::find_app("MG").expect("MG is in the app table");
    let base = pythia_apps::harness::record_trace(
        app.as_ref(),
        4,
        pythia_apps::WorkingSet::Small,
        pythia_apps::work::WorkScale::ZERO,
    );
    Arc::new(seed_violations(&base))
}

/// Seeds the two violations into an existing clean multi-rank trace.
pub fn seed_violations(base: &TraceData) -> TraceData {
    let mut registry = base.registry().clone();
    let extra_send = registry.intern("MPI_Send", Some(1));
    let divergent = registry.intern("MPI_Reduce", Some(0x5EED));
    let classes = ClassTable::from_registry(&registry);
    let n = base.threads().len();
    let threads = base
        .threads()
        .iter()
        .enumerate()
        .map(|(i, t)| {
            let mut events = t.grammar.unfold();
            if i == 0 {
                events.push(extra_send);
            }
            if i == n - 1 && n > 1 {
                let last_collective = events
                    .iter()
                    .rposition(|&e| matches!(classes.class(e), EventClass::Collective { .. }));
                match last_collective {
                    Some(k) => events[k] = divergent,
                    None => events.push(divergent),
                }
            }
            let mut rec = Recorder::new(RecordConfig {
                timestamps: false,
                validate: false,
            });
            for e in events {
                rec.record(e);
            }
            rec.finish_thread().expect("in-memory recorder cannot fail")
        })
        .collect();
    TraceData::from_threads(threads, registry)
}

/// Runs the `recover` subcommand: rebuild an interrupted recording from
/// its durability sidecars ([`TraceData::recover`]), report what was
/// salvaged, and save the recovered trace.
///
/// Exit codes: `0` recovered (the report notes any bounded loss), `2`
/// usage error or nothing recoverable.
pub fn run_recover(argv: &[String], out: &mut String, err: &mut String) -> i32 {
    let mut path: Option<PathBuf> = None;
    let mut dest: Option<PathBuf> = None;
    let mut json = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--out" => match it.next() {
                Some(v) => dest = Some(PathBuf::from(v)),
                None => {
                    let _ = writeln!(err, "error: --out needs a path\n\n{USAGE}");
                    return EXIT_USAGE;
                }
            },
            "--help" | "-h" => {
                out.push_str(USAGE);
                return EXIT_CLEAN;
            }
            other if other.starts_with("--") => {
                let _ = writeln!(err, "error: unknown flag {other}\n\n{USAGE}");
                return EXIT_USAGE;
            }
            p if path.is_none() => path = Some(PathBuf::from(p)),
            p => {
                let _ = writeln!(
                    err,
                    "error: recover takes one trace, got extra {p}\n\n{USAGE}"
                );
                return EXIT_USAGE;
            }
        }
    }
    let Some(path) = path else {
        let _ = writeln!(err, "error: recover needs a trace path\n\n{USAGE}");
        return EXIT_USAGE;
    };
    let (trace, report) = match TraceData::recover(&path) {
        Ok(r) => r,
        Err(e) => {
            let _ = writeln!(err, "error: {}: {e}", path.display());
            return EXIT_USAGE;
        }
    };
    let dest = dest.unwrap_or_else(|| path.clone());
    if let Err(e) = trace.save(&dest) {
        let _ = writeln!(err, "error: {}: {e}", dest.display());
        return EXIT_USAGE;
    }
    if json {
        let ranks: Vec<_> = report
            .ranks
            .iter()
            .map(|r| {
                serde_json::json!({
                    "rank": r.rank,
                    "checkpoint_events": r.checkpoint_events,
                    "replayed_events": r.replayed_events,
                    "recovered_events": r.recovered_events,
                    "torn_tail_bytes": r.torn_tail_bytes,
                    "warnings": r.warnings,
                })
            })
            .collect();
        let _ = writeln!(
            out,
            "{}",
            serde_json::json!({
                "path": path.display().to_string(),
                "out": dest.display().to_string(),
                "used_final_file": report.used_final_file,
                "placeholder_descs": report.placeholder_descs,
                "total_events": report.total_events(),
                "ranks": ranks,
            })
        );
    } else {
        let _ = writeln!(out, "{report}");
        let _ = writeln!(
            out,
            "recovered {} events -> {}",
            report.total_events(),
            dest.display()
        );
    }
    EXIT_CLEAN
}

/// Runs the CLI. Human/JSON output is appended to `out`, errors to `err`;
/// returns the process exit code.
pub fn run(argv: &[String], out: &mut String, err: &mut String) -> i32 {
    if argv.first().map(String::as_str) == Some("recover") {
        return run_recover(&argv[1..], out, err);
    }
    let cli = match parse(argv) {
        Ok(cli) => cli,
        Err(msg) => {
            let _ = writeln!(err, "error: {msg}\n\n{USAGE}");
            return EXIT_USAGE;
        }
    };
    if cli.help {
        out.push_str(USAGE);
        return EXIT_CLEAN;
    }
    if let Some(path) = &cli.seed_out {
        let trace = seeded_violation_trace();
        return match trace.save(path) {
            Ok(()) => {
                let _ = writeln!(out, "wrote seeded-violation trace to {}", path.display());
                EXIT_CLEAN
            }
            Err(e) => {
                let _ = writeln!(err, "error: {}: {e}", path.display());
                EXIT_USAGE
            }
        };
    }

    let mut json_reports = Vec::new();
    let mut denied = false;
    for path in &cli.paths {
        let trace = match load_sniffed(path) {
            Ok(t) => t,
            Err(msg) => {
                let _ = writeln!(err, "error: {msg}");
                return EXIT_USAGE;
            }
        };
        let report = analyze_trace(&trace, &cli.config);
        denied |= report.exceeds(cli.deny);
        if cli.json {
            json_reports.push(serde_json::json!({
                "path": path.display().to_string(),
                "report": report.to_json()
            }));
        } else {
            let _ = writeln!(out, "== {} ==", path.display());
            out.push_str(&report.render_text());
            out.push('\n');
        }
    }
    if cli.json {
        out.push_str(&serde_json::Value::Array(json_reports).to_string());
        out.push('\n');
    }
    if denied {
        EXIT_FINDINGS
    } else {
        EXIT_CLEAN
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_defaults_and_flags() {
        let argv: Vec<String> = [
            "a.trace",
            "--deny",
            "warnings",
            "--no-predictability",
            "--top",
            "3",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        let cli = parse(&argv).unwrap();
        assert_eq!(cli.paths.len(), 1);
        assert_eq!(cli.deny, Severity::Warning);
        assert!(cli.config.lint && cli.config.protocol);
        assert!(!cli.config.predictability);
        assert_eq!(cli.config.top, 3);
    }

    #[test]
    fn parse_rejects_unknown_flag_and_empty() {
        assert!(parse(&["--frobnicate".to_string()]).is_err());
        assert!(parse(&[]).is_err());
        assert!(parse(&["--help".to_string()]).unwrap().help);
    }

    #[test]
    fn usage_error_exits_2() {
        let (mut out, mut err) = (String::new(), String::new());
        assert_eq!(run(&["--deny".to_string()], &mut out, &mut err), EXIT_USAGE);
        assert!(err.contains("--deny needs a value"));
    }

    #[test]
    fn missing_file_exits_2() {
        let (mut out, mut err) = (String::new(), String::new());
        let argv = vec!["/nonexistent/definitely-not-here.trace".to_string()];
        assert_eq!(run(&argv, &mut out, &mut err), EXIT_USAGE);
    }
}
