//! The kill -9 regression gate for durable serve sessions (ISSUE 8
//! acceptance criterion): record sessions through a real server
//! process, SIGKILL it mid-flight, restart with `--recover`, and prove
//! every resumed session serves predictions byte-identical to a
//! single-process oracle. Drives the `serve_crash` binary the same way
//! ci.sh does.

use std::io::{BufRead, BufReader};
use std::process::{Child, Command, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_serve_crash");

fn spawn_server(dir: &std::path::Path, socket: &std::path::Path, recover: bool) -> Child {
    let mut cmd = Command::new(BIN);
    cmd.arg("serve")
        .arg("--dir")
        .arg(dir)
        .arg("--socket")
        .arg(socket)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit());
    if recover {
        cmd.arg("--recover");
    }
    let mut child = cmd.spawn().expect("spawn serve_crash serve");
    // Block until the server prints `ready` (with `--recover`, after its
    // `recovered N M` report line).
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    loop {
        match lines.next() {
            Some(Ok(line)) if line.trim() == "ready" => break,
            Some(Ok(_)) => continue,
            other => panic!("server never became ready: {other:?}"),
        }
    }
    child
}

fn run(role_args: &[&std::ffi::OsStr]) {
    let status = Command::new(BIN)
        .args(role_args)
        .status()
        .expect("run serve_crash role");
    assert!(status.success(), "{role_args:?} failed: {status}");
}

#[test]
fn killed_server_recovers_byte_identical_sessions() {
    let dir = std::env::temp_dir().join(format!("pythia-serve-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let journals = dir.join("journals");
    let socket = dir.join("serve.sock");
    let manifest = dir.join("sessions.txt");

    // Incarnation one: durable sessions recorded over the socket.
    let mut first = spawn_server(&journals, &socket, false);
    run(&[
        "drive".as_ref(),
        "--socket".as_ref(),
        socket.as_os_str(),
        "--out".as_ref(),
        manifest.as_os_str(),
    ]);

    // The crash: SIGKILL, no drain, no flush, no goodbye.
    first.kill().expect("SIGKILL the server");
    let _ = first.wait();
    let _ = std::fs::remove_file(&socket);

    // Incarnation two recovers the journal directory and must serve
    // byte-identical predictions for every resumed session.
    let mut second = spawn_server(&journals, &socket, true);
    run(&[
        "verify".as_ref(),
        "--socket".as_ref(),
        socket.as_os_str(),
        "--in".as_ref(),
        manifest.as_os_str(),
    ]);

    second.kill().expect("stop the recovered server");
    let _ = second.wait();
    let _ = std::fs::remove_dir_all(&dir);
}
