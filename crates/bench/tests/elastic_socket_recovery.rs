//! The rank-crash regression gate for elastic socket worlds (ISSUE 10
//! acceptance criterion): record a multi-process world over the socket
//! backend, SIGKILL one rank's worker process mid-record, admit a
//! replacement incarnation, and prove the assembled trace — every
//! rank's grammar — is byte-identical to a fault-free run's. Drives the
//! `elastic_record` binary the same way ci.sh does.

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const BIN: &str = env!("CARGO_BIN_EXE_elastic_record");
const RANKS: usize = 3;
const EVENTS: &str = "20000";

fn spawn_hub(socket: &Path, ranks: usize) -> Child {
    let child = Command::new(BIN)
        .arg("hub")
        .arg(socket)
        .arg(ranks.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn hub");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !socket.exists() {
        assert!(Instant::now() < deadline, "hub never created its socket");
        std::thread::sleep(Duration::from_millis(10));
    }
    child
}

fn spawn_worker(socket: &Path, trace: &Path, rank: usize, incarnation: u64) -> Child {
    Command::new(BIN)
        .arg("worker")
        .arg(socket)
        .arg(trace)
        .arg(rank.to_string())
        .arg(RANKS.to_string())
        .arg(EVENTS)
        .arg(incarnation.to_string())
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn worker")
}

fn wait_success(mut child: Child, what: &str) -> String {
    let mut out = String::new();
    if let Some(stdout) = child.stdout.take() {
        for line in BufReader::new(stdout).lines() {
            out.push_str(&line.unwrap());
            out.push('\n');
        }
    }
    let status = child.wait().expect("wait child");
    assert!(status.success(), "{what} failed ({status}):\n{out}");
    out
}

fn assemble(trace: &Path) -> String {
    let out = Command::new(BIN)
        .arg("assemble")
        .arg(trace)
        .output()
        .expect("run assemble");
    assert!(
        out.status.success(),
        "assemble failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// Fault-free run: hub + one worker process per rank.
fn record_clean(dir: &Path) -> PathBuf {
    let socket = dir.join("free.sock");
    let trace = dir.join("free.pythia");
    let hub = spawn_hub(&socket, RANKS);
    let workers: Vec<Child> = (0..RANKS)
        .map(|r| spawn_worker(&socket, &trace, r, 0))
        .collect();
    for (r, w) in workers.into_iter().enumerate() {
        wait_success(w, &format!("worker {r}"));
    }
    let hub_out = wait_success(hub, "hub");
    assert!(hub_out.contains("failures=0 replaced=0"), "{hub_out}");
    assemble(&trace);
    trace
}

/// Faulty run: SIGKILL rank 1's worker once its journal holds >= 512
/// events, then admit a replacement incarnation that salvages the
/// journal and resumes.
fn record_with_rank_crash(dir: &Path) -> PathBuf {
    let socket = dir.join("faulty.sock");
    let trace = dir.join("faulty.pythia");
    let hub = spawn_hub(&socket, RANKS);
    let survivors: Vec<Child> = [0, 2]
        .iter()
        .map(|&r| spawn_worker(&socket, &trace, r, 0))
        .collect();

    let mut victim = spawn_worker(&socket, &trace, 1, 0);
    {
        // The victim prints `progress rank=1 events=N` every 256 events;
        // kill it only after real progress so the replacement genuinely
        // replays a journaled prefix.
        let stdout = victim.stdout.take().expect("victim stdout");
        let mut lines = BufReader::new(stdout).lines();
        loop {
            match lines.next() {
                Some(Ok(line)) if line.contains("events=512") => break,
                Some(Ok(_)) => continue,
                other => panic!("victim finished before the kill: {other:?}"),
            }
        }
    }
    victim.kill().expect("SIGKILL the victim rank");
    let _ = victim.wait();

    let replacement = spawn_worker(&socket, &trace, 1, 1);
    let out = wait_success(replacement, "replacement rank 1");
    assert!(out.contains("replaced=1"), "not a replacement run:\n{out}");
    let resumed: u64 = out
        .lines()
        .rev()
        .find_map(|l| {
            l.split_whitespace()
                .find_map(|w| w.strip_prefix("resumed=").and_then(|v| v.parse().ok()))
        })
        .expect("replacement reported no resume point");
    assert!(
        resumed >= 512,
        "replacement salvaged only {resumed} events from the journal"
    );

    for (i, w) in survivors.into_iter().enumerate() {
        wait_success(w, &format!("survivor {}", [0, 2][i]));
    }
    let hub_out = wait_success(hub, "hub");
    assert!(hub_out.contains("failures=1 replaced=1"), "{hub_out}");
    assemble(&trace);
    trace
}

#[test]
fn killed_rank_recovers_byte_identical_trace() {
    let dir = std::env::temp_dir().join(format!("pythia-elastic-sock-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    let clean = record_clean(&dir);
    let faulty = record_with_rank_crash(&dir);

    let a = std::fs::read(&clean).expect("read fault-free trace");
    let b = std::fs::read(&faulty).expect("read recovered trace");
    assert_eq!(
        a, b,
        "trace recovered through a replacement rank differs from the fault-free run"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
