//! End-to-end test of `pythia-analyze` (ISSUE acceptance criterion):
//! record a real application through the instrumented MPI runtime, seed an
//! unmatched send and a collective divergence into the trace, and check
//! the CLI detects both and exits non-zero under `--deny` — while the
//! clean recording passes `--deny warnings`.
//!
//! Drives `analyze_cli::run` in-process (the binary's `main` is a thin
//! wrapper around it), so exit codes, sniffing, and output formatting are
//! all the production path.

use pythia_bench::analyze_cli::{run, seed_violations, EXIT_CLEAN, EXIT_FINDINGS};
use pythia_core::analyze::Severity;

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

#[test]
fn seeded_violations_detected_clean_trace_passes() {
    let dir = std::env::temp_dir().join(format!("pythia-analyze-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let clean_path = dir.join("clean.trace");
    let clean_json_path = dir.join("clean.json");
    let seeded_path = dir.join("seeded.trace");

    // Reference execution: record MG on 4 ranks end to end.
    let app = pythia_apps::find_app("MG").unwrap();
    let clean = pythia_apps::harness::record_trace(
        app.as_ref(),
        4,
        pythia_apps::WorkingSet::Small,
        pythia_apps::work::WorkScale::ZERO,
    );
    clean.save(&clean_path).unwrap();
    clean.save_json(&clean_json_path).unwrap();
    seed_violations(&clean).save(&seeded_path).unwrap();

    // The clean recording is protocol-correct: exit 0 even denying
    // warnings, in both serialization formats (sniffed from content).
    for p in [&clean_path, &clean_json_path] {
        let (mut out, mut err) = (String::new(), String::new());
        let code = run(
            &args(&[p.to_str().unwrap(), "--deny", "warnings"]),
            &mut out,
            &mut err,
        );
        assert_eq!(code, EXIT_CLEAN, "{}: {out}{err}", p.display());
    }

    // The seeded trace: both violations found, exit 1 under --deny.
    let (mut out, mut err) = (String::new(), String::new());
    let code = run(
        &args(&[seeded_path.to_str().unwrap(), "--deny", "errors"]),
        &mut out,
        &mut err,
    );
    assert_eq!(code, EXIT_FINDINGS, "{out}{err}");
    assert!(out.contains("unmatched-send"), "{out}");
    assert!(out.contains("collective-divergence"), "{out}");
    assert!(out.contains("data-race"), "{out}");

    // The race subcommand alone flags the seeded racy store pair…
    let (mut out, mut err) = (String::new(), String::new());
    let code = run(
        &args(&["race", seeded_path.to_str().unwrap(), "--deny", "errors"]),
        &mut out,
        &mut err,
    );
    assert_eq!(code, EXIT_FINDINGS, "{out}{err}");
    assert!(out.contains("data-race"), "{out}");
    // …and the clean recording stays clean under it.
    let (mut out, mut err) = (String::new(), String::new());
    let code = run(
        &args(&["race", clean_path.to_str().unwrap(), "--deny", "warnings"]),
        &mut out,
        &mut err,
    );
    assert_eq!(code, EXIT_CLEAN, "{out}{err}");

    // The match subcommand finds the seeded Isend-without-Wait window.
    let (mut out, mut err) = (String::new(), String::new());
    let code = run(
        &args(&[
            "match",
            "MPI_Isend (!MPI_Wait){8}",
            seeded_path.to_str().unwrap(),
        ]),
        &mut out,
        &mut err,
    );
    assert_eq!(code, EXIT_FINDINGS, "{out}{err}");
    assert!(out.contains("pattern-match"), "{out}");
    // A malformed pattern is a usage error, not a finding.
    let (mut out, mut err) = (String::new(), String::new());
    let code = run(
        &args(&["match", "isend (", seeded_path.to_str().unwrap()]),
        &mut out,
        &mut err,
    );
    assert_eq!(code, pythia_bench::analyze_cli::EXIT_USAGE, "{out}{err}");

    // JSON mode agrees and carries the same codes.
    let (mut out, mut err) = (String::new(), String::new());
    let code = run(
        &args(&[seeded_path.to_str().unwrap(), "--json"]),
        &mut out,
        &mut err,
    );
    assert_eq!(code, EXIT_FINDINGS, "{out}{err}");
    let v: serde_json::Value = serde_json::from_str(out.trim()).unwrap();
    let diags = v[0]["report"]["diagnostics"].as_array().unwrap().clone();
    let codes: Vec<String> = diags
        .iter()
        .map(|d| d["code"].as_str().unwrap().to_string())
        .collect();
    assert!(codes.iter().any(|c| c == "unmatched-send"), "{codes:?}");
    assert!(
        codes.iter().any(|c| c == "collective-divergence"),
        "{codes:?}"
    );

    // Structured report mirrors the library verdict exactly.
    let reloaded = pythia_core::trace::TraceData::load(&seeded_path).unwrap();
    let report = pythia_core::analyze::analyze_trace(&reloaded, &Default::default());
    assert_eq!(report.count(Severity::Error), 3);

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn pass_selection_flags_suppress_findings() {
    // A lone unmatched send: visible normally, invisible with
    // --no-protocol (the finding belongs to exactly that pass).
    let mut reg = pythia_core::event::EventRegistry::new();
    let send = reg.intern("MPI_Send", Some(1));
    let mut rec = pythia_core::record::Recorder::new(pythia_core::record::RecordConfig {
        timestamps: false,
        validate: false,
    });
    rec.record(send);
    let t0 = rec.finish_thread().unwrap();
    let mut rec = pythia_core::record::Recorder::new(pythia_core::record::RecordConfig {
        timestamps: false,
        validate: false,
    });
    rec.record(reg.intern("compute", None));
    let t1 = rec.finish_thread().unwrap();
    let trace = pythia_core::trace::TraceData::from_threads(vec![t0, t1], reg);

    let dir = std::env::temp_dir().join(format!("pythia-analyze-flags-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("p2p.trace");
    trace.save(&path).unwrap();

    let (mut out, mut err) = (String::new(), String::new());
    assert_eq!(
        run(&args(&[path.to_str().unwrap()]), &mut out, &mut err),
        EXIT_FINDINGS
    );
    let (mut out, mut err) = (String::new(), String::new());
    assert_eq!(
        run(
            &args(&[path.to_str().unwrap(), "--no-protocol"]),
            &mut out,
            &mut err
        ),
        EXIT_CLEAN,
        "{out}{err}"
    );
    std::fs::remove_dir_all(&dir).ok();
}
