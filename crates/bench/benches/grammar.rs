//! Criterion micro-benchmarks of the on-line grammar reduction
//! (PYTHIA-RECORD's hot path): event-ingestion throughput for the trace
//! shapes that bound the paper's Table I — highly regular loops (LU-like),
//! nested loops (BT-like), and irregular streams (Quicksilver-like).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pythia_core::event::EventId;
use pythia_core::grammar::builder::GrammarBuilder;

fn periodic_stream(period: u32, len: usize) -> Vec<EventId> {
    (0..len).map(|i| EventId(i as u32 % period)).collect()
}

fn nested_stream(len: usize) -> Vec<EventId> {
    // ((a b)^3 c)^k — BT-like nesting.
    let mut v = Vec::with_capacity(len + 8);
    while v.len() < len {
        for _ in 0..3 {
            v.push(EventId(0));
            v.push(EventId(1));
        }
        v.push(EventId(2));
    }
    v.truncate(len);
    v
}

fn irregular_stream(len: usize, alphabet: u32) -> Vec<EventId> {
    let mut state = 0x2545F4914F6CDD1Du64;
    (0..len)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            EventId((state % alphabet as u64) as u32)
        })
        .collect()
}

fn bench_ingestion(c: &mut Criterion) {
    let mut group = c.benchmark_group("grammar_ingestion");
    const LEN: usize = 100_000;
    group.throughput(Throughput::Elements(LEN as u64));
    for (name, stream) in [
        ("periodic_p4", periodic_stream(4, LEN)),
        ("nested_bt_like", nested_stream(LEN)),
        ("irregular_a8", irregular_stream(LEN, 8)),
        ("irregular_a64", irregular_stream(LEN, 64)),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &stream, |b, stream| {
            b.iter(|| {
                let mut builder = GrammarBuilder::new();
                for &e in stream {
                    builder.push(e);
                }
                builder.grammar().rule_count()
            });
        });
    }
    group.finish();
}

fn bench_unfold(c: &mut Criterion) {
    let mut group = c.benchmark_group("grammar_unfold");
    const LEN: usize = 100_000;
    group.throughput(Throughput::Elements(LEN as u64));
    let mut builder = GrammarBuilder::new();
    for e in nested_stream(LEN) {
        builder.push(e);
    }
    let grammar = builder.into_grammar();
    group.bench_function("nested_bt_like", |b| {
        b.iter(|| grammar.unfold_iter().count())
    });
    group.finish();
}

criterion_group!(benches, bench_ingestion, bench_unfold);
criterion_main!(benches);
