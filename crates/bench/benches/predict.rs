//! Criterion micro-benchmarks of PYTHIA-PREDICT: prediction latency as a
//! function of the prediction distance (the mechanism behind the paper's
//! Fig. 9 — cost grows linearly with distance, and irregular grammars are
//! more expensive to browse), plus `observe` tracking throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use pythia_core::event::{EventId, EventRegistry};
use pythia_core::predict::{Predictor, PredictorConfig};
use pythia_core::record::{RecordConfig, Recorder};
use pythia_core::trace::TraceData;

/// A BT-like regular trace: setup, a long nested loop, teardown.
fn regular_trace() -> TraceData {
    let mut rec = Recorder::new(RecordConfig {
        timestamps: false,
        validate: false,
    });
    for _ in 0..6 {
        rec.record(EventId(10));
    }
    for _ in 0..200 {
        for _ in 0..4 {
            rec.record(EventId(0));
            rec.record(EventId(1));
        }
        rec.record(EventId(2));
        rec.record(EventId(3));
    }
    rec.record(EventId(11));
    rec.finish(&EventRegistry::new()).unwrap()
}

/// A Quicksilver-like irregular trace: pseudo-random event stream.
fn irregular_trace() -> TraceData {
    let mut rec = Recorder::new(RecordConfig {
        timestamps: false,
        validate: false,
    });
    let mut state = 0x9E3779B97F4A7C15u64;
    for _ in 0..20_000 {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        rec.record(EventId((state % 24) as u32));
    }
    rec.finish(&EventRegistry::new()).unwrap()
}

fn synced_predictor(trace: &TraceData, warmup: &[u32]) -> Predictor {
    let mut p = Predictor::for_thread(trace, 0, PredictorConfig::default()).unwrap();
    for &e in warmup {
        p.observe(EventId(e));
    }
    p
}

fn bench_predict_distance(c: &mut Criterion) {
    let regular = regular_trace();
    let irregular = irregular_trace();
    let mut group = c.benchmark_group("predict_distance");
    for distance in [1usize, 2, 4, 8, 16, 32, 64, 128] {
        let p = synced_predictor(&regular, &[0, 1, 0, 1, 0, 1, 0, 1, 2, 3, 0, 1]);
        group.bench_with_input(BenchmarkId::new("regular", distance), &distance, |b, &d| {
            b.iter(|| p.predict(d).most_likely())
        });
        let pi = synced_predictor(&irregular, &[1, 2, 3]);
        group.bench_with_input(
            BenchmarkId::new("irregular", distance),
            &distance,
            |b, &d| b.iter(|| pi.predict(d).most_likely()),
        );
    }
    group.finish();
}

fn bench_observe_throughput(c: &mut Criterion) {
    let trace = regular_trace();
    let stream: Vec<EventId> = trace.thread(0).unwrap().grammar.unfold();
    let mut group = c.benchmark_group("observe_throughput");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("regular_replay", |b| {
        b.iter(|| {
            let mut p = Predictor::for_thread(&trace, 0, PredictorConfig::default()).unwrap();
            for &e in &stream {
                p.observe(e);
            }
            p.stats().matched
        });
    });
    group.finish();
}

/// Re-seed-heavy observation: a stream that keeps mismatching against an
/// irregular reference, so every other event rebuilds the candidate set
/// from the occurrence index (the pre-cache code re-scanned the grammar
/// and allocated a path per branch per candidate here).
fn bench_observe_reseed_heavy(c: &mut Criterion) {
    let trace = irregular_trace();
    // Replay the irregular reference stream with a deterministic corruption
    // every 3rd event: tracking is constantly lost and re-seeded.
    let reference: Vec<EventId> = trace.thread(0).unwrap().grammar.unfold();
    let stream: Vec<EventId> = reference
        .iter()
        .take(4_000)
        .enumerate()
        .map(|(i, &e)| {
            if i % 3 == 0 {
                EventId((i % 24) as u32)
            } else {
                e
            }
        })
        .collect();
    let mut group = c.benchmark_group("observe_reseed_heavy");
    group.throughput(Throughput::Elements(stream.len() as u64));
    group.bench_function("irregular_corrupted_replay", |b| {
        b.iter(|| {
            let mut p = Predictor::for_thread(&trace, 0, PredictorConfig::default()).unwrap();
            for &e in &stream {
                p.observe(e);
            }
            p.stats().reseeded
        });
    });
    group.finish();
}

/// Long-distance prediction on a deeply structured trace: the striding
/// simulation skips whole loop bodies, while a stepwise walk pays for each
/// of the `distance` events individually.
fn bench_predict_long_distance(c: &mut Criterion) {
    let regular = regular_trace();
    let p = synced_predictor(&regular, &[0, 1, 0, 1, 0, 1, 0, 1, 2, 3, 0, 1]);
    let mut group = c.benchmark_group("predict_long_distance");
    for distance in [128usize, 512, 2048] {
        group.bench_with_input(
            BenchmarkId::new("striding", distance),
            &distance,
            |b, &d| b.iter(|| p.predict(d).most_likely()),
        );
        group.bench_with_input(
            BenchmarkId::new("stepwise_scan", distance),
            &distance,
            |b, &d| b.iter(|| p.predict_scan(d).most_likely()),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_predict_distance,
    bench_observe_throughput,
    bench_observe_reseed_heavy,
    bench_predict_long_distance
);
criterion_main!(benches);
