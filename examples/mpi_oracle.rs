//! An MPI runtime system using PYTHIA: record a reference execution of an
//! HPC application skeleton, then replay it (optionally with a different
//! working set) while predicting future MPI calls at every blocking
//! operation — the paper's §III-B scenario.
//!
//! ```sh
//! cargo run --release --example mpi_oracle -- [APP] [RANKS]
//! # e.g.
//! cargo run --release --example mpi_oracle -- BT 8
//! ```

use std::sync::Arc;

use pythia::apps::harness::{record_trace, run_app};
use pythia::apps::work::WorkScale;
use pythia::apps::{find_app, WorkingSet};
use pythia::runtime_mpi::MpiMode;

fn main() {
    let mut args = std::env::args().skip(1);
    let app_name = args.next().unwrap_or_else(|| "BT".to_string());
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(8);
    let app = find_app(&app_name).unwrap_or_else(|| {
        eprintln!("unknown app '{app_name}'; try BT, CG, EP, FT, IS, LU, MG, SP, AMG, Lulesh, Kripke, miniFE, Quicksilver");
        std::process::exit(1);
    });

    // Reference execution with the small working set.
    println!(
        "recording {} on {ranks} ranks (small working set)...",
        app.name()
    );
    let trace = record_trace(app.as_ref(), ranks, WorkingSet::Small, WorkScale::ZERO);
    println!(
        "  {} events total, mean {:.0} grammar rules/rank",
        trace.total_events(),
        trace.mean_rule_count()
    );
    println!("\nrank 0 grammar:");
    let g = &trace.thread(0).unwrap().grammar;
    print!(
        "{}",
        g.render(&|e| trace.registry().name_of(e).replace("MPI_", ""))
    );

    // Replay on the large working set, predicting at every blocking call.
    println!("\nreplaying with the LARGE working set, predicting at blocking calls...");
    let mode = MpiMode::predict_distances(Arc::clone(&trace), vec![1, 8, 64]);
    let res = run_app(
        app.as_ref(),
        ranks,
        WorkingSet::Large,
        mode,
        WorkScale::ZERO,
    );

    println!("\nper-distance accuracy (all ranks):");
    let mut totals = [(0u64, 0u64); 3];
    for r in &res.reports {
        for (slot, (_, acc)) in r.accuracy.iter().enumerate() {
            totals[slot].0 += acc.correct;
            totals[slot].1 += acc.total();
        }
    }
    for (slot, d) in [1usize, 8, 64].iter().enumerate() {
        let (c, t) = totals[slot];
        if t > 0 {
            println!(
                "  distance {d:>2}: {:>5.1}%  ({c}/{t} predictions)",
                c as f64 / t as f64 * 100.0
            );
        } else {
            println!("  distance {d:>2}: no predictions resolved");
        }
    }
    let st = res.reports[0].predict_stats.unwrap();
    println!(
        "\nrank 0 tracking: {} events observed, {} matched, {} re-seeds, {} unknown",
        st.observed, st.matched, st.reseeded, st.unknown
    );
}
