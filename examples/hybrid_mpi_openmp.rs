//! A true MPI+OpenMP hybrid rank, the way the paper's hybrid applications
//! run (§III-B): each MPI rank hosts an OpenMP runtime, and *both* runtime
//! systems feed the same per-rank PYTHIA oracle — the recorded grammar
//! interleaves `MPI_*` and `omp_region_*` events. On the second run the
//! OpenMP side adapts its team sizes from predicted region durations while
//! the MPI side scores its own predictions.
//!
//! ```sh
//! cargo run --release --example hybrid_mpi_openmp -- [RANKS] [OMP_THREADS]
//! ```

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pythia::minimpi::{ReduceOp, World};
use pythia::minomp::{OmpRuntime, PoolMode, RegionId};
use pythia::runtime_mpi::session::assemble_trace;
use pythia::runtime_mpi::{MpiMode, PythiaComm};
use pythia::runtime_omp::ThresholdPolicy;

/// A miniFE-like solver step: an OpenMP matvec region, an OpenMP small
/// boundary region, then MPI dot products.
fn solver(pc: &PythiaComm, omp_threads: usize, adaptive: bool) {
    let listener = if adaptive {
        let policy = ThresholdPolicy::default();
        pc.omp_listener(Some(Box::new(move |d| policy.choose(d))))
    } else {
        pc.omp_listener(None)
    };
    let rt = OmpRuntime::with_listener(omp_threads, PoolMode::Park, listener);
    for _ in 0..20 {
        // Big region: the matvec.
        let sum = AtomicU64::new(0);
        rt.parallel_for(RegionId(0), 20_000, |i| {
            sum.fetch_add((i % 7) as u64, Ordering::Relaxed);
        });
        // Small region: boundary conditions.
        rt.parallel_for(RegionId(1), 16, |_| {
            std::hint::black_box(0u64);
        });
        // MPI: two dot products.
        pc.allreduce(&[1.0f64], ReduceOp::Sum);
        pc.allreduce(&[sum.load(Ordering::Relaxed) as f64], ReduceOp::Sum);
    }
    pc.barrier();
}

fn main() {
    let mut args = std::env::args().skip(1);
    let ranks: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);
    let omp_threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(4);

    // ---- Reference execution: record both runtimes' events ----
    println!("recording {ranks} ranks x {omp_threads} OpenMP threads...");
    let mode = MpiMode::record();
    let registry = PythiaComm::registry_for(&mode);
    let reports = World::run(ranks, |comm| {
        let pc = PythiaComm::wrap(comm, &mode, Arc::clone(&registry));
        solver(&pc, omp_threads, false);
        pc.finish().expect("no live split communicators")
    });
    println!(
        "  rank 0 recorded {} events ({} rules)",
        reports[0].events, reports[0].rules
    );
    let trace = Arc::new(assemble_trace(reports, &registry).expect("record-mode run"));
    println!("\nrank 0 grammar (MPI and OpenMP events in one stream):");
    print!(
        "{}",
        trace
            .thread(0)
            .unwrap()
            .grammar
            .render(&|e| trace.registry().name_of(e).replace("MPI_", ""))
    );

    // ---- Second execution: OpenMP adapts, MPI predicts ----
    let mode = MpiMode::predict(Arc::clone(&trace));
    let registry = PythiaComm::registry_for(&mode);
    let reports = World::run(ranks, |comm| {
        let pc = PythiaComm::wrap(comm, &mode, Arc::clone(&registry));
        solver(&pc, omp_threads, true);
        pc.finish().expect("no live split communicators")
    });
    let r0 = &reports[0];
    let st = r0.predict_stats.unwrap();
    println!(
        "\npredict run, rank 0: {} events observed, {} matched, {} re-seeds",
        st.observed, st.matched, st.reseeded
    );
    let (d, acc) = r0.accuracy[0];
    println!(
        "MPI blocking-call predictions at distance {d}: {:.1}% of {} correct",
        acc.accuracy() * 100.0,
        acc.total()
    );
}
