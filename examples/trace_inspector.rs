//! Inspect a PYTHIA trace file: per-thread grammar, event registry, timing
//! model size, and a JSON export — useful when debugging an integration.
//!
//! With no argument, records a demo trace first.
//!
//! ```sh
//! cargo run --example trace_inspector -- [TRACE_FILE]
//! ```

use pythia::apps::harness::record_trace;
use pythia::apps::work::WorkScale;
use pythia::apps::{find_app, WorkingSet};
use pythia::core::prelude::*;

fn main() -> Result<()> {
    let path = match std::env::args().nth(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // No file given: record a demo trace of the MG skeleton.
            let app = find_app("MG").unwrap();
            let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
            let p = std::env::temp_dir().join("pythia-inspector-demo.trace");
            trace.save(&p)?;
            println!(
                "(no file given; recorded a demo MG trace to {})\n",
                p.display()
            );
            p
        }
    };

    let trace = TraceData::load(&path)?;
    println!("trace file : {}", path.display());
    println!("threads    : {}", trace.thread_count());
    println!("events     : {}", trace.total_events());
    println!("registry   : {} event descriptors", trace.registry().len());
    println!();

    println!("interned events:");
    for (id, desc) in trace.registry().iter() {
        println!("  {id:>5} = {desc}");
    }
    println!();

    for (i, thread) in trace.threads().iter().enumerate() {
        println!(
            "--- thread {i}: {} events, {} rules, {} timing buckets ---",
            thread.event_count,
            thread.grammar.rule_count(),
            thread.timing.len(),
        );
        print!(
            "{}",
            thread.grammar.render(&|e| trace.registry().name_of(e))
        );
        println!();
    }

    // JSON export for external tooling.
    let json_path = path.with_extension("json");
    trace.save_json(&json_path)?;
    println!("JSON export written to {}", json_path.display());
    Ok(())
}
