//! The paper's §III-D use case end-to-end: an OpenMP runtime that asks
//! PYTHIA how long each parallel region will run and sizes the team
//! accordingly — small regions get few threads (skipping fork/join cost),
//! large regions get them all.
//!
//! ```sh
//! cargo run --release --example adaptive_openmp -- [PROBLEM_SIZE] [MAX_THREADS]
//! ```

use pythia::apps::lulesh_omp::{self, LuleshOmpConfig};
use pythia::minomp::{OmpRuntime, PoolMode};
use pythia::runtime_omp::{OmpOracle, ThresholdPolicy};

fn main() {
    let mut args = std::env::args().skip(1);
    let problem_size: u64 = args.next().and_then(|s| s.parse().ok()).unwrap_or(30);
    let max_threads: usize = args.next().and_then(|s| s.parse().ok()).unwrap_or(24);
    let cfg = LuleshOmpConfig {
        problem_size,
        steps: 10,
        ns_per_unit: 20,
    };
    println!(
        "LULESH-OMP model: s={problem_size}, {} steps, max {max_threads} threads\n",
        cfg.steps
    );

    // 1. Vanilla: stock runtime, max threads for every region.
    let vanilla = {
        let oracle = OmpOracle::vanilla();
        let rt = OmpRuntime::with_listener(max_threads, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &cfg)
    };
    println!("Vanilla        : {vanilla:?}");

    // 2. Reference execution: record every region's begin/end (with
    //    timestamps, so durations can be predicted next time).
    let oracle = OmpOracle::recorder();
    let recorded = {
        let rt = OmpRuntime::with_listener(max_threads, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &cfg)
    };
    println!("Pythia-record  : {recorded:?}");
    let trace = oracle.finish_trace().expect("recording produces a trace");
    println!(
        "  -> trace: {} events, {} rules",
        trace.total_events(),
        trace.thread(0).unwrap().grammar.rule_count()
    );

    // 3. Subsequent execution: adaptive team sizes from predictions.
    let oracle = OmpOracle::predictor(&trace, ThresholdPolicy::default(), 0.0, 42);
    let adaptive = {
        let rt = OmpRuntime::with_listener(max_threads, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &cfg)
    };
    let stats = oracle.stats();
    println!("Pythia-predict : {adaptive:?}");
    println!(
        "  -> {} regions, {} adapted, {} uninformed",
        stats.regions, stats.adapted, stats.uninformed
    );
    println!("  -> team-size histogram: {:?}", stats.team_histogram);

    let speedup = (vanilla.as_secs_f64() - adaptive.as_secs_f64()) / vanilla.as_secs_f64() * 100.0;
    println!("\nspeedup vs vanilla: {speedup:+.1}% (paper reports up to 38% at s=30)");
}
