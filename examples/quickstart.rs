//! Quickstart: record a reference execution, save the trace, reload it,
//! and ask the oracle about the future.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use pythia::core::prelude::*;

fn main() -> Result<()> {
    // ------------------------------------------------------------------
    // Reference execution (PYTHIA-RECORD).
    //
    // A runtime system interns descriptors for its key points and submits
    // an event whenever the application reaches one. Here we model a tiny
    // app: a setup call, a loop of (compute, send, wait), and a teardown.
    // ------------------------------------------------------------------
    let mut registry = EventRegistry::new();
    let init = registry.intern("init", None);
    let compute = registry.intern("compute", None);
    let send = registry.intern("MPI_Send", Some(1));
    let wait = registry.intern("MPI_Wait", None);
    let finalize = registry.intern("finalize", None);

    let mut recorder = Recorder::new(RecordConfig::default());
    let mut clock = 0u64; // virtual nanoseconds
    let mut tick = |recorder: &mut Recorder, ev, cost| {
        clock += cost;
        recorder.record_at(ev, clock);
    };
    tick(&mut recorder, init, 50_000);
    for _ in 0..100 {
        tick(&mut recorder, compute, 120_000); // 120µs of compute
        tick(&mut recorder, send, 3_000);
        tick(&mut recorder, wait, 15_000);
    }
    tick(&mut recorder, finalize, 10_000);

    let trace = recorder
        .finish(&registry)
        .expect("in-memory recorder cannot fail");
    println!(
        "recorded {} events, grammar has {} rules:",
        trace.total_events(),
        trace.thread(0)?.grammar.rule_count()
    );
    println!(
        "{}",
        trace
            .thread(0)?
            .grammar
            .render(&|e| trace.registry().name_of(e))
    );

    // The grammar — not the trace — is what gets saved.
    let path = std::env::temp_dir().join("pythia-quickstart.trace");
    trace.save(&path)?;
    println!(
        "saved to {} ({} bytes)\n",
        path.display(),
        std::fs::metadata(&path)?.len()
    );

    // ------------------------------------------------------------------
    // A later execution (PYTHIA-PREDICT).
    // ------------------------------------------------------------------
    let trace = TraceData::load(&path)?;
    let mut predictor = Predictor::new(&trace);

    // Start mid-stream — the oracle tolerates not seeing the beginning.
    predictor.observe(compute);
    predictor.observe(send);

    let next = predictor.predict(1);
    println!(
        "after (compute, send): next event is {} (p = {:.2})",
        trace.registry().name_of(next.most_likely().unwrap()),
        next.probability(next.most_likely().unwrap()),
    );
    let in_three = predictor.predict(3);
    println!(
        "three events ahead: {} (p = {:.2})",
        trace.registry().name_of(in_three.most_likely().unwrap()),
        in_three.probability(in_three.most_likely().unwrap()),
    );
    if let Some(delay) = predictor.predict_delay(2) {
        println!("estimated time until that wait completes + next compute begins: {delay:?}");
    }

    // An event the reference never saw leaves the oracle uninformed — the
    // runtime system falls back to its heuristic until re-synchronized.
    let unknown = EventId(9999);
    assert_eq!(predictor.observe(unknown), ObserveOutcome::Unknown);
    assert!(!predictor.predict(1).is_informed());
    predictor.observe(compute); // re-synchronizes here
    assert!(predictor.predict(1).is_informed());
    println!("\nrecovered after an unexpected event; oracle is tracking again");

    std::fs::remove_file(&path).ok();
    Ok(())
}

use pythia::core::predict::ObserveOutcome;
