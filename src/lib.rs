//! # pythia
//!
//! Meta-crate of the PYTHIA reproduction: re-exports the public API of all
//! workspace crates and hosts the repository-level examples and
//! integration tests. See the README for the architecture overview.

pub use pythia_apps as apps;
pub use pythia_core as core;
pub use pythia_minimpi as minimpi;
pub use pythia_minomp as minomp;
pub use pythia_runtime_mpi as runtime_mpi;
pub use pythia_runtime_omp as runtime_omp;
pub use pythia_serve as serve;

pub use pythia_core::prelude::*;
