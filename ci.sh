#!/bin/sh
# Tier-1 gate: formatting, lints, release build, full workspace tests.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace

# Chaos pass: the fault-injection suite on a clean environment, then the
# whole suite again with faults injected into every default-config oracle
# facade (PYTHIA_CHAOS is read by ResilienceConfig::default()). The
# applications must still complete — degraded, not dead.
cargo test -q --test chaos
PYTHIA_CHAOS="panic-predict" cargo test -q --test chaos
PYTHIA_CHAOS="drop=7,dup=13,slow-predict-us=5" cargo test -q --test chaos
