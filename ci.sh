#!/bin/sh
# Tier-1 gate: formatting, lints, release build, full workspace tests.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace
