#!/bin/sh
# Tier-1 gate: formatting, lints, release build, full workspace tests.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace

# Bench smoke: the contention benchmark at 1 and 8 threads, gated against
# the committed baseline (bench_json exits 1 on regression). The ns/event
# budget is 100%: shared single-core CI boxes run bimodally (~1.6x between
# their fast and slow modes, closer to 2x for the scheduler-sensitive
# serve row), so a tighter budget flakes on machine mode rather than
# code. The budget still catches asymptotic blowups, and the race/pattern
# sweeps are additionally gated by mode-immune absolute speedup floors
# computed within a single run.
ROOT=$(pwd)
BENCH=$(mktemp -d)
(cd "$BENCH" && "$ROOT"/target/release/bench_json --threads 1,8 \
    --check-baseline "$ROOT"/BENCH_predict.json --max-regress 100 >/dev/null)
rm -rf "$BENCH"

# Race & pattern gates: the seeded-violation fixture carries a same-epoch
# racy store pair and an Isend-without-Wait window; the race subcommand
# and a window query must both flag it with exit 1 exactly — never 0
# (missed) and never 2 (crash/usage).
ANALYZE=target/release/pythia-analyze
SEEDED=$(mktemp -d)
"$ANALYZE" --write-seeded-violations "$SEEDED/seeded.trace" >/dev/null
if "$ANALYZE" race --deny errors "$SEEDED/seeded.trace" >/dev/null; then
    echo "ci: race detector missed the seeded racy store pair"; exit 1
elif [ $? -ne 1 ]; then
    echo "ci: race subcommand crashed on the seeded fixture"; exit 1
fi
if "$ANALYZE" match 'MPI_Isend (!MPI_Wait){8}' --deny warnings "$SEEDED/seeded.trace" >/dev/null; then
    echo "ci: pattern query missed the seeded Isend-without-Wait window"; exit 1
elif [ $? -ne 1 ]; then
    echo "ci: match subcommand crashed on the seeded fixture"; exit 1
fi
rm -rf "$SEEDED"

# Serve smoke: the sharded prediction server over a Unix socket — two
# tenants x 100 sessions must match the single-process oracle bit for
# bit, and a circuit-broken tenant must degrade to no-advice without
# perturbing the other tenant (serve_smoke asserts all three).
SERVE=$(mktemp -d)
target/release/serve_smoke --socket "$SERVE/serve.sock" >/dev/null
rm -rf "$SERVE"

# Serve chaos pass: the same smoke asserts must hold while the wire-fault
# injector truncates frames, corrupts length prefixes, disconnects
# mid-frame, and delays writes on every accepted connection (serve_smoke
# retries each session block on a fresh connection, so every
# byte-identity assert stays exact).
SERVE=$(mktemp -d)
PYTHIA_CHAOS="wire-corrupt-len=13,wire-truncate=17,wire-disconnect=29,wire-delay=11,wire-delay-us=200" \
    target/release/serve_smoke --sessions 50 --socket "$SERVE/serve.sock" >/dev/null
rm -rf "$SERVE"

# Serve crash-recovery pass: durable sessions are recorded through a real
# server process, the server is kill -9'ed with no drain or flush, and a
# `--recover` restart must resurrect every session from its journal with
# byte-identical predictions (serve_crash verify exits nonzero otherwise).
SCRASH=$(mktemp -d)
target/release/serve_crash serve --dir "$SCRASH/journals" --socket "$SCRASH/serve.sock" \
    >"$SCRASH/serve.log" 2>&1 &
SCRASH_PID=$!
n=0
while [ ! -S "$SCRASH/serve.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: serve_crash server never bound its socket"; exit 1; }
    sleep 0.05
done
target/release/serve_crash drive --socket "$SCRASH/serve.sock" --out "$SCRASH/sessions.txt" >/dev/null
kill -9 "$SCRASH_PID" 2>/dev/null || true
wait "$SCRASH_PID" 2>/dev/null || true
rm -f "$SCRASH/serve.sock"
target/release/serve_crash serve --recover --dir "$SCRASH/journals" --socket "$SCRASH/serve.sock" \
    >"$SCRASH/recover.log" 2>&1 &
SCRASH_PID=$!
n=0
while [ ! -S "$SCRASH/serve.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: recovered server never bound its socket"; exit 1; }
    sleep 0.05
done
target/release/serve_crash verify --socket "$SCRASH/serve.sock" --in "$SCRASH/sessions.txt"
kill -9 "$SCRASH_PID" 2>/dev/null || true
wait "$SCRASH_PID" 2>/dev/null || true
rm -rf "$SCRASH"

# Chaos pass: the fault-injection suite on a clean environment, then the
# whole suite again with faults injected into every default-config oracle
# facade (PYTHIA_CHAOS is read by ResilienceConfig::default()). The
# applications must still complete — degraded, not dead.
cargo test -q --test chaos
PYTHIA_CHAOS="panic-predict" cargo test -q --test chaos
PYTHIA_CHAOS="drop=7,dup=13,slow-predict-us=5" cargo test -q --test chaos

# Crash-recovery pass: a durable multi-rank recording (crash_record) is
# kill -9'ed at a random point mid-run; `pythia-analyze recover` must
# rebuild the run from the surviving journal/checkpoint sidecars, and the
# recovered trace must load strictly and analyze without errors.
CRASH=$(mktemp -d)
target/release/crash_record "$CRASH/run.pythia" 2 50000000 >"$CRASH/record.log" 2>&1 &
CRASH_PID=$!
n=0
while [ ! -f "$CRASH/run.pythia.r0.journal" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: crash_record never started journaling"; exit 1; }
    sleep 0.05
done
sleep "$(awk 'BEGIN{srand(); printf "%.2f", 0.2 + rand() * 0.8}')"
kill -9 "$CRASH_PID" 2>/dev/null || true
wait "$CRASH_PID" 2>/dev/null || true
[ ! -f "$CRASH/run.pythia" ] || { echo "ci: crash_record finished before the kill"; exit 1; }
target/release/pythia-analyze recover --out "$CRASH/recovered.pythia" "$CRASH/run.pythia"
target/release/pythia-analyze --deny errors "$CRASH/recovered.pythia" >/dev/null
rm -rf "$CRASH"

# Optional sanitize pass (PYTHIA_CI_SANITIZE=1): core tests under Miri
# where the toolchain has it, then `pythia-analyze --deny warnings` (all
# passes, plus the race and match subcommands) over the chaos suite's
# recorded traces. Clean recordings must analyze clean;
# a fixture with seeded protocol violations must be flagged (exit 1, and
# never 2 = crash/usage); recordings taken under an injected-fault
# environment must analyze without crashing.
if [ "${PYTHIA_CI_SANITIZE:-0}" = "1" ]; then
    if cargo miri --version >/dev/null 2>&1; then
        cargo miri test -p pythia-core --lib
    else
        echo "ci: miri not installed, skipping the interpreter pass"
    fi

    ANALYZE=target/release/pythia-analyze
    DUMPS=$(mktemp -d)

    PYTHIA_CHAOS_TRACE_DIR="$DUMPS/clean" cargo test -q --test chaos
    [ -n "$(ls "$DUMPS/clean")" ] || { echo "ci: chaos suite dumped no traces"; exit 1; }
    "$ANALYZE" --deny warnings "$DUMPS"/clean/*.trace
    "$ANALYZE" race --deny warnings "$DUMPS"/clean/*.trace >/dev/null
    "$ANALYZE" match 'isend ~8 waitall' "$DUMPS"/clean/*.trace >/dev/null || [ $? -eq 1 ]

    "$ANALYZE" --write-seeded-violations "$DUMPS/seeded.trace" >/dev/null
    if "$ANALYZE" --deny errors "$DUMPS/seeded.trace" >/dev/null; then
        echo "ci: pythia-analyze missed the seeded violations"; exit 1
    elif [ $? -ne 1 ]; then
        echo "ci: pythia-analyze crashed on the seeded fixture"; exit 1
    fi

    PYTHIA_CHAOS_TRACE_DIR="$DUMPS/chaotic" PYTHIA_CHAOS="drop=7,dup=13" \
        cargo test -q --test chaos
    for t in "$DUMPS"/chaotic/*.trace; do
        "$ANALYZE" "$t" >/dev/null || [ $? -eq 1 ]
        "$ANALYZE" race "$t" >/dev/null || [ $? -eq 1 ]
        "$ANALYZE" match 'isend ~8 waitall' "$t" >/dev/null || [ $? -eq 1 ]
    done

    rm -rf "$DUMPS"
fi
