#!/bin/sh
# Tier-1 gate: formatting, lints, release build, full workspace tests.
# Run from the repository root. Fails fast on the first broken step.
set -eu

cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q --workspace

# Bench smoke: the contention benchmark at 1 and 8 threads, gated against
# the committed baseline (bench_json exits 1 on regression). The ns/event
# budget is 100%: shared single-core CI boxes run bimodally (~1.6x between
# their fast and slow modes, closer to 2x for the scheduler-sensitive
# serve row), so a tighter budget flakes on machine mode rather than
# code. The budget still catches asymptotic blowups, and the race/pattern
# sweeps are additionally gated by mode-immune absolute speedup floors
# computed within a single run.
ROOT=$(pwd)
BENCH=$(mktemp -d)
(cd "$BENCH" && "$ROOT"/target/release/bench_json --threads 1,8 \
    --check-baseline "$ROOT"/BENCH_predict.json --max-regress 100 >/dev/null)
rm -rf "$BENCH"

# Race & pattern gates: the seeded-violation fixture carries a same-epoch
# racy store pair and an Isend-without-Wait window; the race subcommand
# and a window query must both flag it with exit 1 exactly — never 0
# (missed) and never 2 (crash/usage).
ANALYZE=target/release/pythia-analyze
SEEDED=$(mktemp -d)
"$ANALYZE" --write-seeded-violations "$SEEDED/seeded.trace" >/dev/null
if "$ANALYZE" race --deny errors "$SEEDED/seeded.trace" >/dev/null; then
    echo "ci: race detector missed the seeded racy store pair"; exit 1
elif [ $? -ne 1 ]; then
    echo "ci: race subcommand crashed on the seeded fixture"; exit 1
fi
if "$ANALYZE" match 'MPI_Isend (!MPI_Wait){8}' --deny warnings "$SEEDED/seeded.trace" >/dev/null; then
    echo "ci: pattern query missed the seeded Isend-without-Wait window"; exit 1
elif [ $? -ne 1 ]; then
    echo "ci: match subcommand crashed on the seeded fixture"; exit 1
fi
rm -rf "$SEEDED"

# Serve smoke: the sharded prediction server over a Unix socket — two
# tenants x 100 sessions must match the single-process oracle bit for
# bit, and a circuit-broken tenant must degrade to no-advice without
# perturbing the other tenant (serve_smoke asserts all three).
SERVE=$(mktemp -d)
target/release/serve_smoke --socket "$SERVE/serve.sock" >/dev/null
rm -rf "$SERVE"

# Serve chaos pass: the same smoke asserts must hold while the wire-fault
# injector truncates frames, corrupts length prefixes, disconnects
# mid-frame, and delays writes on every accepted connection (serve_smoke
# retries each session block on a fresh connection, so every
# byte-identity assert stays exact).
SERVE=$(mktemp -d)
PYTHIA_CHAOS="wire-corrupt-len=13,wire-truncate=17,wire-disconnect=29,wire-delay=11,wire-delay-us=200" \
    target/release/serve_smoke --sessions 50 --socket "$SERVE/serve.sock" >/dev/null
rm -rf "$SERVE"

# Serve crash-recovery pass: durable sessions are recorded through a real
# server process, the server is kill -9'ed with no drain or flush, and a
# `--recover` restart must resurrect every session from its journal with
# byte-identical predictions (serve_crash verify exits nonzero otherwise).
SCRASH=$(mktemp -d)
target/release/serve_crash serve --dir "$SCRASH/journals" --socket "$SCRASH/serve.sock" \
    >"$SCRASH/serve.log" 2>&1 &
SCRASH_PID=$!
n=0
while [ ! -S "$SCRASH/serve.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: serve_crash server never bound its socket"; exit 1; }
    sleep 0.05
done
target/release/serve_crash drive --socket "$SCRASH/serve.sock" --out "$SCRASH/sessions.txt" >/dev/null
kill -9 "$SCRASH_PID" 2>/dev/null || true
wait "$SCRASH_PID" 2>/dev/null || true
rm -f "$SCRASH/serve.sock"
target/release/serve_crash serve --recover --dir "$SCRASH/journals" --socket "$SCRASH/serve.sock" \
    >"$SCRASH/recover.log" 2>&1 &
SCRASH_PID=$!
n=0
while [ ! -S "$SCRASH/serve.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: recovered server never bound its socket"; exit 1; }
    sleep 0.05
done
target/release/serve_crash verify --socket "$SCRASH/serve.sock" --in "$SCRASH/sessions.txt"
kill -9 "$SCRASH_PID" 2>/dev/null || true
wait "$SCRASH_PID" 2>/dev/null || true
rm -rf "$SCRASH"

# Chaos pass: the fault-injection suite on a clean environment, then the
# whole suite again with faults injected into every default-config oracle
# facade (PYTHIA_CHAOS is read by ResilienceConfig::default()). The
# applications must still complete — degraded, not dead.
cargo test -q --test chaos
PYTHIA_CHAOS="panic-predict" cargo test -q --test chaos
PYTHIA_CHAOS="drop=7,dup=13,slow-predict-us=5" cargo test -q --test chaos

# Crash-recovery pass: a durable multi-rank recording (crash_record) is
# kill -9'ed at a random point mid-run; `pythia-analyze recover` must
# rebuild the run from the surviving journal/checkpoint sidecars, and the
# recovered trace must load strictly and analyze without errors.
CRASH=$(mktemp -d)
target/release/crash_record "$CRASH/run.pythia" 2 50000000 >"$CRASH/record.log" 2>&1 &
CRASH_PID=$!
n=0
while [ ! -f "$CRASH/run.pythia.r0.journal" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: crash_record never started journaling"; exit 1; }
    sleep 0.05
done
sleep "$(awk 'BEGIN{srand(); printf "%.2f", 0.2 + rand() * 0.8}')"
kill -9 "$CRASH_PID" 2>/dev/null || true
wait "$CRASH_PID" 2>/dev/null || true
[ ! -f "$CRASH/run.pythia" ] || { echo "ci: crash_record finished before the kill"; exit 1; }
target/release/pythia-analyze recover --out "$CRASH/recovered.pythia" "$CRASH/run.pythia"
target/release/pythia-analyze --deny errors "$CRASH/recovered.pythia" >/dev/null
rm -rf "$CRASH"

# Elastic stage: the Communicator backends and rank-level fault
# tolerance. The bench gate above already checks the communicator rows
# (threads vs socket ns/event) and the fault-free elastic counters
# against the committed baseline; this stage drives the failure paths.
EREC=target/release/elastic_record
ELASTIC=$(mktemp -d)

# (1) Socket smoke: an 8-rank world as 2 worker processes x 4 ranks
# each over the hub; a clean run must detect no failures and assemble
# a trace carrying every rank.
"$EREC" hub "$ELASTIC/smoke.sock" 8 >"$ELASTIC/smoke-hub.log" 2>&1 &
EHUB_PID=$!
n=0
while [ ! -S "$ELASTIC/smoke.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: elastic hub never bound its socket"; exit 1; }
    sleep 0.05
done
"$EREC" worker "$ELASTIC/smoke.sock" "$ELASTIC/smoke.pythia" 0 8 5000 0 4 >/dev/null &
EW0_PID=$!
"$EREC" worker "$ELASTIC/smoke.sock" "$ELASTIC/smoke.pythia" 4 8 5000 0 4 >/dev/null &
EW1_PID=$!
wait "$EW0_PID"
wait "$EW1_PID"
wait "$EHUB_PID"
grep -q "failures=0 replaced=0" "$ELASTIC/smoke-hub.log" \
    || { echo "ci: socket smoke reported rank failures on a clean run"; exit 1; }
"$EREC" assemble "$ELASTIC/smoke.pythia" | grep -q "assembled ranks=8 events=40008" \
    || { echo "ci: socket smoke assembled a short trace"; exit 1; }

# (2) Rank-chaos sweep on the elastic threads backend: each injected
# fault kind must end with no hung survivors (the timeout catches a
# wedged world), exactly one replacement rank resumed from its journal,
# and a finalized trace byte-identical to the fault-free run.
"$EREC" threads "$ELASTIC/free.pythia" 3 20000 >/dev/null 2>&1
for kind in rank-panic rank-hang rank-disconnect; do
    PYTHIA_CHAOS="$kind=40,rank-fault-rank=1" PYTHIA_RANK_TIMEOUT_MS=500 \
        timeout 120 "$EREC" threads "$ELASTIC/$kind.pythia" 3 20000 \
        >"$ELASTIC/$kind.log" 2>/dev/null \
        || { echo "ci: elastic world wedged or died under $kind"; exit 1; }
    grep -q "replaced=1" "$ELASTIC/$kind.log" \
        || { echo "ci: no replacement rank admitted under $kind"; exit 1; }
    cmp -s "$ELASTIC/free.pythia" "$ELASTIC/$kind.pythia" \
        || { echo "ci: trace recovered under $kind differs from the fault-free run"; exit 1; }
done

# (3) Kill -9 rank-crash recovery over the socket backend: SIGKILL one
# rank's worker process mid-record, admit a replacement incarnation
# that salvages the dead rank's journal, and require the assembled
# trace byte-identical to a fault-free multi-process run.
"$EREC" hub "$ELASTIC/clean.sock" 3 >"$ELASTIC/clean-hub.log" 2>&1 &
EHUB_PID=$!
n=0
while [ ! -S "$ELASTIC/clean.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: elastic hub never bound its socket"; exit 1; }
    sleep 0.05
done
for r in 0 1 2; do
    "$EREC" worker "$ELASTIC/clean.sock" "$ELASTIC/clean.pythia" "$r" 3 20000 >/dev/null &
done
wait "$EHUB_PID"
"$EREC" assemble "$ELASTIC/clean.pythia" >/dev/null
"$EREC" hub "$ELASTIC/crash.sock" 3 >"$ELASTIC/crash-hub.log" 2>&1 &
EHUB_PID=$!
n=0
while [ ! -S "$ELASTIC/crash.sock" ]; do
    n=$((n + 1))
    [ "$n" -lt 200 ] || { echo "ci: elastic hub never bound its socket"; exit 1; }
    sleep 0.05
done
"$EREC" worker "$ELASTIC/crash.sock" "$ELASTIC/crash.pythia" 0 3 20000 >/dev/null &
"$EREC" worker "$ELASTIC/crash.sock" "$ELASTIC/crash.pythia" 2 3 20000 >/dev/null &
"$EREC" worker "$ELASTIC/crash.sock" "$ELASTIC/crash.pythia" 1 3 20000 >"$ELASTIC/victim.log" &
VICTIM_PID=$!
n=0
until grep -q "events=512" "$ELASTIC/victim.log"; do
    n=$((n + 1))
    [ "$n" -lt 400 ] || { echo "ci: victim rank never reached the kill point"; exit 1; }
    sleep 0.02
done
kill -9 "$VICTIM_PID" 2>/dev/null || true
wait "$VICTIM_PID" 2>/dev/null || true
"$EREC" worker "$ELASTIC/crash.sock" "$ELASTIC/crash.pythia" 1 3 20000 1 \
    >"$ELASTIC/replacement.log"
grep -q "replaced=1" "$ELASTIC/replacement.log" \
    || { echo "ci: replacement rank did not resume from the journal"; exit 1; }
wait "$EHUB_PID"
grep -q "failures=1 replaced=1" "$ELASTIC/crash-hub.log" \
    || { echo "ci: hub missed the killed rank or its replacement"; exit 1; }
"$EREC" assemble "$ELASTIC/crash.pythia" >/dev/null
cmp -s "$ELASTIC/clean.pythia" "$ELASTIC/crash.pythia" \
    || { echo "ci: trace recovered after kill -9 differs from the fault-free run"; exit 1; }
rm -rf "$ELASTIC"

# Optional sanitize pass (PYTHIA_CI_SANITIZE=1): core tests under Miri
# where the toolchain has it, then `pythia-analyze --deny warnings` (all
# passes, plus the race and match subcommands) over the chaos suite's
# recorded traces. Clean recordings must analyze clean;
# a fixture with seeded protocol violations must be flagged (exit 1, and
# never 2 = crash/usage); recordings taken under an injected-fault
# environment must analyze without crashing.
if [ "${PYTHIA_CI_SANITIZE:-0}" = "1" ]; then
    if cargo miri --version >/dev/null 2>&1; then
        cargo miri test -p pythia-core --lib
    else
        echo "ci: miri not installed, skipping the interpreter pass"
    fi

    ANALYZE=target/release/pythia-analyze
    DUMPS=$(mktemp -d)

    PYTHIA_CHAOS_TRACE_DIR="$DUMPS/clean" cargo test -q --test chaos
    [ -n "$(ls "$DUMPS/clean")" ] || { echo "ci: chaos suite dumped no traces"; exit 1; }
    "$ANALYZE" --deny warnings "$DUMPS"/clean/*.trace
    "$ANALYZE" race --deny warnings "$DUMPS"/clean/*.trace >/dev/null
    "$ANALYZE" match 'isend ~8 waitall' "$DUMPS"/clean/*.trace >/dev/null || [ $? -eq 1 ]

    "$ANALYZE" --write-seeded-violations "$DUMPS/seeded.trace" >/dev/null
    if "$ANALYZE" --deny errors "$DUMPS/seeded.trace" >/dev/null; then
        echo "ci: pythia-analyze missed the seeded violations"; exit 1
    elif [ $? -ne 1 ]; then
        echo "ci: pythia-analyze crashed on the seeded fixture"; exit 1
    fi

    PYTHIA_CHAOS_TRACE_DIR="$DUMPS/chaotic" PYTHIA_CHAOS="drop=7,dup=13" \
        cargo test -q --test chaos
    for t in "$DUMPS"/chaotic/*.trace; do
        "$ANALYZE" "$t" >/dev/null || [ $? -eq 1 ]
        "$ANALYZE" race "$t" >/dev/null || [ $? -eq 1 ]
        "$ANALYZE" match 'isend ~8 waitall' "$t" >/dev/null || [ $? -eq 1 ]
    done

    rm -rf "$DUMPS"
fi
