//! End-to-end integration across crates: application skeletons →
//! instrumented MPI runtime → trace file on disk → reload → prediction.

use std::sync::Arc;

use pythia::apps::harness::{record_trace, run_app};
use pythia::apps::work::WorkScale;
use pythia::apps::{all_apps, find_app, WorkingSet};
use pythia::core::trace::TraceData;
use pythia::runtime_mpi::MpiMode;

/// Record → save to disk → load → predict, through the real file format.
#[test]
fn record_save_load_predict_roundtrip() {
    let app = find_app("MG").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);

    let dir = std::env::temp_dir().join("pythia-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mg.trace");
    trace.save(&path).unwrap();

    let loaded = Arc::new(TraceData::load(&path).unwrap());
    assert_eq!(loaded.thread_count(), 4);
    assert_eq!(loaded.total_events(), trace.total_events());

    let res = run_app(
        app.as_ref(),
        4,
        WorkingSet::Small,
        MpiMode::predict(Arc::clone(&loaded)),
        WorkScale::ZERO,
    );
    let (mut correct, mut total) = (0u64, 0u64);
    for r in &res.reports {
        for (_, acc) in &r.accuracy {
            correct += acc.correct;
            total += acc.total();
        }
    }
    assert!(total > 0);
    let acc = correct as f64 / total as f64;
    assert!(acc > 0.9, "post-reload accuracy {acc}");
    std::fs::remove_file(&path).ok();
}

/// Feeding an application a trace recorded from a *different* application
/// must degrade gracefully (unknown events, low accuracy), never crash.
#[test]
fn cross_application_trace_degrades_gracefully() {
    let bt = find_app("BT").unwrap();
    let cg = find_app("CG").unwrap();
    let bt_trace = record_trace(bt.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);

    let res = run_app(
        cg.as_ref(),
        4,
        WorkingSet::Small,
        MpiMode::predict(bt_trace),
        WorkScale::ZERO,
    );
    for r in &res.reports {
        let st = r.predict_stats.unwrap();
        assert!(st.observed > 0);
        // CG's swap/transpose traffic never appears in BT's trace.
        assert!(
            st.unknown + st.reseeded > 0,
            "oracle should lose sync on foreign events: {st:?}"
        );
    }
}

/// Every application must predict its own identical replay well at
/// distance 1 (the paper's Fig. 8 left edge: all apps start high).
#[test]
fn all_apps_self_replay_distance_one() {
    for app in all_apps() {
        let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
        let res = run_app(
            app.as_ref(),
            4,
            WorkingSet::Small,
            MpiMode::predict(trace),
            WorkScale::ZERO,
        );
        let (mut correct, mut total) = (0u64, 0u64);
        for r in &res.reports {
            for (_, acc) in &r.accuracy {
                correct += acc.correct;
                total += acc.total();
            }
        }
        assert!(total > 0, "{}: no predictions", app.name());
        let acc = correct as f64 / total as f64;
        // AMG/Quicksilver are irregular by design; everyone else is >90%.
        let floor = match app.name() {
            "AMG" | "Quicksilver" => 0.40,
            _ => 0.90,
        };
        assert!(
            acc >= floor,
            "{}: self-replay accuracy {acc:.3} < {floor}",
            app.name()
        );
    }
}

/// Recording must be lossless for every application and working set:
/// the grammar unfolds to exactly the events that were submitted.
#[test]
fn recording_lossless_across_working_sets() {
    for app in all_apps() {
        for ws in [WorkingSet::Small, WorkingSet::Medium] {
            let res = run_app(app.as_ref(), 4, ws, MpiMode::record(), WorkScale::ZERO);
            for r in &res.reports {
                let t = r.thread_trace.as_ref().unwrap();
                assert_eq!(
                    t.grammar.trace_len(),
                    r.events,
                    "{} {} rank {}",
                    app.name(),
                    ws.label(),
                    r.rank
                );
            }
        }
    }
}

/// The binary and JSON formats agree for real application traces.
#[test]
fn binary_and_json_formats_agree() {
    let app = find_app("Kripke").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
    let bin = TraceData::from_bytes(&trace.to_bytes()).unwrap();
    let json = TraceData::from_json(&trace.to_json().unwrap()).unwrap();
    for t in 0..trace.thread_count() {
        assert_eq!(
            bin.thread(t).unwrap().grammar.unfold(),
            json.thread(t).unwrap().grammar.unfold()
        );
    }
}

/// Predicting with more ranks than the trace has threads fails cleanly.
#[test]
fn rank_count_mismatch_is_detected() {
    let app = find_app("FT").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_app(
            app.as_ref(),
            4, // more ranks than recorded threads
            WorkingSet::Small,
            MpiMode::predict(trace),
            WorkScale::ZERO,
        )
    }));
    assert!(result.is_err(), "mismatched rank count must be rejected");
}
