//! End-to-end crash-recovery tests: a reference run that dies — process
//! killed between flushes, journal tail torn mid-write, writer killed in
//! the middle of the final save — must recover to exactly the grammar a
//! fresh recording of the journaled prefix would produce, losing at most
//! one flush budget of trailing events. (The `kill -9`-a-real-process
//! variant of these runs in `ci.sh`, driving the `crash_record` binary
//! and `pythia-analyze recover`.)

use std::path::PathBuf;

use pythia::core::error::Error;
use pythia::core::event::{EventId, EventRegistry};
use pythia::core::persist::{atomic_write_with, journal_path, IoFaultInjector, PersistConfig};
use pythia::core::record::{RecordConfig, Recorder};
use pythia::core::resilience::FaultPlan;
use pythia::core::trace::{ThreadTrace, TraceData};

const FLUSH_EVENTS: usize = 8;
const SNAPSHOT_EVENTS: u64 = 64;

fn test_dir(name: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("pythia-crashrec-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// Tight budgets, faults pinned off (tests never read `PYTHIA_CHAOS`).
fn tight_persist() -> PersistConfig {
    PersistConfig {
        flush_events: FLUSH_EVENTS,
        flush_bytes: 1 << 20,
        snapshot_events: SNAPSHOT_EVENTS,
        fsync: true,
        registry: None,
        faults: Some(FaultPlan::none()),
    }
}

/// A loop-structured event stream (what a stencil solver submits), long
/// enough to cross several checkpoint boundaries.
fn stream(len: usize) -> Vec<EventId> {
    (0..len)
        .map(|i| match i % 5 {
            0 => EventId(1),                      // compute
            1 | 2 => EventId(2 + (i % 3) as u32), // exchange with a peer
            3 => EventId(5),                      // reduce
            _ => EventId(6),                      // advance
        })
        .collect()
}

/// The ground truth: record `events` through a plain in-memory recorder
/// with the same deterministic timestamps the durable run used.
fn rerecord(events: &[EventId]) -> ThreadTrace {
    let mut rec = Recorder::new(RecordConfig::default());
    for (i, &e) in events.iter().enumerate() {
        rec.record_at(e, (i as u64 + 1) * 100);
    }
    rec.finish_thread().expect("in-memory recorder cannot fail")
}

/// Serialized form used for byte-identity comparison (grammar, timing
/// model and event count; the lazy query index is derived data).
fn fingerprint(t: &ThreadTrace) -> String {
    serde_json::to_string(t).unwrap()
}

/// A process killed between flushes (neither `finish_thread` nor the drop
/// guard runs) recovers every journaled event, loses at most one flush
/// budget, and the recovered thread is byte-identical to re-recording the
/// journaled prefix from scratch.
#[test]
#[cfg_attr(miri, ignore)]
fn kill_between_flushes_recovers_journaled_prefix_byte_identically() {
    let dir = test_dir("kill");
    let path = dir.join("run.pythia");
    let events = stream(777);
    let mut rec = Recorder::durable(RecordConfig::default(), &path, 0, tight_persist()).unwrap();
    for (i, &e) in events.iter().enumerate() {
        rec.record_at(e, (i as u64 + 1) * 100);
    }
    // kill -9: no finish, no drop guard. (Leaks the journal handle — the
    // OS would reclaim it in the real crash this models.)
    std::mem::forget(rec);

    let (trace, report) = TraceData::recover(&path).unwrap();
    assert!(!report.used_final_file);
    let recovered = report.ranks[0].recovered_events;
    let lost = events.len() as u64 - recovered;
    assert!(
        lost <= FLUSH_EVENTS as u64,
        "lost {lost} events, flush budget is {FLUSH_EVENTS}"
    );
    // Checkpoints actually participated (not a journal-only replay).
    assert!(
        report.ranks[0].checkpoint_events > 0,
        "{:?}",
        report.ranks[0]
    );
    let expected = rerecord(&events[..recovered as usize]);
    assert_eq!(
        fingerprint(trace.thread(0).unwrap()),
        fingerprint(&expected)
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// A torn journal tail (crash mid-`write(2)`) is truncated to the last
/// intact frame; every truncation point recovers cleanly and
/// byte-identically to a fresh recording of the surviving prefix.
#[test]
#[cfg_attr(miri, ignore)]
fn torn_journal_tail_truncates_to_last_good_frame() {
    let dir = test_dir("torn");
    let path = dir.join("run.pythia");
    let events = stream(300);
    let mut rec = Recorder::durable(RecordConfig::default(), &path, 0, tight_persist()).unwrap();
    for (i, &e) in events.iter().enumerate() {
        rec.record_at(e, (i as u64 + 1) * 100);
    }
    rec.finish_thread().unwrap();
    std::fs::remove_file(&path).ok(); // keep only the sidecars

    let journal = journal_path(&path, 0);
    let full = std::fs::read(&journal).unwrap();
    let mut last_recovered = u64::MAX;
    for cut in [full.len() - 1, full.len() - 7, full.len() / 2] {
        std::fs::write(&journal, &full[..cut]).unwrap();
        let (trace, report) = TraceData::recover(&path).unwrap();
        let r = &report.ranks[0];
        // The first two cuts provably tear the final frame; a mid-journal
        // cut may land exactly on a frame boundary (no torn bytes then).
        if cut > full.len() - 8 {
            assert!(r.torn_tail_bytes > 0, "cut at {cut}: {r:?}");
        }
        assert!(r.recovered_events <= last_recovered);
        last_recovered = r.recovered_events;
        let expected = rerecord(&events[..r.recovered_events as usize]);
        assert_eq!(
            fingerprint(trace.thread(0).unwrap()),
            fingerprint(&expected),
            "cut at {cut}"
        );
    }
    // Shorter cuts can only fall back to the checkpoint, never below it.
    assert!(last_recovered >= SNAPSHOT_EVENTS);
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite regression: a writer killed in the middle of `Trace::save`
/// over an existing trace (torn tmp write, failed rename) leaves the old
/// file byte-identical and loadable.
#[test]
#[cfg_attr(miri, ignore)]
fn writer_killed_mid_save_leaves_old_trace_intact() {
    let dir = test_dir("midsave");
    let path = dir.join("run.pythia");
    let old = rerecord(&stream(100));
    TraceData::from_threads(vec![old], EventRegistry::new())
        .save(&path)
        .unwrap();
    let old_bytes = std::fs::read(&path).unwrap();

    let replacement = TraceData::from_threads(vec![rerecord(&stream(250))], EventRegistry::new());
    for plan in [
        FaultPlan {
            torn_write_every: 1,
            ..FaultPlan::none()
        },
        FaultPlan {
            rename_fail_every: 1,
            ..FaultPlan::none()
        },
    ] {
        let mut inj = IoFaultInjector::new(plan.clone());
        let err = atomic_write_with(&path, &replacement.to_bytes(), &mut inj).unwrap_err();
        assert!(err.to_string().contains("injected"), "{plan:?}: {err}");
        assert_eq!(std::fs::read(&path).unwrap(), old_bytes, "{plan:?}");
        let loaded = TraceData::load(&path).unwrap();
        assert_eq!(loaded.total_events(), 100, "{plan:?}");
    }

    // A *lying* disk (short write reported as success) slips past the
    // rename, but the whole-payload CRC refuses the torn file at load.
    let mut inj = IoFaultInjector::new(FaultPlan {
        short_write_every: 1,
        ..FaultPlan::none()
    });
    atomic_write_with(&path, &replacement.to_bytes(), &mut inj).unwrap();
    assert!(matches!(
        TraceData::load(&path).unwrap_err(),
        Error::Corrupt(_)
    ));
    std::fs::remove_dir_all(&dir).ok();
}

/// A final trace file torn by a lying disk is not the end of the run:
/// with the sidecars still on disk, `recover` rejects the corrupt final
/// file and rebuilds from checkpoint + journal.
#[test]
#[cfg_attr(miri, ignore)]
fn corrupt_final_file_falls_back_to_sidecars() {
    let dir = test_dir("fallback");
    let path = dir.join("run.pythia");
    let events = stream(200);
    let mut rec = Recorder::durable(RecordConfig::default(), &path, 0, tight_persist()).unwrap();
    for (i, &e) in events.iter().enumerate() {
        rec.record_at(e, (i as u64 + 1) * 100);
    }
    let thread = rec.finish_thread().unwrap();
    let trace = TraceData::from_threads(vec![thread], EventRegistry::new());

    // Finalization dies on a lying disk: short write + successful rename.
    let mut inj = IoFaultInjector::new(FaultPlan {
        short_write_every: 1,
        ..FaultPlan::none()
    });
    atomic_write_with(&path, &trace.to_bytes(), &mut inj).unwrap();
    assert!(TraceData::load(&path).is_err());

    let (recovered, report) = TraceData::recover(&path).unwrap();
    assert!(!report.used_final_file);
    assert_eq!(report.total_events(), 200);
    assert_eq!(
        fingerprint(recovered.thread(0).unwrap()),
        fingerprint(trace.thread(0).unwrap())
    );
    std::fs::remove_dir_all(&dir).ok();
}
