//! Chaos suite: deterministic fault injection across the full stack.
//!
//! Every test drives a real runtime integration (instrumented MPI ranks,
//! the adaptive OpenMP LULESH model) with faults injected inside the
//! hardened oracle facade — forced predict panics, lossy event channels,
//! artificially slow queries, corrupted trace bytes — and asserts the two
//! invariants of the resilience layer: the *application always completes
//! with the runtime-default decisions*, and the degradation is *visible in
//! the stats* (panics caught, deadline misses, quarantine transitions).
//!
//! Tests pin their fault plans explicitly (`faults: Some(...)`), so the
//! suite also runs unchanged under an external `PYTHIA_CHAOS` environment
//! (the CI chaos pass); only [`default_config_follows_env_chaos`] reads
//! the environment deliberately.

use std::time::Duration;

use pythia::apps::harness::{record_trace, run_app};
use pythia::apps::lulesh_omp::{run as lulesh_run, LuleshOmpConfig};
use pythia::apps::work::WorkScale;
use pythia::apps::{find_app, WorkingSet};
use pythia::core::resilience::faults::{corrupt_bytes, CHAOS_ENV};
use pythia::core::resilience::{BreakerConfig, FaultPlan, ResilienceConfig};
use pythia::core::trace::TraceData;
use pythia::minomp::{OmpRuntime, PoolMode};
use pythia::runtime_mpi::MpiMode;
use pythia::runtime_omp::{OmpOracle, ThresholdPolicy};

/// Runs `f` with the default panic hook silenced: injected panics are
/// caught by the facade, but the hook would still spam the test output.
fn silencing_panics<T>(f: impl FnOnce() -> T) -> T {
    let guard = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let out = f();
    std::panic::set_hook(guard);
    out
}

/// When `PYTHIA_CHAOS_TRACE_DIR` is set (the `ci.sh` sanitize pass), save
/// each recorded reference trace there so `pythia-analyze` can be run over
/// the suite's real traces offline.
fn dump_trace(name: &str, trace: &TraceData) {
    if let Ok(dir) = std::env::var("PYTHIA_CHAOS_TRACE_DIR") {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).expect("create PYTHIA_CHAOS_TRACE_DIR");
        trace
            .save(dir.join(format!("{name}.trace")))
            .expect("dump chaos trace");
    }
}

fn panic_faults() -> ResilienceConfig {
    ResilienceConfig {
        faults: Some(FaultPlan {
            panic_on_predict: true,
            ..FaultPlan::none()
        }),
        ..ResilienceConfig::default()
    }
}

/// Acceptance check 1: the OpenMP LULESH model completes a full adaptive
/// run while *every* predict query panics — all regions execute with the
/// default (maximum) team size, and the stats say why.
#[test]
fn lulesh_omp_completes_under_forced_predict_panics() {
    let cfg = LuleshOmpConfig {
        problem_size: 8,
        steps: 4,
        ns_per_unit: 5,
    };
    let oracle = OmpOracle::recorder();
    {
        let rt = OmpRuntime::with_listener(4, PoolMode::Park, oracle.listener());
        lulesh_run(&rt, &cfg);
    }
    let trace = oracle.finish_trace().unwrap();

    let oracle =
        OmpOracle::predictor_with(&trace, ThresholdPolicy::default(), 0.0, 9, panic_faults());
    silencing_panics(|| {
        let rt = OmpRuntime::with_listener(4, PoolMode::Park, oracle.listener());
        lulesh_run(&rt, &cfg);
    });
    let stats = oracle.stats();
    assert_eq!(stats.regions, 4 * 30, "every region must still run");
    assert_eq!(stats.adapted, 0, "a poisoned oracle must not adapt");
    assert_eq!(stats.team_histogram, vec![(4, 4 * 30)]);
    let r = oracle.resilience_stats();
    assert_eq!(r.panics_caught, 1, "{r:?}");
    assert!(r.quarantine_transitions >= 1, "{r:?}");
    assert!(r.degraded_ns > 0, "{r:?}");
}

/// Acceptance check 2: a multi-rank MPI application completes while every
/// predict query panics — all ranks finish and report the poisoning.
#[test]
fn mpi_app_completes_under_forced_predict_panics() {
    let app = find_app("MG").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
    dump_trace("mg_4ranks", &trace);
    let mode = MpiMode::predict_resilient(trace, vec![1], panic_faults());
    let res =
        silencing_panics(|| run_app(app.as_ref(), 4, WorkingSet::Small, mode, WorkScale::ZERO));
    assert_eq!(res.reports.len(), 4);
    for r in &res.reports {
        assert!(r.events > 0, "rank {} submitted no events", r.rank);
        assert!(r.resilience.poisoned, "rank {}: {:?}", r.rank, r.resilience);
        assert_eq!(r.resilience.panics_caught, 1, "{:?}", r.resilience);
        assert!(r.resilience.quarantine_transitions >= 1);
        let st = r.predict_stats.unwrap();
        assert_eq!(st.panics_caught, 1);
        // Predictions were still scored — all uninformed (the default).
        let (_, acc) = r.accuracy[0];
        assert!(acc.total() > 0);
        assert_eq!(acc.correct, 0);
        assert_eq!(acc.uninformed, acc.total());
    }
}

/// A lossy event channel (every 2nd event dropped before the oracle sees
/// it) desynchronizes predictions from the host's ground truth; the
/// accuracy watchdog quarantines the oracle instead of letting it keep
/// giving wrong advice — and the application still completes.
#[test]
fn lossy_event_channel_quarantines_instead_of_lying() {
    let app = find_app("CG").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    dump_trace("cg_2ranks", &trace);
    let resilience = ResilienceConfig {
        breaker: BreakerConfig {
            window: 8,
            max_error_rate: 0.25,
            // Stay quarantined once tripped (no half-open probe mid-test).
            backoff_initial: 1 << 30,
            ..BreakerConfig::default()
        },
        faults: Some(FaultPlan {
            drop_every: 2,
            ..FaultPlan::none()
        }),
        ..ResilienceConfig::default()
    };
    let mode = MpiMode::predict_resilient(trace, vec![1], resilience);
    let res = run_app(app.as_ref(), 2, WorkingSet::Small, mode, WorkScale::ZERO);
    for r in &res.reports {
        assert!(r.events > 0);
        assert!(
            !r.resilience.poisoned,
            "drops are not panics: {:?}",
            r.resilience
        );
        assert!(r.resilience.scored > 0, "{:?}", r.resilience);
        assert!(r.resilience.mispredicted > 0, "{:?}", r.resilience);
        assert!(
            r.resilience.quarantine_transitions >= 1,
            "rank {} was never quarantined: {:?}",
            r.rank,
            r.resilience
        );
        assert!(r.resilience.suppressed > 0, "{:?}", r.resilience);
    }
}

/// An artificially slow predictor blows its per-query time budget: every
/// query is cut off at the deadline (counted as a miss), repeated misses
/// quarantine the oracle, and the application never stalls on it.
#[test]
fn slow_predictor_trips_deadline_and_quarantines() {
    let app = find_app("EP").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    dump_trace("ep_2ranks", &trace);
    let resilience = ResilienceConfig {
        time_budget: Some(Duration::from_micros(20)),
        breaker: BreakerConfig {
            failure_threshold: 3,
            backoff_initial: 1 << 30,
            ..BreakerConfig::default()
        },
        faults: Some(FaultPlan {
            slow_predict: Some(Duration::from_micros(200)),
            ..FaultPlan::none()
        }),
    };
    let mode = MpiMode::predict_resilient(trace, vec![1], resilience);
    let res = run_app(app.as_ref(), 2, WorkingSet::Small, mode, WorkScale::ZERO);
    for r in &res.reports {
        assert!(r.events > 0);
        assert!(r.resilience.deadline_misses >= 3, "{:?}", r.resilience);
        assert!(
            r.resilience.quarantine_transitions >= 1,
            "{:?}",
            r.resilience
        );
        let st = r.predict_stats.unwrap();
        assert_eq!(st.deadline_misses, r.resilience.deadline_misses);
    }
}

/// Corrupted trace bytes — random bit flips and truncations over a real
/// application trace — are rejected or loaded, never a panic; anything
/// that does load drives a predict run to completion.
#[test]
fn corrupted_trace_bytes_never_panic() {
    let app = find_app("FT").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    dump_trace("ft_2ranks", &trace);
    let bytes = trace.to_bytes().to_vec();
    for seed in 0..64u64 {
        let mutated = corrupt_bytes(&bytes, seed, 8);
        let outcome = std::panic::catch_unwind(|| TraceData::from_bytes(&mutated).is_ok());
        assert!(
            outcome.is_ok(),
            "panic while parsing corruption seed {seed}"
        );
    }
    for cut in (0..bytes.len()).step_by(97) {
        assert!(
            TraceData::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut} accepted"
        );
    }
}

/// A facade built with the *default* config consults `PYTHIA_CHAOS`: with
/// the variable set (the CI chaos pass) the run still completes; without
/// it, prediction works normally. Completion is asserted unconditionally;
/// accuracy only when the environment is clean.
#[test]
fn default_config_follows_env_chaos() {
    let app = find_app("MG").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    dump_trace("mg_2ranks", &trace);
    let res = silencing_panics(|| {
        run_app(
            app.as_ref(),
            2,
            WorkingSet::Small,
            MpiMode::predict(trace),
            WorkScale::ZERO,
        )
    });
    for r in &res.reports {
        assert!(r.events > 0, "rank {} did not complete", r.rank);
    }
    if std::env::var(CHAOS_ENV).is_err() {
        // Clean environment: the facade must be transparent.
        for r in &res.reports {
            assert!(!r.resilience.poisoned);
            assert_eq!(r.resilience.panics_caught, 0);
            let (_, acc) = r.accuracy[0];
            assert!(acc.accuracy() > 0.9, "{acc:?}");
        }
    }
}
