//! Failure-injection tests of the trace file format with real application
//! traces: a PYTHIA deployment reloads trace files across runs, so a
//! corrupt or truncated file must produce a clean error, never a panic,
//! hang, or huge allocation.

use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;
use pythia::apps::harness::record_trace;
use pythia::apps::work::WorkScale;
use pythia::apps::{find_app, WorkingSet};
use pythia::core::resilience::faults::corrupt_bytes;
use pythia::core::trace::TraceData;

fn sample_bytes() -> Vec<u8> {
    let app = find_app("MG").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
    trace.to_bytes().to_vec()
}

/// One recorded trace shared across all fuzz cases (recording is the
/// expensive part; mutation and parsing are cheap).
fn shared_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(sample_bytes)
}

fn shared_json() -> &'static str {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        TraceData::from_bytes(shared_bytes())
            .unwrap()
            .to_json()
            .unwrap()
    })
}

/// Every single-byte corruption either round-trips to a loadable trace
/// (the flip hit a don't-care bit such as a timing value) or fails with a
/// clean error. Exhaustive over positions with a stride, full coverage of
/// the header.
#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample_bytes();
    let positions: Vec<usize> = (0..bytes.len().min(64))
        .chain((64..bytes.len()).step_by(7))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            // Must return, not panic; both Ok and Err are acceptable.
            let result = std::panic::catch_unwind(|| TraceData::from_bytes(&corrupt));
            assert!(
                result.is_ok(),
                "panic while parsing flip {flip:#x} at byte {pos}"
            );
        }
    }
}

/// Truncations of a real multi-thread application trace all fail cleanly.
#[test]
fn truncations_of_app_trace_fail_cleanly() {
    let bytes = sample_bytes();
    for cut in (0..bytes.len()).step_by(11) {
        let result = TraceData::from_bytes(&bytes[..cut]);
        assert!(result.is_err(), "truncation at {cut} accepted");
    }
}

/// A corrupt length field must not cause a massive allocation: parsing a
/// tiny buffer claiming millions of rules returns promptly with an error.
#[test]
fn huge_length_fields_rejected_promptly() {
    let bytes = sample_bytes();
    let mut corrupt = bytes.clone();
    // The registry count is the u32 right after magic (8) + version (4).
    corrupt[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    let t0 = std::time::Instant::now();
    let result = TraceData::from_bytes(&corrupt);
    assert!(result.is_err());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(2),
        "corrupt length field parsed too slowly"
    );
}

/// JSON traces edited by hand (a use case the format exists for) are
/// validated structurally: dangling rule references must be rejected.
#[test]
fn json_with_dangling_rule_reference_rejected() {
    let app = find_app("FT").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let mut v: serde_json::Value = serde_json::from_str(&trace.to_json().unwrap()).unwrap();
    // Point some symbol at a rule id far out of range.
    let rules = v["threads"][0]["grammar"]["rules"].as_array_mut().unwrap();
    let body = rules[0]["body"].as_array_mut().unwrap();
    body[0]["symbol"] = serde_json::json!({ "Rule": 999 });
    assert!(TraceData::from_json(&v.to_string()).is_err());
}

/// Loading a file that is not a trace at all (here: its own JSON export)
/// fails with BadMagic, not garbage parsing.
#[test]
fn wrong_format_detected() {
    let app = find_app("EP").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let json = trace.to_json().unwrap();
    let err = TraceData::from_bytes(json.as_bytes()).unwrap_err();
    assert!(matches!(err, pythia::core::error::Error::BadMagic));
}

// ----------------------------------------------------------------------
// Property-based fuzzing: the directed tests above pick corruptions by
// hand; these sample the corruption space at random (deterministically
// seeded) over the same real application trace.
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clustered multi-byte corruption (the chaos helper used in fault
    /// injection) never panics the binary parser: every mutated buffer
    /// either loads or fails with a clean error.
    #[test]
    fn fuzz_clustered_mutations_never_panic((seed, n) in (0u64..1 << 48, 1usize..16)) {
        let mutated = corrupt_bytes(shared_bytes(), seed, n);
        let outcome = std::panic::catch_unwind(|| TraceData::from_bytes(&mutated).is_ok());
        prop_assert!(outcome.is_ok(), "panic for corruption seed {seed} ({n} mutations)");
    }

    /// Scattered independent byte flips at random positions never panic.
    #[test]
    fn fuzz_scattered_flips_never_panic(muts in vec((0u64..u64::MAX, 1u32..256), 1..12)) {
        let mut bytes = shared_bytes().to_vec();
        let len = bytes.len() as u64;
        for &(pos, flip) in &muts {
            bytes[(pos % len) as usize] ^= flip as u8;
        }
        let outcome = std::panic::catch_unwind(|| TraceData::from_bytes(&bytes).is_ok());
        prop_assert!(outcome.is_ok(), "panic for flips {muts:?}");
    }

    /// Every proper prefix of a valid trace is an error — a partially
    /// written file (crash mid-save) must never load as a shorter trace.
    #[test]
    fn fuzz_truncations_always_err(cut in 0u64..u64::MAX) {
        let bytes = shared_bytes();
        let cut = (cut % bytes.len() as u64) as usize;
        prop_assert!(
            TraceData::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} accepted",
            bytes.len()
        );
    }

    /// Random printable-ASCII substitutions in the JSON export (the
    /// hand-editable format) never panic `from_json` — at worst a parse
    /// or validation error.
    #[test]
    fn fuzz_json_mutations_never_panic(muts in vec((0u64..u64::MAX, 32u8..127), 1..8)) {
        let mut json = shared_json().to_string().into_bytes();
        let len = json.len() as u64;
        for &(pos, byte) in &muts {
            json[(pos % len) as usize] = byte;
        }
        let json = String::from_utf8(json).expect("ASCII substitutions keep UTF-8 valid");
        let outcome = std::panic::catch_unwind(|| TraceData::from_json(&json).is_ok());
        prop_assert!(outcome.is_ok(), "panic for JSON mutations {muts:?}");
    }

    /// A valid header followed by random garbage neither panics nor
    /// stalls in a giant allocation: every announced count is checked
    /// against the bytes actually remaining, so parsing random tails
    /// returns promptly.
    #[test]
    fn fuzz_random_tails_bounded(tail in vec(0u32..256, 0..96)) {
        let mut bytes = shared_bytes()[..12].to_vec(); // magic + version
        bytes.extend(tail.iter().map(|&b| b as u8));
        let t0 = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(|| {
            let _ = TraceData::from_bytes(&bytes);
        });
        prop_assert!(outcome.is_ok(), "panic for random tail {tail:?}");
        prop_assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "random tail parsed too slowly"
        );
    }
}
