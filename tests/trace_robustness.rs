//! Failure-injection tests of the trace file format with real application
//! traces: a PYTHIA deployment reloads trace files across runs, so a
//! corrupt or truncated file must produce a clean error, never a panic,
//! hang, or huge allocation.

use pythia::apps::harness::record_trace;
use pythia::apps::work::WorkScale;
use pythia::apps::{find_app, WorkingSet};
use pythia::core::trace::TraceData;

fn sample_bytes() -> Vec<u8> {
    let app = find_app("MG").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
    trace.to_bytes().to_vec()
}

/// Every single-byte corruption either round-trips to a loadable trace
/// (the flip hit a don't-care bit such as a timing value) or fails with a
/// clean error. Exhaustive over positions with a stride, full coverage of
/// the header.
#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample_bytes();
    let positions: Vec<usize> = (0..bytes.len().min(64))
        .chain((64..bytes.len()).step_by(7))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            // Must return, not panic; both Ok and Err are acceptable.
            let result = std::panic::catch_unwind(|| TraceData::from_bytes(&corrupt));
            assert!(
                result.is_ok(),
                "panic while parsing flip {flip:#x} at byte {pos}"
            );
        }
    }
}

/// Truncations of a real multi-thread application trace all fail cleanly.
#[test]
fn truncations_of_app_trace_fail_cleanly() {
    let bytes = sample_bytes();
    for cut in (0..bytes.len()).step_by(11) {
        let result = TraceData::from_bytes(&bytes[..cut]);
        assert!(result.is_err(), "truncation at {cut} accepted");
    }
}

/// A corrupt length field must not cause a massive allocation: parsing a
/// tiny buffer claiming millions of rules returns promptly with an error.
#[test]
fn huge_length_fields_rejected_promptly() {
    let bytes = sample_bytes();
    let mut corrupt = bytes.clone();
    // The registry count is the u32 right after magic (8) + version (4).
    corrupt[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    let t0 = std::time::Instant::now();
    let result = TraceData::from_bytes(&corrupt);
    assert!(result.is_err());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(2),
        "corrupt length field parsed too slowly"
    );
}

/// JSON traces edited by hand (a use case the format exists for) are
/// validated structurally: dangling rule references must be rejected.
#[test]
fn json_with_dangling_rule_reference_rejected() {
    let app = find_app("FT").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let mut v: serde_json::Value = serde_json::from_str(&trace.to_json().unwrap()).unwrap();
    // Point some symbol at a rule id far out of range.
    let rules = v["threads"][0]["grammar"]["rules"].as_array_mut().unwrap();
    let body = rules[0]["body"].as_array_mut().unwrap();
    body[0]["symbol"] = serde_json::json!({ "Rule": 999 });
    assert!(TraceData::from_json(&v.to_string()).is_err());
}

/// Loading a file that is not a trace at all (here: its own JSON export)
/// fails with BadMagic, not garbage parsing.
#[test]
fn wrong_format_detected() {
    let app = find_app("EP").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let json = trace.to_json().unwrap();
    let err = TraceData::from_bytes(json.as_bytes()).unwrap_err();
    assert!(matches!(err, pythia::core::error::Error::BadMagic));
}
