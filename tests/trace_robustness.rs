//! Failure-injection tests of the trace file format with real application
//! traces: a PYTHIA deployment reloads trace files across runs, so a
//! corrupt or truncated file must produce a clean error, never a panic,
//! hang, or huge allocation.

use std::path::PathBuf;
use std::sync::OnceLock;

use proptest::collection::vec;
use proptest::prelude::*;
use pythia::apps::harness::record_trace;
use pythia::apps::work::WorkScale;
use pythia::apps::{find_app, WorkingSet};
use pythia::core::event::EventId;
use pythia::core::persist::{checkpoint_path, journal_path, PersistConfig};
use pythia::core::record::{RecordConfig, Recorder};
use pythia::core::resilience::faults::corrupt_bytes;
use pythia::core::resilience::FaultPlan;
use pythia::core::trace::TraceData;

fn sample_bytes() -> Vec<u8> {
    let app = find_app("MG").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
    trace.to_bytes().to_vec()
}

/// One recorded trace shared across all fuzz cases (recording is the
/// expensive part; mutation and parsing are cheap).
fn shared_bytes() -> &'static [u8] {
    static BYTES: OnceLock<Vec<u8>> = OnceLock::new();
    BYTES.get_or_init(sample_bytes)
}

fn shared_json() -> &'static str {
    static JSON: OnceLock<String> = OnceLock::new();
    JSON.get_or_init(|| {
        TraceData::from_bytes(shared_bytes())
            .unwrap()
            .to_json()
            .unwrap()
    })
}

/// Every single-byte corruption either round-trips to a loadable trace
/// (the flip hit a don't-care bit such as a timing value) or fails with a
/// clean error. Exhaustive over positions with a stride, full coverage of
/// the header.
#[test]
fn single_byte_flips_never_panic() {
    let bytes = sample_bytes();
    let positions: Vec<usize> = (0..bytes.len().min(64))
        .chain((64..bytes.len()).step_by(7))
        .collect();
    for pos in positions {
        for flip in [0x01u8, 0x80, 0xff] {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            // Must return, not panic; both Ok and Err are acceptable.
            let result = std::panic::catch_unwind(|| TraceData::from_bytes(&corrupt));
            assert!(
                result.is_ok(),
                "panic while parsing flip {flip:#x} at byte {pos}"
            );
        }
    }
}

/// Truncations of a real multi-thread application trace all fail cleanly.
#[test]
fn truncations_of_app_trace_fail_cleanly() {
    let bytes = sample_bytes();
    for cut in (0..bytes.len()).step_by(11) {
        let result = TraceData::from_bytes(&bytes[..cut]);
        assert!(result.is_err(), "truncation at {cut} accepted");
    }
}

/// A corrupt length field must not cause a massive allocation: parsing a
/// tiny buffer claiming millions of rules returns promptly with an error.
#[test]
fn huge_length_fields_rejected_promptly() {
    let bytes = sample_bytes();
    let mut corrupt = bytes.clone();
    // The registry count is the u32 right after magic (8) + version (4).
    corrupt[12..16].copy_from_slice(&u32::MAX.to_le_bytes());
    let t0 = std::time::Instant::now();
    let result = TraceData::from_bytes(&corrupt);
    assert!(result.is_err());
    assert!(
        t0.elapsed() < std::time::Duration::from_secs(2),
        "corrupt length field parsed too slowly"
    );
}

/// JSON traces edited by hand (a use case the format exists for) are
/// validated structurally: dangling rule references must be rejected.
#[test]
fn json_with_dangling_rule_reference_rejected() {
    let app = find_app("FT").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let mut v: serde_json::Value = serde_json::from_str(&trace.to_json().unwrap()).unwrap();
    // Point some symbol at a rule id far out of range.
    let rules = v["threads"][0]["grammar"]["rules"].as_array_mut().unwrap();
    let body = rules[0]["body"].as_array_mut().unwrap();
    body[0]["symbol"] = serde_json::json!({ "Rule": 999 });
    assert!(TraceData::from_json(&v.to_string()).is_err());
}

/// Loading a file that is not a trace at all (here: its own JSON export)
/// fails with BadMagic, not garbage parsing.
#[test]
fn wrong_format_detected() {
    let app = find_app("EP").unwrap();
    let trace = record_trace(app.as_ref(), 2, WorkingSet::Small, WorkScale::ZERO);
    let json = trace.to_json().unwrap();
    let err = TraceData::from_bytes(json.as_bytes()).unwrap_err();
    assert!(matches!(err, pythia::core::error::Error::BadMagic));
}

// ----------------------------------------------------------------------
// Property-based fuzzing: the directed tests above pick corruptions by
// hand; these sample the corruption space at random (deterministically
// seeded) over the same real application trace.
// ----------------------------------------------------------------------

// ----------------------------------------------------------------------
// Recovery-path fuzzing: `TraceData::recover` reads whatever a crash left
// behind — a torn final file, damaged journal/checkpoint sidecars — so it
// gets the same treatment as the strict loaders: every truncation offset
// and random corruption, never a panic.
// ----------------------------------------------------------------------

/// Fresh recovery sidecars (journal + checkpoint, no final file) from a
/// durable recording with tight budgets, in a directory private to the
/// calling test.
fn make_sidecars(name: &str) -> (PathBuf, u64) {
    let dir = std::env::temp_dir().join(format!("pythia-robust-{name}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("run.pythia");
    let persist = PersistConfig {
        flush_events: 8,
        snapshot_events: 64,
        registry: None,
        faults: Some(FaultPlan::none()),
        ..PersistConfig::default()
    };
    let mut rec = Recorder::durable(RecordConfig::default(), &path, 0, persist).unwrap();
    for i in 0..400u64 {
        rec.record_at(EventId(1 + (i % 6) as u32), (i + 1) * 50);
    }
    rec.finish_thread().unwrap();
    (path, 400)
}

/// Truncating the *final* trace file at any offset (a crash during a
/// non-atomic copy of it, say) never panics recovery: with no sidecars it
/// is a clean error, and never a silently shorter trace.
#[test]
#[cfg_attr(miri, ignore)]
fn recover_of_truncated_final_file_never_panics() {
    let bytes = shared_bytes();
    let dir = std::env::temp_dir().join(format!("pythia-robust-final-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("mg.pythia");
    for cut in (0..bytes.len()).step_by(101) {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        let outcome = std::panic::catch_unwind(|| TraceData::recover(&path).is_ok());
        assert!(outcome.is_ok(), "panic recovering truncation at {cut}");
        assert!(!outcome.unwrap(), "truncation at {cut} recovered");
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every truncation offset of the journal sidecar recovers cleanly (torn
/// tails are expected crash debris) or errors — and never yields more
/// events than were recorded.
#[test]
#[cfg_attr(miri, ignore)]
fn recover_survives_journal_truncation_at_every_offset() {
    let (path, total) = make_sidecars("journal-trunc");
    let journal = journal_path(&path, 0);
    let full = std::fs::read(&journal).unwrap();
    for cut in 0..full.len() {
        std::fs::write(&journal, &full[..cut]).unwrap();
        let outcome = std::panic::catch_unwind(|| {
            if let Ok((trace, _)) = TraceData::recover(&path) {
                assert!(
                    trace.total_events() <= total,
                    "truncation at {cut} invented events"
                );
            }
        });
        assert!(
            outcome.is_ok(),
            "panic recovering journal truncation at {cut}"
        );
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

/// Every truncation offset of the checkpoint sidecar either falls back
/// (journal-only replay, an older state) or errors — never a panic.
#[test]
#[cfg_attr(miri, ignore)]
fn recover_survives_checkpoint_truncation_at_every_offset() {
    let (path, total) = make_sidecars("ckpt-trunc");
    let ckpt = checkpoint_path(&path, 0);
    let full = std::fs::read(&ckpt).unwrap();
    for cut in (0..full.len()).step_by(7) {
        std::fs::write(&ckpt, &full[..cut]).unwrap();
        let outcome = std::panic::catch_unwind(|| {
            if let Ok((trace, _)) = TraceData::recover(&path) {
                assert!(trace.total_events() <= total);
            }
        });
        assert!(outcome.is_ok(), "panic recovering ckpt truncation at {cut}");
    }
    std::fs::remove_dir_all(path.parent().unwrap()).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Clustered multi-byte corruption (the chaos helper used in fault
    /// injection) never panics the binary parser: every mutated buffer
    /// either loads or fails with a clean error.
    #[test]
    fn fuzz_clustered_mutations_never_panic((seed, n) in (0u64..1 << 48, 1usize..16)) {
        let mutated = corrupt_bytes(shared_bytes(), seed, n);
        let outcome = std::panic::catch_unwind(|| TraceData::from_bytes(&mutated).is_ok());
        prop_assert!(outcome.is_ok(), "panic for corruption seed {seed} ({n} mutations)");
    }

    /// Scattered independent byte flips at random positions never panic.
    #[test]
    fn fuzz_scattered_flips_never_panic(muts in vec((0u64..u64::MAX, 1u32..256), 1..12)) {
        let mut bytes = shared_bytes().to_vec();
        let len = bytes.len() as u64;
        for &(pos, flip) in &muts {
            bytes[(pos % len) as usize] ^= flip as u8;
        }
        let outcome = std::panic::catch_unwind(|| TraceData::from_bytes(&bytes).is_ok());
        prop_assert!(outcome.is_ok(), "panic for flips {muts:?}");
    }

    /// Every proper prefix of a valid trace is an error — a partially
    /// written file (crash mid-save) must never load as a shorter trace.
    #[test]
    fn fuzz_truncations_always_err(cut in 0u64..u64::MAX) {
        let bytes = shared_bytes();
        let cut = (cut % bytes.len() as u64) as usize;
        prop_assert!(
            TraceData::from_bytes(&bytes[..cut]).is_err(),
            "truncation at {cut}/{} accepted",
            bytes.len()
        );
    }

    /// Random printable-ASCII substitutions in the JSON export (the
    /// hand-editable format) never panic `from_json` — at worst a parse
    /// or validation error.
    #[test]
    fn fuzz_json_mutations_never_panic(muts in vec((0u64..u64::MAX, 32u8..127), 1..8)) {
        let mut json = shared_json().to_string().into_bytes();
        let len = json.len() as u64;
        for &(pos, byte) in &muts {
            json[(pos % len) as usize] = byte;
        }
        let json = String::from_utf8(json).expect("ASCII substitutions keep UTF-8 valid");
        let outcome = std::panic::catch_unwind(|| TraceData::from_json(&json).is_ok());
        prop_assert!(outcome.is_ok(), "panic for JSON mutations {muts:?}");
    }

    /// Random single-byte corruption anywhere in the recovery sidecars —
    /// journal or checkpoint — never panics `TraceData::recover`: CRC
    /// framing downgrades journal damage to a truncated tail, checkpoint
    /// damage to a journal-only replay, and anything else to a clean
    /// error. Never more events than were recorded.
    #[test]
    #[cfg_attr(miri, ignore)]
    fn fuzz_sidecar_corruption_never_panics(
        (which, pos, flip) in (0u8..2, 0u64..u64::MAX, 1u32..256),
    ) {
        let in_journal = which == 0;
        static SIDECARS: OnceLock<(PathBuf, Vec<u8>, Vec<u8>)> = OnceLock::new();
        let (path, journal, ckpt) = SIDECARS.get_or_init(|| {
            let (path, _) = make_sidecars("sidecar-fuzz");
            let j = std::fs::read(journal_path(&path, 0)).unwrap();
            let c = std::fs::read(checkpoint_path(&path, 0)).unwrap();
            (path, j, c)
        });
        let (mut j, mut c) = (journal.clone(), ckpt.clone());
        let target = if in_journal { &mut j } else { &mut c };
        let idx = (pos % target.len() as u64) as usize;
        target[idx] ^= flip as u8;
        std::fs::write(journal_path(path, 0), &j).unwrap();
        std::fs::write(checkpoint_path(path, 0), &c).unwrap();
        let outcome = std::panic::catch_unwind(|| match TraceData::recover(path) {
            Ok((trace, _)) => trace.total_events() <= 400,
            Err(_) => true,
        });
        prop_assert!(
            outcome.is_ok(),
            "panic for flip {flip:#x} at {idx} in {}",
            if in_journal { "journal" } else { "checkpoint" }
        );
        prop_assert!(outcome.unwrap(), "corruption invented events");
    }

    /// A valid header followed by random garbage neither panics nor
    /// stalls in a giant allocation: every announced count is checked
    /// against the bytes actually remaining, so parsing random tails
    /// returns promptly.
    #[test]
    fn fuzz_random_tails_bounded(tail in vec(0u32..256, 0..96)) {
        let mut bytes = shared_bytes()[..12].to_vec(); // magic + version
        bytes.extend(tail.iter().map(|&b| b as u8));
        let t0 = std::time::Instant::now();
        let outcome = std::panic::catch_unwind(|| {
            let _ = TraceData::from_bytes(&bytes);
        });
        prop_assert!(outcome.is_ok(), "panic for random tail {tail:?}");
        prop_assert!(
            t0.elapsed() < std::time::Duration::from_secs(2),
            "random tail parsed too slowly"
        );
    }
}
