//! The paper's central claim (§III-C2): traces recorded with the *small*
//! working set still predict runs with *larger* working sets, because most
//! HPC applications keep the same behavior and only change trip counts.

use std::sync::Arc;

use pythia::apps::harness::{record_trace, run_app};
use pythia::apps::work::WorkScale;
use pythia::apps::{all_apps, WorkingSet};
use pythia::runtime_mpi::MpiMode;

fn accuracy_at_distance_1(
    app: &dyn pythia::apps::MpiApp,
    trace: Arc<pythia::core::trace::TraceData>,
    ws: WorkingSet,
) -> f64 {
    let res = run_app(app, 4, ws, MpiMode::predict(trace), WorkScale::ZERO);
    let (mut correct, mut total) = (0u64, 0u64);
    for r in &res.reports {
        for (_, acc) in &r.accuracy {
            correct += acc.correct;
            total += acc.total();
        }
    }
    assert!(total > 0, "{}: no predictions", app.name());
    correct as f64 / total as f64
}

#[test]
fn small_trace_predicts_large_run() {
    // Per-app floors mirror Fig. 8's ordering: regular kernels stay >85%
    // even on a 4x larger run; irregular apps sit lower.
    for app in all_apps() {
        let floor = match app.name() {
            "AMG" => 0.35,
            "Quicksilver" => 0.45,
            "Kripke" => 0.40, // small->large changes the group-set count
            "FT" => 0.60,     // iteration count doubles; loop-boundary misses
            "LU" | "MG" => 0.60,
            _ => 0.85,
        };
        let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
        let acc = accuracy_at_distance_1(app.as_ref(), trace, WorkingSet::Large);
        assert!(
            acc >= floor,
            "{}: small->large accuracy {acc:.3} < {floor}",
            app.name()
        );
    }
}

#[test]
fn same_working_set_beats_cross_working_set() {
    // Predicting the identical working set should never be (much) worse
    // than predicting a different one.
    for name in ["BT", "SP", "Lulesh"] {
        let app = pythia::apps::find_app(name).unwrap();
        let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
        let same = accuracy_at_distance_1(app.as_ref(), Arc::clone(&trace), WorkingSet::Small);
        let cross = accuracy_at_distance_1(app.as_ref(), trace, WorkingSet::Large);
        assert!(
            same >= cross - 0.05,
            "{name}: same-ws {same:.3} < cross-ws {cross:.3}"
        );
    }
}

#[test]
fn loop_boundary_mispredictions_shrink_with_distance_structure() {
    // LU with a small trace on a large run mispredicts at loop boundaries
    // (paper: "the number of iterations of the algorithm depends on the
    // size of the data set") but keeps tracking inside loops: the re-seed
    // count stays far below the event count.
    let app = pythia::apps::find_app("LU").unwrap();
    let trace = record_trace(app.as_ref(), 4, WorkingSet::Small, WorkScale::ZERO);
    let res = run_app(
        app.as_ref(),
        4,
        WorkingSet::Large,
        MpiMode::predict(trace),
        WorkScale::ZERO,
    );
    for r in &res.reports {
        let st = r.predict_stats.unwrap();
        assert!(st.unknown == 0, "LU large uses no new event kinds: {st:?}");
        assert!(
            (st.reseeded as f64) < 0.2 * st.observed as f64,
            "tracking mostly synchronized: {st:?}"
        );
    }
}
