//! End-to-end integration of the OpenMP side: the LULESH-OMP model through
//! the minomp runtime with the PYTHIA listener, in all modes.

use std::time::Duration;

use pythia::apps::lulesh_omp::{self, LuleshOmpConfig};
use pythia::minomp::{OmpListener, OmpRuntime, PoolMode, RegionId, ThreadChoice};
use pythia::runtime_omp::{OmpOracle, ThresholdPolicy};

fn cfg() -> LuleshOmpConfig {
    LuleshOmpConfig {
        problem_size: 10,
        steps: 4,
        ns_per_unit: 10,
    }
}

#[test]
fn record_then_adapt_small_regions_shrink() {
    let oracle = OmpOracle::recorder();
    {
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &cfg());
    }
    let trace = oracle.finish_trace().unwrap();
    // 30 regions × 2 events × steps.
    assert_eq!(trace.total_events(), 30 * 2 * 4);

    let oracle = OmpOracle::predictor(&trace, ThresholdPolicy::default(), 0.0, 3);
    {
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &cfg());
    }
    let stats = oracle.stats();
    assert_eq!(stats.regions, 120);
    // The s=10 small regions (10 units × 10ns = 100ns) must get smaller
    // teams than the s³ regions. Exact buckets shift with host load, so
    // assert the relative spread.
    assert!(stats.adapted > 0, "{stats:?}");
    let min_team = stats.team_histogram.iter().map(|e| e.0).min().unwrap();
    let max_team = stats.team_histogram.iter().map(|e| e.0).max().unwrap();
    assert!(
        min_team < max_team,
        "adaptive policy never differentiated region sizes: {stats:?}"
    );
}

#[test]
fn adaptive_not_slower_than_vanilla_on_small_problems() {
    // Timing-based, so keep the assertion loose: adaptive must not be
    // dramatically slower than vanilla on a fork/join-dominated problem.
    let c = LuleshOmpConfig {
        problem_size: 5,
        steps: 6,
        ns_per_unit: 10,
    };
    let vanilla = {
        let oracle = OmpOracle::vanilla();
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &c)
    };
    let oracle = OmpOracle::recorder();
    {
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &c);
    }
    let trace = oracle.finish_trace().unwrap();
    let oracle = OmpOracle::predictor(&trace, ThresholdPolicy::default(), 0.0, 11);
    let adaptive = {
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &c)
    };
    assert!(
        adaptive < vanilla.mul_f64(2.0) + Duration::from_millis(50),
        "adaptive {adaptive:?} unreasonably slower than vanilla {vanilla:?}"
    );
}

#[test]
fn error_injection_degrades_but_never_crashes() {
    let c = cfg();
    let oracle = OmpOracle::recorder();
    {
        let rt = OmpRuntime::with_listener(4, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &c);
    }
    let trace = oracle.finish_trace().unwrap();
    for rate in [0.0, 0.1, 0.5, 1.0] {
        let oracle = OmpOracle::predictor(&trace, ThresholdPolicy::default(), rate, 99);
        {
            let rt = OmpRuntime::with_listener(4, PoolMode::Park, oracle.listener());
            lulesh_omp::run(&rt, &c);
        }
        let stats = oracle.stats();
        assert_eq!(stats.regions, 120, "rate {rate}");
        if rate == 0.0 {
            assert_eq!(stats.injected_errors, 0);
        }
        if rate == 1.0 {
            assert_eq!(stats.injected_errors, 120);
            // Every region decision right after noise falls back to the
            // default heuristic.
            assert_eq!(stats.uninformed, 120, "{stats:?}");
        }
    }
}

#[test]
fn pool_ablation_destroy_mode_respawns_threads() {
    let c = cfg();
    let oracle = OmpOracle::recorder();
    {
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle.listener());
        lulesh_omp::run(&rt, &c);
    }
    let trace = oracle.finish_trace().unwrap();

    // Park mode: threads spawned once.
    let oracle_park = OmpOracle::predictor(&trace, ThresholdPolicy::default(), 0.0, 5);
    let park_stats = {
        let rt = OmpRuntime::with_listener(8, PoolMode::Park, oracle_park.listener());
        lulesh_omp::run(&rt, &c);
        rt.pool_stats()
    };
    // Destroy mode: the adaptive team-size changes force respawns. The
    // oracle-driven team sizes depend on recorded wall-clock timings, so
    // after the adaptive run, force one deterministic shrink-then-grow
    // cycle; in DestroyOnShrink mode the shrink must destroy workers and
    // the regrow must respawn them.
    let oracle_destroy = OmpOracle::predictor(&trace, ThresholdPolicy::default(), 0.0, 5);
    let destroy_stats = {
        let rt = OmpRuntime::with_listener(8, PoolMode::DestroyOnShrink, oracle_destroy.listener());
        lulesh_omp::run(&rt, &c);
        rt.set_listener(Box::new(FixedTeam(8)));
        rt.parallel(RegionId(9000), |_, _| {});
        rt.set_listener(Box::new(FixedTeam(1)));
        rt.parallel(RegionId(9001), |_, _| {});
        rt.set_listener(Box::new(FixedTeam(8)));
        rt.parallel(RegionId(9002), |_, _| {});
        rt.pool_stats()
    };
    assert_eq!(park_stats.threads_destroyed, 0);
    assert!(
        destroy_stats.threads_spawned > park_stats.threads_spawned,
        "destroy mode must respawn: {destroy_stats:?} vs {park_stats:?}"
    );
    assert!(destroy_stats.threads_destroyed > 0);
}

/// Listener pinning every region to a fixed team size.
struct FixedTeam(usize);

impl OmpListener for FixedTeam {
    fn region_begin(&mut self, _region: RegionId) -> ThreadChoice {
        ThreadChoice::Exactly(self.0)
    }

    fn region_end(&mut self, _region: RegionId, _team: usize) {}
}

#[test]
fn regions_share_runtime_with_manual_regions() {
    // The oracle listener must coexist with direct runtime use.
    let oracle = OmpOracle::recorder();
    let rt = OmpRuntime::with_listener(4, PoolMode::Park, oracle.listener());
    let counter = std::sync::atomic::AtomicU64::new(0);
    rt.parallel_for(RegionId(500), 100, |_| {
        counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    });
    lulesh_omp::run(
        &rt,
        &LuleshOmpConfig {
            problem_size: 5,
            steps: 1,
            ns_per_unit: 0,
        },
    );
    assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 100);
    drop(rt);
    let trace = oracle.finish_trace().unwrap();
    assert_eq!(trace.total_events(), 2 + 30 * 2);
}
