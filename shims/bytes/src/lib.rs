//! Offline shim for the `bytes` crate: the subset of `Bytes`, `BytesMut`,
//! `Buf` and `BufMut` that this workspace uses, implemented over
//! `Arc<Vec<u8>>` / `Vec<u8>`. The build environment has no crates.io
//! access, so the real crate cannot be fetched.

use std::ops::Deref;
use std::sync::Arc;

/// A cheaply clonable, immutable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data)
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.as_ref().clone()
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: Arc::new(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes {
            data: Arc::new(v.to_vec()),
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Number of bytes written.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }

    /// Clears the buffer, keeping its allocation.
    pub fn clear(&mut self) {
        self.data.clear();
    }

    /// Reserves capacity for at least `additional` more bytes.
    pub fn reserve(&mut self, additional: usize) {
        self.data.reserve(additional);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl std::ops::DerefMut for BytesMut {
    #[inline]
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Write-side trait: little-endian putters used by the trace writer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, n: u8) {
        self.put_slice(&[n]);
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, n: u32) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, n: u64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    fn put_i64_le(&mut self, n: i64) {
        self.put_slice(&n.to_le_bytes());
    }

    /// Appends `cnt` copies of `val`.
    fn put_bytes(&mut self, val: u8, cnt: usize) {
        for _ in 0..cnt {
            self.put_u8(val);
        }
    }
}

impl BufMut for BytesMut {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    #[inline]
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read-side trait: little-endian getters used by the trace reader.
///
/// Like the real `bytes::Buf`, getters panic when the buffer is too short;
/// callers bounds-check first (see `pythia-core::trace::take`).
pub trait Buf {
    /// Consumes and returns the next `n` bytes.
    fn take_bytes(&mut self, n: usize) -> &[u8];

    /// Consumes one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_bytes(1)[0]
    }

    /// Consumes a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_bytes(4).try_into().unwrap())
    }

    /// Consumes a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }

    /// Consumes a little-endian `i64`.
    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take_bytes(8).try_into().unwrap())
    }
}

impl Buf for &[u8] {
    #[inline]
    fn take_bytes(&mut self, n: usize) -> &[u8] {
        let (head, tail) = self.split_at(n);
        *self = tail;
        head
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_le() {
        let mut buf = BytesMut::new();
        buf.put_u8(7);
        buf.put_u32_le(0xDEAD_BEEF);
        buf.put_u64_le(42);
        buf.put_i64_le(-9);
        buf.put_slice(b"xyz");
        let frozen = buf.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64_le(), 42);
        assert_eq!(r.get_i64_le(), -9);
        assert_eq!(r, b"xyz");
    }

    #[test]
    fn bytes_clone_shares() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        let c = b.clone();
        assert_eq!(&*b, &*c);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
    }
}
