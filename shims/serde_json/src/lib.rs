//! Offline shim for `serde_json`: a JSON text layer over the `serde`
//! shim's [`Value`] tree.
//!
//! Provides the surface this workspace uses: [`to_string`],
//! [`to_string_pretty`], [`from_str`], [`to_value`], the [`json!`] macro,
//! and re-exports of [`Value`]/[`Number`]. The parser is a plain
//! recursive-descent JSON reader; the writers produce compact
//! (`Value::to_string`) and 2-space-indented pretty output.

pub use serde::{Number, Value};

/// Errors from JSON (de)serialization; re-uses the serde shim's error.
pub type Error = serde::Error;

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Builds a [`Value`] from JSON-like literal syntax.
///
/// Supports the shapes used in this workspace: `null`, object literals
/// with string-literal keys and expression values, array literals, and
/// bare expressions convertible via `Into<Value>`.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::json!($elem) ),* ])
    };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( (::std::string::String::from($key), $crate::json!($val)) ),*
        ])
    };
    // Like real serde_json, expression values are serialized by reference
    // (callers keep ownership).
    ($other:expr) => {
        $crate::to_value(&$other).expect("infallible value-tree serialization")
    };
}

/// Renders `value` as a value tree.
pub fn to_value<T: serde::Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Serializes `value` to compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(value.to_value().to_string())
}

/// Serializes `value` to pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_pretty(&mut out, &value.to_value(), 0);
    Ok(out)
}

fn write_pretty(out: &mut String, v: &Value, indent: usize) {
    use std::fmt::Write;
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push_str("{\n");
            for (i, (k, fv)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                serde::write_json_string(out, k).expect("writing to String cannot fail");
                out.push_str(": ");
                write_pretty(out, fv, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        // Empty containers and scalars use the compact form.
        other => write!(out, "{other}").expect("writing to String cannot fail"),
    }
}

fn push_indent(out: &mut String, level: usize) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

/// Deserializes a `T` from JSON text.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    T::from_value(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> Error {
        Error::custom(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{kw}`")))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.eat_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.eat_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.eat_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.err(&format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.eat(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let unit = self.parse_hex4()?;
                            // Decode surrogate pairs for non-BMP characters.
                            let c = if (0xD800..0xDC00).contains(&unit) {
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&low) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((unit - 0xD800) << 10) + (low - 0xDC00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(unit)
                            };
                            s.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // byte boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.peek().is_some_and(|b| (b & 0xC0) == 0x80) {
                        self.pos += 1;
                    }
                    s.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|_| self.err("invalid utf-8"))?,
                    );
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(self.err("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| self.err("invalid \\u escape"))?;
        let n = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos += 4;
        Ok(n)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ascii");
        if float {
            let n: f64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::F64(n)))
        } else if negative {
            let n: i64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::I64(n)))
        } else {
            let n: u64 = text.parse().map_err(|_| self.err("invalid number"))?;
            Ok(Value::Number(Number::U64(n)))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact_and_pretty() {
        let v = json!({
            "name": "bench",
            "count": 3u32,
            "ratio": 0.5f64,
            "tags": vec!["a", "b"],
            "none": Value::Null,
        });
        let compact = v.to_string();
        let reparsed: Value = from_str(&compact).unwrap();
        assert_eq!(reparsed, v);
        let pretty = to_string_pretty(&v).unwrap();
        let reparsed: Value = from_str(&pretty).unwrap();
        assert_eq!(reparsed, v);
    }

    #[test]
    fn string_escapes() {
        let v = Value::String("a\"b\\c\nd\u{1f600}".to_string());
        let text = v.to_string();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, v);
        let unicode: Value = from_str(r#""😀""#).unwrap();
        assert_eq!(unicode, Value::String("\u{1f600}".to_string()));
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}
