//! Offline shim for `proptest`: a deterministic property-testing harness
//! exposing the subset of the proptest API this workspace uses —
//! [`Strategy`] over integer ranges, tuples, and [`collection::vec`],
//! `prop_map`, the [`proptest!`] macro with `ProptestConfig::with_cases`,
//! and the `prop_assert*`/`prop_assume!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the assertion message and the case's seed. Generation is fully
//! deterministic (seeded from the test name), so failures reproduce.

use std::ops::Range;

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!` and should not be counted.
    Reject(String),
    /// An assertion failed.
    Fail(String),
}

/// Deterministic generator RNG (splitmix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG for one generated case.
    pub fn new(seed: u64, case: u64) -> Self {
        TestRng {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift bounded sampling; bias is negligible for the
        // small bounds used in tests.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// FNV-1a hash of a test name, used as the per-test base seed.
pub fn seed_from_name(name: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_unsigned_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end as u64 - self.start as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

macro_rules! impl_signed_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64 + rng.below(span) as i64) as $t
            }
        }
    )*};
}

impl_unsigned_range!(u8, u16, u32, u64, usize);
impl_signed_range!(i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Number of elements a [`vec`] strategy may generate.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of `element` with a length in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// Strategy produced by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let len = self.size.lo + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The commonly-imported surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (
        $(#[$meta:meta])*
        fn $name:ident($($args:tt)*) $body:block
        $($rest:tt)*
    ) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
            $(#[$meta])* fn $name($($args)*) $body $($rest)*);
    };
    (@impl ($config:expr)) => {};
    (@impl ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $config;
            let __seed = $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name)));
            let mut __accepted: u32 = 0;
            let mut __attempt: u64 = 0;
            while __accepted < __config.cases {
                let mut __rng = $crate::TestRng::new(__seed, __attempt);
                __attempt += 1;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    ::std::result::Result::Ok(()) => __accepted += 1,
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        assert!(
                            __attempt < 1_000_000,
                            "proptest: too many rejected cases in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest case failed (seed {:#x}, attempt {}): {}",
                            __seed,
                            __attempt - 1,
                            __msg
                        );
                    }
                }
            }
        }
        $crate::proptest!(@impl ($config) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __l,
            __r,
            ::std::format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

/// Rejects the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::new(1, 2);
        for _ in 0..1000 {
            let x = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&x));
            let y = Strategy::generate(&(-5i64..5), &mut rng);
            assert!((-5..5).contains(&y));
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let strat = vec(0u32..100, 0..20);
        let a: Vec<u32> = {
            let mut rng = crate::TestRng::new(42, 7);
            Strategy::generate(&strat, &mut rng)
        };
        let b: Vec<u32> = {
            let mut rng = crate::TestRng::new(42, 7);
            Strategy::generate(&strat, &mut rng)
        };
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn macro_machinery_works(xs in vec(0u32..10, 1..50), k in 1usize..4) {
            prop_assume!(!xs.is_empty());
            let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect();
            prop_assert_eq!(doubled.len(), xs.len());
            prop_assert!(k < 4, "k was {}", k);
        }
    }
}
