//! Offline shim for `criterion`: a minimal wall-clock benchmark harness
//! with the API surface this workspace's benches use — `criterion_group!`/
//! `criterion_main!`, benchmark groups, `BenchmarkId`, `Throughput`, and
//! `Bencher::iter`.
//!
//! Each benchmark warms up briefly, then runs timed batches within a small
//! fixed time budget and reports the best batch's mean time per iteration
//! (minimum-of-batches is robust against scheduler noise). There are no
//! statistical reports or HTML output.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark time budget. Small enough that full bench binaries stay
/// fast in CI; large enough for stable ns-scale medians.
const TIME_BUDGET: Duration = Duration::from_millis(40);
const WARMUP_BUDGET: Duration = Duration::from_millis(8);

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        run_benchmark(name, None, &mut f);
        self
    }
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }

    /// An id from just a parameter value.
    pub fn from_parameter(param: impl Display) -> Self {
        BenchmarkId {
            id: param.to_string(),
        }
    }
}

/// Units processed per iteration, for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, self.throughput, &mut f);
        self
    }

    /// Runs a benchmark that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_benchmark_id().id);
        run_benchmark(&full, self.throughput, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Conversions accepted as benchmark ids.
pub trait IntoBenchmarkId {
    /// Converts to a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
pub struct Bencher {
    /// Best (lowest) observed mean ns/iter across batches.
    best_ns_per_iter: f64,
}

impl Bencher {
    /// Times `routine`, storing the best mean time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: also calibrates the per-iteration cost estimate.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
            // Don't spin forever calibrating very fast routines.
            if warm_iters >= 1 << 20 {
                break;
            }
        }
        let est_ns = (WARMUP_BUDGET.as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);
        // Aim for ~20 batches within the budget.
        let batch_iters =
            ((TIME_BUDGET.as_nanos() as f64 / 20.0 / est_ns) as u64).clamp(1, 1 << 24);

        let mut best = f64::INFINITY;
        let bench_start = Instant::now();
        while bench_start.elapsed() < TIME_BUDGET {
            let t0 = Instant::now();
            for _ in 0..batch_iters {
                black_box(routine());
            }
            let batch_ns = t0.elapsed().as_nanos() as f64 / batch_iters as f64;
            best = best.min(batch_ns);
        }
        self.best_ns_per_iter = best;
    }
}

fn run_benchmark(name: &str, throughput: Option<Throughput>, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        best_ns_per_iter: f64::NAN,
    };
    f(&mut bencher);
    let ns = bencher.best_ns_per_iter;
    match throughput {
        Some(Throughput::Elements(n)) if ns.is_finite() && ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("bench: {name:<48} {ns:>12.1} ns/iter ({per_sec:.3e} elem/s)");
        }
        Some(Throughput::Bytes(n)) if ns.is_finite() && ns > 0.0 => {
            let per_sec = n as f64 * 1e9 / ns;
            println!("bench: {name:<48} {ns:>12.1} ns/iter ({per_sec:.3e} B/s)");
        }
        _ => println!("bench: {name:<48} {ns:>12.1} ns/iter"),
    }
}

/// Bundles benchmark functions into a group runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_selftest");
        group.throughput(Throughput::Elements(1));
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.finish();
    }
}
