//! Offline shim for the `parking_lot` crate.
//!
//! The build environment has no access to crates.io, so this workspace
//! vendors a minimal, API-compatible subset of `parking_lot` implemented on
//! top of `std::sync`. Poisoning is swallowed (parking_lot's locks do not
//! poison), and `Condvar::wait` takes `&mut MutexGuard` like parking_lot's.

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;

/// A mutual-exclusion primitive with parking_lot's non-poisoning API.
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the underlying data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the underlying data (no locking).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &*g).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// RAII guard for [`Mutex`].
///
/// Holds an `Option` internally so [`Condvar::wait`] can temporarily take
/// the std guard (std's wait is by-value, parking_lot's is by-`&mut`).
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard taken during wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard taken during wait")
    }
}

/// A condition variable with parking_lot's `&mut guard` wait API.
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Blocks until notified, releasing the guard's mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let g = guard.inner.take().expect("guard already taken");
        guard.inner = Some(self.inner.wait(g).unwrap_or_else(PoisonError::into_inner));
    }

    /// Blocks until notified or `timeout` elapses, releasing the guard's
    /// mutex while waiting. Mirrors parking_lot's `wait_for`.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: std::time::Duration,
    ) -> WaitTimeoutResult {
        let g = guard.inner.take().expect("guard already taken");
        let (g, res) = self
            .inner
            .wait_timeout(g, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(g);
        WaitTimeoutResult {
            timed_out: res.timed_out(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

/// Whether a [`Condvar::wait_for`] returned because the timeout elapsed.
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wait ended by timeout rather than notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_and_mutate() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_roundtrip() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut done = m.lock();
            *done = true;
            cv.notify_all();
            drop(done);
        });
        let (m, cv) = &*pair;
        let mut done = m.lock();
        while !*done {
            cv.wait(&mut done);
        }
        drop(done);
        h.join().unwrap();
    }
}
