//! Offline shim for the `serde` crate.
//!
//! The build environment has no crates.io access, so this workspace vendors
//! a small serialization framework that is *call-compatible* with how the
//! repository uses serde: `#[derive(Serialize, Deserialize)]` on structs and
//! enums (with `#[serde(skip)]` fields), driven through `serde_json`.
//!
//! Instead of serde's visitor architecture, everything funnels through one
//! dynamically-typed [`Value`] tree: `Serialize` renders a value tree,
//! `Deserialize` rebuilds a type from one. The JSON text layer lives in the
//! sibling `serde_json` shim. The derive macros live in `serde_derive` and
//! generate externally-tagged representations matching real serde's
//! defaults (newtype structs are transparent, enum variants are
//! `{"Variant": value}` objects or bare strings for unit variants).

mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{write_json_string, Number, Value};

/// Deserialization error: a human-readable message.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can render themselves into a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be rebuilt from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds a value of this type, or explains why the tree is invalid.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a named struct field during derived deserialization.
///
/// Mirrors serde's behavior: missing fields and non-object containers are
/// errors (skipped fields are filled from `Default` by the derive instead).
pub fn de_field<T: Deserialize>(v: &Value, strukt: &str, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(fields) => match fields.iter().find(|(k, _)| k == name) {
            Some((_, fv)) => T::from_value(fv),
            None => Err(Error::custom(format!(
                "missing field `{name}` in `{strukt}`"
            ))),
        },
        other => Err(Error::custom(format!(
            "expected object for `{strukt}`, found {}",
            other.kind()
        ))),
    }
}

// ---------------------------------------------------------------------
// Blanket implementations for primitives and std containers.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::U64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_u64().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        v.kind()
                    ))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::I64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_i64().ok_or_else(|| {
                    Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {}"),
                        v.kind()
                    ))
                })?;
                <$t>::try_from(n)
                    .map_err(|_| Error::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected f64, found {}", v.kind())))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::F64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(Error::custom(format!(
                "expected bool, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::String(s) => Ok(s.clone()),
            other => Err(Error::custom(format!(
                "expected string, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!(
                "expected array, found {}",
                other.kind()
            ))),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}
