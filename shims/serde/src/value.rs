//! The dynamically-typed value tree shared by the `serde` and `serde_json`
//! shims. Mirrors `serde_json::Value` closely enough for the workspace:
//! indexing by key/position, `as_*` accessors, and insertion-order-
//! preserving objects.

use std::ops::{Index, IndexMut};

/// A JSON-style number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Non-negative integer.
    U64(u64),
    /// Negative (or any signed) integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i128(), other.as_i128()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64_lossy() == other.as_f64_lossy(),
        }
    }
}

impl Number {
    fn as_i128(self) -> Option<i128> {
        match self {
            Number::U64(n) => Some(n as i128),
            Number::I64(n) => Some(n as i128),
            Number::F64(_) => None,
        }
    }

    fn as_f64_lossy(self) -> f64 {
        match self {
            Number::U64(n) => n as f64,
            Number::I64(n) => n as f64,
            Number::F64(n) => n,
        }
    }
}

/// A dynamically-typed value tree (JSON data model).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number.
    Number(Number),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object; insertion order is preserved.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Human-readable kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(n)) => Some(*n),
            Value::Number(Number::I64(n)) => u64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `i64`, if it is an integer in range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(Number::I64(n)) => Some(*n),
            Value::Number(Number::U64(n)) => i64::try_from(*n).ok(),
            _ => None,
        }
    }

    /// The value as `f64`, if it is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(n.as_f64_lossy()),
            _ => None,
        }
    }

    /// The value as `&str`, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as bool, if it is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if the value is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Mutable elements, if the value is an array.
    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The fields, if the value is an object.
    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Mutable fields, if the value is an object.
    pub fn as_object_mut(&mut self) -> Option<&mut Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|o| o.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

impl std::fmt::Display for Value {
    /// Writes compact JSON, matching `serde_json::Value`'s `Display`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Value::Null => f.write_str("null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Number(Number::U64(n)) => write!(f, "{n}"),
            Value::Number(Number::I64(n)) => write!(f, "{n}"),
            Value::Number(Number::F64(n)) => {
                // serde_json has no representation for non-finite floats.
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    f.write_str("null")
                }
            }
            Value::String(s) => write_json_string(f, s),
            Value::Array(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Value::Object(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_json_string(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Writes `s` as a JSON string literal with the required escapes.
pub fn write_json_string(f: &mut impl std::fmt::Write, s: &str) -> std::fmt::Result {
    f.write_char('"')?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\t' => f.write_str("\\t")?,
            '\r' => f.write_str("\\r")?,
            '\u{8}' => f.write_str("\\b")?,
            '\u{c}' => f.write_str("\\f")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => f.write_char(c)?,
        }
    }
    f.write_char('"')
}

/// Shared out-of-band `Null` for missing-key shared indexing.
static NULL: Value = Value::Null;

impl Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl IndexMut<&str> for Value {
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(Vec::new());
        }
        let obj = self
            .as_object_mut()
            .unwrap_or_else(|| panic!("cannot index non-object by string"));
        if !obj.iter().any(|(k, _)| k == key) {
            obj.push((key.to_owned(), Value::Null));
        }
        let i = obj.iter().position(|(k, _)| k == key).unwrap();
        &mut obj[i].1
    }
}

impl Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        self.as_array().and_then(|a| a.get(i)).unwrap_or(&NULL)
    }
}

impl IndexMut<usize> for Value {
    fn index_mut(&mut self, i: usize) -> &mut Value {
        self.as_array_mut()
            .unwrap_or_else(|| panic!("cannot index non-array by position"))
            .get_mut(i)
            .unwrap_or_else(|| panic!("array index out of bounds"))
    }
}

macro_rules! from_num {
    ($($t:ty => $variant:ident),*) => {$(
        impl From<$t> for Value {
            fn from(n: $t) -> Value {
                Value::Number(Number::$variant(n as _))
            }
        }
    )*};
}

from_num!(u8 => U64, u16 => U64, u32 => U64, u64 => U64, usize => U64,
          i8 => I64, i16 => I64, i32 => I64, i64 => I64, isize => I64,
          f32 => F64, f64 => F64);

impl From<bool> for Value {
    fn from(b: bool) -> Value {
        Value::Bool(b)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Value {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}
