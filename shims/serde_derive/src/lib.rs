//! Offline shim for `serde_derive`: dependency-free `#[derive(Serialize)]`
//! and `#[derive(Deserialize)]` macros for the value-tree `serde` shim.
//!
//! Written directly against `proc_macro` (no `syn`/`quote`, which are not
//! available offline), so it supports exactly the item shapes this
//! workspace derives on:
//!
//! * named-field structs (with optional `#[serde(skip)]` fields, restored
//!   from `Default` on deserialization);
//! * tuple structs — newtypes serialize transparently, larger tuples as
//!   arrays (matching real serde);
//! * enums with unit and tuple variants, externally tagged (`"Variant"`
//!   strings and `{"Variant": ...}` objects, matching real serde).
//!
//! Generics, named-field enum variants, and other `#[serde(...)]`
//! attributes are rejected with a `compile_error!` so unsupported uses fail
//! loudly at build time instead of silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives the shim's `serde::Serialize` for supported item shapes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives the shim's `serde::Deserialize` for supported item shapes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(msg) => return compile_error(&msg),
    };
    let code = match (dir, &item.shape) {
        (Direction::Serialize, Shape::Named(fields)) => ser_named(&item.name, fields),
        (Direction::Deserialize, Shape::Named(fields)) => de_named(&item.name, fields),
        (Direction::Serialize, Shape::Tuple(n)) => ser_tuple(&item.name, *n),
        (Direction::Deserialize, Shape::Tuple(n)) => de_tuple(&item.name, *n),
        (Direction::Serialize, Shape::Enum(variants)) => ser_enum(&item.name, variants),
        (Direction::Deserialize, Shape::Enum(variants)) => de_enum(&item.name, variants),
    };
    code.parse().expect("generated impl must parse")
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

// ---------------------------------------------------------------------
// Item model
// ---------------------------------------------------------------------

struct Field {
    name: String,
    skip: bool,
}

struct Variant {
    name: String,
    /// `None` for unit variants, `Some(arity)` for tuple variants.
    arity: Option<usize>,
}

enum Shape {
    Named(Vec<Field>),
    Tuple(usize),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    shape: Shape,
}

// ---------------------------------------------------------------------
// Parsing (token-level, no syn)
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes `#[...]` attributes; returns an error for `#[serde(...)]`
    /// attributes other than `skip`, and whether a skip was seen.
    fn eat_attrs(&mut self) -> Result<bool, String> {
        let mut skip = false;
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            let Some(TokenTree::Group(g)) = self.next() else {
                return Err("expected attribute group after `#`".into());
            };
            let mut inner = Cursor::new(g.stream());
            if let Some(TokenTree::Ident(id)) = inner.peek() {
                if id.to_string() == "serde" {
                    inner.next();
                    let Some(TokenTree::Group(args)) = inner.next() else {
                        return Err("malformed #[serde] attribute".into());
                    };
                    let body = args.stream().to_string();
                    if body.trim() == "skip" {
                        skip = true;
                    } else {
                        return Err(format!(
                            "unsupported #[serde({body})] attribute (shim supports only `skip`)"
                        ));
                    }
                }
            }
        }
        Ok(skip)
    }

    /// Consumes `pub` / `pub(crate)`-style visibility, if present.
    fn eat_visibility(&mut self) {
        if let Some(TokenTree::Ident(id)) = self.peek() {
            if id.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(g)) = self.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(id)) => Ok(id.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Skips type tokens up to (not including) a top-level comma,
    /// tracking `<...>` nesting so commas inside generics don't split.
    fn skip_type(&mut self) {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            if let TokenTree::Punct(p) = t {
                match p.as_char() {
                    ',' if angle == 0 => return,
                    '<' => angle += 1,
                    '>' => angle -= 1,
                    _ => {}
                }
            }
            self.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut c = Cursor::new(input);
    c.eat_attrs()?;
    c.eat_visibility();
    let kw = c.expect_ident()?;
    let name = c.expect_ident()?;
    if let Some(TokenTree::Punct(p)) = c.peek() {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generics on `{name}`"
            ));
        }
    }
    let shape = match kw.as_str() {
        "struct" => parse_struct_body(&mut c, &name)?,
        "enum" => parse_enum_body(&mut c, &name)?,
        other => return Err(format!("cannot derive serde impls for `{other}` items")),
    };
    Ok(Item { name, shape })
}

fn parse_struct_body(c: &mut Cursor, name: &str) -> Result<Shape, String> {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let mut fields = Vec::new();
            let mut fc = Cursor::new(g.stream());
            while !fc.at_end() {
                let skip = fc.eat_attrs()?;
                fc.eat_visibility();
                let fname = fc.expect_ident()?;
                match fc.next() {
                    Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
                    other => return Err(format!("expected `:` after field, found {other:?}")),
                }
                fc.skip_type();
                fc.next(); // consume the separating comma, if any
                fields.push(Field { name: fname, skip });
            }
            Ok(Shape::Named(fields))
        }
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
            let mut n = 0usize;
            let mut fc = Cursor::new(g.stream());
            while !fc.at_end() {
                if fc.eat_attrs()? {
                    return Err(format!(
                        "#[serde(skip)] on tuple fields of `{name}` is not supported"
                    ));
                }
                fc.eat_visibility();
                fc.skip_type();
                fc.next();
                n += 1;
            }
            Ok(Shape::Tuple(n))
        }
        other => Err(format!(
            "unsupported struct body for `{name}`: {other:?} (unit structs not needed)"
        )),
    }
}

fn parse_enum_body(c: &mut Cursor, name: &str) -> Result<Shape, String> {
    match c.next() {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
            let mut variants = Vec::new();
            let mut vc = Cursor::new(g.stream());
            while !vc.at_end() {
                vc.eat_attrs()?;
                let vname = vc.expect_ident()?;
                let arity = match vc.peek() {
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Parenthesis => {
                        let mut n = 0usize;
                        let mut tc = Cursor::new(vg.stream());
                        while !tc.at_end() {
                            tc.eat_attrs()?;
                            tc.eat_visibility();
                            tc.skip_type();
                            tc.next();
                            n += 1;
                        }
                        vc.next();
                        Some(n)
                    }
                    Some(TokenTree::Group(vg)) if vg.delimiter() == Delimiter::Brace => {
                        return Err(format!(
                            "named-field variant `{vname}` of `{name}` is not supported by the serde shim"
                        ));
                    }
                    _ => None,
                };
                match vc.next() {
                    None => {}
                    Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
                    other => {
                        return Err(format!(
                            "unexpected token after variant `{vname}`: {other:?} (discriminants not supported)"
                        ));
                    }
                }
                variants.push(Variant { name: vname, arity });
            }
            Ok(Shape::Enum(variants))
        }
        other => Err(format!("expected enum body for `{name}`, found {other:?}")),
    }
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn ser_named(name: &str, fields: &[Field]) -> String {
    let mut pushes = String::new();
    for f in fields.iter().filter(|f| !f.skip) {
        let fname = &f.name;
        pushes.push_str(&format!(
            "__fields.push((::std::string::String::from({fname:?}), \
             ::serde::Serialize::to_value(&self.{fname})));\n"
        ));
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                     ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Object(__fields)\n\
             }}\n\
         }}"
    )
}

fn de_named(name: &str, fields: &[Field]) -> String {
    let mut inits = String::new();
    for f in fields {
        let fname = &f.name;
        if f.skip {
            inits.push_str(&format!("{fname}: ::std::default::Default::default(),\n"));
        } else {
            inits.push_str(&format!(
                "{fname}: ::serde::de_field(__v, {name:?}, {fname:?})?,\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})\n\
             }}\n\
         }}"
    )
}

fn ser_tuple(name: &str, n: usize) -> String {
    let body = if n == 1 {
        // Newtype structs are transparent, matching real serde.
        "::serde::Serialize::to_value(&self.0)".to_string()
    } else {
        let elems: Vec<String> = (0..n)
            .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
            .collect();
        format!("::serde::Value::Array(::std::vec![{}])", elems.join(", "))
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
}

fn de_tuple(name: &str, n: usize) -> String {
    let body = if n == 1 {
        format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(__v)?))")
    } else {
        let elems: Vec<String> = (0..n)
            .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
            .collect();
        format!(
            "match __v {{\n\
                 ::serde::Value::Array(__a) if __a.len() == {n} => \
                     ::std::result::Result::Ok({name}({elems})),\n\
                 __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                     \"expected {n}-element array for `{name}`, found {{}}\", __other.kind()))),\n\
             }}",
            elems = elems.join(", ")
        )
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}

fn ser_enum(name: &str, variants: &[Variant]) -> String {
    let mut arms = String::new();
    for v in variants {
        let vname = &v.name;
        match v.arity {
            None => arms.push_str(&format!(
                "{name}::{vname} => ::serde::Value::String(::std::string::String::from({vname:?})),\n"
            )),
            Some(1) => arms.push_str(&format!(
                "{name}::{vname}(__f0) => ::serde::Value::Object(::std::vec![(\
                     ::std::string::String::from({vname:?}), \
                     ::serde::Serialize::to_value(__f0))]),\n"
            )),
            Some(n) => {
                let binds: Vec<String> = (0..n).map(|i| format!("__f{i}")).collect();
                let elems: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                arms.push_str(&format!(
                    "{name}::{vname}({binds}) => ::serde::Value::Object(::std::vec![(\
                         ::std::string::String::from({vname:?}), \
                         ::serde::Value::Array(::std::vec![{elems}]))]),\n",
                    binds = binds.join(", "),
                    elems = elems.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 match self {{ {arms} }}\n\
             }}\n\
         }}"
    )
}

fn de_enum(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut tagged_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match v.arity {
            None => unit_arms.push_str(&format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}),\n"
            )),
            Some(1) => tagged_arms.push_str(&format!(
                "{vname:?} => ::std::result::Result::Ok({name}::{vname}(\
                     ::serde::Deserialize::from_value(__val)?)),\n"
            )),
            Some(n) => {
                let elems: Vec<String> = (0..n)
                    .map(|i| format!("::serde::Deserialize::from_value(&__a[{i}])?"))
                    .collect();
                tagged_arms.push_str(&format!(
                    "{vname:?} => match __val {{\n\
                         ::serde::Value::Array(__a) if __a.len() == {n} => \
                             ::std::result::Result::Ok({name}::{vname}({elems})),\n\
                         _ => ::std::result::Result::Err(::serde::Error::custom(\
                             \"malformed tuple variant payload\")),\n\
                     }},\n",
                    elems = elems.join(", ")
                ));
            }
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 match __v {{\n\
                     ::serde::Value::String(__s) => match __s.as_str() {{\n\
                         {unit_arms}\
                         __other => ::std::result::Result::Err(::serde::Error::custom(\
                             ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                     }},\n\
                     ::serde::Value::Object(__fields) if __fields.len() == 1 => {{\n\
                         let (__tag, __val) = &__fields[0];\n\
                         match __tag.as_str() {{\n\
                             {tagged_arms}\
                             __other => ::std::result::Result::Err(::serde::Error::custom(\
                                 ::std::format!(\"unknown variant `{{__other}}` of `{name}`\"))),\n\
                         }}\n\
                     }}\n\
                     __other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                         \"expected variant of `{name}`, found {{}}\", __other.kind()))),\n\
                 }}\n\
             }}\n\
         }}"
    )
}
