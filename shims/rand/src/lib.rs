//! Offline shim for the `rand` crate: a deterministic `SmallRng`
//! (xoshiro256++ seeded through splitmix64) behind the subset of the
//! `Rng`/`SeedableRng` API this workspace uses. The build environment has
//! no crates.io access, so the real crate cannot be fetched.

/// Types that can be sampled from a uniform bit stream.
pub trait Sample: Sized {
    /// Draws one value from the RNG.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Sample for i64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Sample for i32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as i32
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Sample for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Core RNG interface: a source of uniform 64-bit words.
pub trait RngCore {
    /// Next uniform 64-bit word.
    fn next_u64(&mut self) -> u64;
}

/// Convenience sampling methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T`.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform integer in `[low, high)`.
    fn gen_range(&mut self, range: std::ops::Range<u64>) -> u64 {
        let span = range.end - range.start;
        assert!(span > 0, "empty gen_range");
        // Lemire-style widening multiply avoids modulo bias well enough for
        // the simulation workloads here.
        let x = self.next_u64();
        range.start + ((x as u128 * span as u128) >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from integer seeds (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic RNG (xoshiro256++).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut st = seed;
            SmallRng {
                s: [
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                    splitmix64(&mut st),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.gen();
            let y: f64 = b.gen();
            assert_eq!(x, y);
            assert!((0.0..1.0).contains(&x));
        }
        let mut c = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            let v = c.gen_range(10..20);
            assert!((10..20).contains(&v));
        }
    }
}
